//! Trace-propagation integration test: span parent/child ids must
//! survive the scheduler's crossbeam worker-pool handoff. TLS span
//! context does not follow work onto pool threads, so the scheduler
//! threads the run-span id through the ready channel explicitly — this
//! test pins that contract with a `MemorySink` capture.
//!
//! Kept in its own integration binary: the tracer is process-global,
//! and sharing it with other tests would interleave their records.

use cgte_scenarios::artifact::{parse_json, Json};
use cgte_scenarios::{
    build_plan, parse_scn, resolve_scenario, run_plan, ResourceCache, RunOptions, Scale,
};
use std::sync::Arc;

const SCN: &str = "\
[scenario]
name = \"trace-sweep\"
seed = 99
[graph.g]
generator = \"planted\"
k = 5
alpha = 0.4
scale_div = 400
[sampler.rw]
kind = \"rw\"
thinning = [1, 2, 3]
[experiment]
sizes = [20, 60]
replications = 2
design = \"weighted\"
targets = [\"size:last\"]
";

fn num(v: &Json, key: &str) -> Option<u64> {
    match v.get(key) {
        Some(Json::Num(x)) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
        _ => None,
    }
}

fn text<'a>(v: &'a Json, key: &str) -> Option<&'a str> {
    match v.get(key) {
        Some(Json::Str(s)) => Some(s),
        _ => None,
    }
}

#[test]
fn job_span_ids_survive_the_worker_pool_handoff() {
    let sink = Arc::new(cgte_obs::MemorySink::new());
    cgte_obs::install(sink.clone(), cgte_obs::LEVEL_DETAIL);

    let doc = parse_scn(SCN).unwrap();
    let scenario = resolve_scenario(&doc, Scale::Quick, None).unwrap();
    let plan = build_plan(&scenario).unwrap();
    let cache = ResourceCache::new();
    let opts = RunOptions {
        quiet: true,
        threads: 4,
        ..RunOptions::default()
    };
    run_plan(&plan, &cache, &opts, SCN).unwrap();
    cgte_obs::shutdown();

    let records: Vec<Json> = sink
        .lines()
        .iter()
        .map(|l| parse_json(l).expect("every record is valid JSON"))
        .collect();

    // Exactly one run span; it closes last, so it appears after its jobs.
    let runs: Vec<&Json> = records
        .iter()
        .filter(|r| text(r, "name") == Some("scenario.run"))
        .collect();
    assert_eq!(runs.len(), 1, "one scenario.run span");
    let run_id = num(runs[0], "id").unwrap();
    assert!(run_id > 0);

    // Every job span executed on a pool thread must carry the run span
    // as its parent, a fresh nonzero id of its own, and the queue-wait
    // field stamped at dispatch time.
    let jobs: Vec<&Json> = records
        .iter()
        .filter(|r| text(r, "name") == Some("scenario.job"))
        .collect();
    assert!(jobs.len() >= 4, "got {} job spans", jobs.len());
    let mut job_ids = Vec::new();
    for job in &jobs {
        let id = num(job, "id").unwrap();
        assert_eq!(
            num(job, "parent"),
            Some(run_id),
            "job span must be a child of the run span"
        );
        assert!(id != run_id && id > 0);
        assert!(!job_ids.contains(&id), "span ids are unique");
        let fields = job.get("fields").expect("job span has fields");
        assert!(num(fields, "queue_us").is_some());
        assert!(matches!(text(fields, "kind"), Some("build") | Some("run")));
        job_ids.push(id);
    }

    // Cache hit/miss events are emitted *inside* job spans on pool
    // threads: their parent must be one of the job span ids.
    let cache_events: Vec<&Json> = records
        .iter()
        .filter(|r| text(r, "name") == Some("scenario.cache"))
        .collect();
    assert!(!cache_events.is_empty(), "cache events present");
    for ev in &cache_events {
        assert_eq!(text(ev, "kind"), Some("event"));
        let parent = num(ev, "parent").unwrap();
        assert!(
            job_ids.contains(&parent),
            "cache event parent {parent} is not a job span"
        );
        assert!(matches!(
            text(ev.get("fields").unwrap(), "outcome"),
            Some("build") | Some("hit") | Some("load")
        ));
    }
}
