//! `.scn` parser and spec-resolution coverage: round-trips of every
//! embedded built-in scenario, sweep-expansion cardinality, and property
//! tests that unknown keys / malformed values are rejected with a
//! line-numbered error.

use cgte_scenarios::plan::JobKind;
use cgte_scenarios::{
    build_plan, builtin_names, builtin_scenario, parse_scn, resolve_scenario, Scale,
};
use proptest::prelude::*;

const ALL_SCALES: [Scale; 4] = [Scale::Quick, Scale::Default, Scale::Full, Scale::Huge];

/// Every embedded builtin must parse, resolve at every scale, and expand
/// into a non-empty plan whose name matches the registry key.
#[test]
fn builtins_roundtrip_at_every_scale() {
    for name in builtin_names() {
        let text = builtin_scenario(name).expect("registered");
        let doc = parse_scn(text).unwrap_or_else(|e| panic!("{name}: parse failed: {e}"));
        for scale in ALL_SCALES {
            let scenario = resolve_scenario(&doc, scale, None)
                .unwrap_or_else(|e| panic!("{name}@{scale:?}: resolve failed: {e}"));
            assert_eq!(scenario.name, name, "scenario name must match registry key");
            assert_eq!(scenario.seed, 0x2012_5EED, "builtins share the legacy seed");
            let plan = build_plan(&scenario)
                .unwrap_or_else(|e| panic!("{name}@{scale:?}: planning failed: {e}"));
            assert!(plan.num_runnable() > 0, "{name}: no runnable jobs");
            // Every non-build job's dependencies point at build jobs.
            for job in &plan.jobs {
                for &d in &job.deps {
                    assert!(
                        matches!(plan.jobs[d].kind, JobKind::Build { .. }),
                        "{name}: dep of {} is not a build job",
                        job.id
                    );
                }
            }
        }
    }
}

/// Known job-matrix sizes of the builtins (runnable jobs, builds excluded).
#[test]
fn builtin_job_matrix_sizes() {
    let expect = [
        ("fig3", 5),                 // 4 sweep graphs + the shared mid run
        ("fig4", 12),                // 4 graphs × 3 samplers
        ("fig5", 2),                 // two panels
        ("fig6", 5),                 // 5 crawl datasets
        ("fig7", 3),                 // three panels
        ("table1", 4),               // four stand-ins
        ("table2", 1),               // one report
        ("ablation_model_based", 2), // uis + rw
        ("ablation_swrw", 5),        // five betas
        ("ablation_thinning", 5),    // five thinning factors
        ("huge", 4),                 // one NRMSE run + three stats jobs
    ];
    for (name, expected) in expect {
        let doc = parse_scn(builtin_scenario(name).unwrap()).unwrap();
        let scenario = resolve_scenario(&doc, Scale::Quick, None).unwrap();
        let plan = build_plan(&scenario).unwrap();
        let runnable = plan.num_runnable();
        assert_eq!(
            runnable, expected,
            "{name}: expected {expected} runnable jobs, got {runnable}"
        );
    }
}

/// Sweep lists in scalar position take the cross product; the
/// `ablation_thinning` builtin shares one build across its five jobs.
#[test]
fn sweep_expansion_cardinality() {
    let text = "\
[scenario]
name = \"sweeps\"
seed = 1
[graph.g]
generator = \"planted\"
k = [4, 8]
alpha = [0.1, 0.5, 0.9]
scale_div = 500
[sampler.s]
kind = [\"uis\", \"rw\"]
[experiment]
sizes = [10, 20]
replications = 2
";
    let doc = parse_scn(text).unwrap();
    let scenario = resolve_scenario(&doc, Scale::Default, None).unwrap();
    let plan = build_plan(&scenario).unwrap();
    // 2 k-values × 3 alphas = 6 graph variants (6 builds), × 2 samplers
    // = 12 experiment jobs.
    let builds = plan
        .jobs
        .iter()
        .filter(|j| matches!(j.kind, JobKind::Build { .. }))
        .count();
    assert_eq!(builds, 6);
    assert_eq!(plan.num_runnable(), 12);

    // A thinning sweep over one graph keeps a single build job.
    let doc = parse_scn(builtin_scenario("ablation_thinning").unwrap()).unwrap();
    let plan = build_plan(&resolve_scenario(&doc, Scale::Quick, None).unwrap()).unwrap();
    let builds = plan
        .jobs
        .iter()
        .filter(|j| matches!(j.kind, JobKind::Build { .. }))
        .count();
    assert_eq!(builds, 1, "five thinning jobs share one graph build");
    assert_eq!(plan.num_runnable(), 5);
}

/// The scale() selector resolves per run scale; logsizes() expands.
#[test]
fn scale_and_logsizes_resolution() {
    let text = "\
[scenario]
name = \"scales\"
[graph.g]
generator = \"planted\"
k = scale(2, 5, 9)
scale_div = 100
[experiment]
sizes = scale(logsizes(10, 100, 3), [1, 2], [3])
replications = 1
";
    let doc = parse_scn(text).unwrap();
    for (scale, k, sizes) in [
        (Scale::Quick, 2usize, vec![10usize, 32, 100]),
        (Scale::Default, 5, vec![1, 2]),
        (Scale::Full, 9, vec![3]),
    ] {
        let s = resolve_scenario(&doc, scale, None).unwrap();
        assert_eq!(s.graph_usize("g", "k"), Some(k));
        let (v, l) = s.experiment.get("sizes").unwrap();
        assert_eq!(v.as_usize_list(l, "sizes").unwrap(), sizes);
    }
}

/// CLI seed overrides beat the file's seed.
#[test]
fn seed_override_wins() {
    let doc = parse_scn("[scenario]\nname = \"s\"\nseed = 9\n[graph.g]\ngenerator = \"planted\"\n")
        .unwrap();
    assert_eq!(resolve_scenario(&doc, Scale::Quick, None).unwrap().seed, 9);
    assert_eq!(
        resolve_scenario(&doc, Scale::Quick, Some(42)).unwrap().seed,
        42
    );
}

/// Hand-picked rejection cases, each with the offending line.
#[test]
fn rejections_carry_line_numbers() {
    // Unknown key in a graph section (line 5).
    let text = "[scenario]\nname = \"x\"\n[graph.g]\ngenerator = \"planted\"\nbogus_key = 3\n";
    let doc = parse_scn(text).unwrap();
    let e = resolve_scenario(&doc, Scale::Quick, None).unwrap_err();
    assert_eq!(e.line, Some(5));
    assert!(e.msg.contains("unknown key"), "{}", e.msg);

    // Unknown section kind (line 3).
    let text = "[scenario]\nname = \"x\"\n[grpah.g]\ngenerator = \"planted\"\n";
    let e = resolve_scenario(&parse_scn(text).unwrap(), Scale::Quick, None).unwrap_err();
    assert_eq!(e.line, Some(3));

    // Type error: string where an integer is expected. Typed extraction
    // happens at planning time but still reports the source line (5).
    let text = "[scenario]\nname = \"x\"\n[graph.g]\ngenerator = \"planted\"\nk = \"many\"\n";
    let s = resolve_scenario(&parse_scn(text).unwrap(), Scale::Quick, None).unwrap();
    let e = build_plan(&s).unwrap_err();
    assert_eq!(e.line, Some(5));
    assert!(e.msg.contains("expected an integer"), "{}", e.msg);

    // Unknown stage (anchored to the `stage = ...` line 4).
    let text = "[scenario]\nname = \"x\"\n[custom.c]\nstage = \"no-such-stage\"\n";
    let e = resolve_scenario(&parse_scn(text).unwrap(), Scale::Quick, None).unwrap_err();
    assert_eq!(e.line, Some(4));
    assert!(e.msg.contains("unknown stage"), "{}", e.msg);

    // Unknown stage parameter (line 6).
    let text =
        "[scenario]\nname = \"x\"\n[graph.g]\ngenerator = \"planted\"\n[custom.c]\nstage = \"graph-stats\"\nwat = 1\n";
    let e = resolve_scenario(&parse_scn(text).unwrap(), Scale::Quick, None).unwrap_err();
    assert_eq!(e.line, Some(7));
}

// Rejected either at parse time (syntax) or at resolve time (bad function
// arity/arguments); both paths must report the value's line.
const MALFORMED_VALUES: &[&str] = &[
    "[1, 2",
    "\"unterminated",
    "1.2.3",
    "0x",
    "scale(1, 2)",
    "logsizes(0, 10, 3)",
    "nosuchfunc(1)",
    "@!",
    "",
    "1 2",
    "[1,, 2]",
];

proptest! {
    // Any unknown key, anywhere in a graph section, is rejected with the
    // exact line it appears on.
    #[test]
    fn unknown_keys_rejected_with_line(suffix in 0u32..1_000_000, pos in 0usize..3) {
        let bogus = format!("zz_{suffix}");
        let mut lines = vec![
            "[scenario]".to_string(),
            "name = \"p\"".to_string(),
            "[graph.g]".to_string(),
            "generator = \"planted\"".to_string(),
            "k = 5".to_string(),
            "alpha = 0.5".to_string(),
        ];
        let insert_at = 4 + pos; // somewhere inside the graph section
        lines.insert(insert_at, format!("{bogus} = 1"));
        let text = lines.join("\n");
        let doc = parse_scn(&text).expect("syntactically valid");
        let e = resolve_scenario(&doc, Scale::Quick, None).expect_err("unknown key must be rejected");
        prop_assert_eq!(e.line, Some(insert_at + 1));
        prop_assert!(e.msg.contains(&bogus));
    }

    // Malformed values are rejected with the line they sit on, whether
    // the failure surfaces at parse time or at scale resolution.
    #[test]
    fn malformed_values_rejected_with_line(idx in 0usize..MALFORMED_VALUES.len(), blanks in 0usize..4) {
        let mut text = String::from("[scenario]\nname = \"p\"\n");
        for _ in 0..blanks {
            text.push('\n');
        }
        let bad_line = 3 + blanks;
        text.push_str(&format!("seed = {}\n", MALFORMED_VALUES[idx]));
        let e = match parse_scn(&text) {
            Err(e) => e,
            Ok(doc) => resolve_scenario(&doc, Scale::Quick, None)
                .expect_err("malformed value must be rejected at resolution"),
        };
        prop_assert_eq!(e.line, Some(bad_line));
    }
}
