//! Engine integration tests: shared-cache deduplication, scheduler
//! determinism across thread counts, and `--resume` semantics.

use cgte_scenarios::runner::JobOutput;
use cgte_scenarios::{
    build_plan, parse_scn, resolve_scenario, run_plan, ResourceCache, RunOptions, Scale,
};
use std::collections::BTreeMap;

const SWEEP_SCN: &str = "\
[scenario]
name = \"cache-sweep\"
seed = 77
[graph.g]
generator = \"planted\"
k = 5
alpha = 0.4
scale_div = 400
[sampler.rw]
kind = \"rw\"
burn_in = 20
thinning = [1, 2, 3, 4, 5]
[experiment]
sizes = [20, 60]
replications = 3
design = \"weighted\"
targets = [\"size:last\", \"weight:q75\"]
";

fn quiet_opts() -> RunOptions {
    RunOptions {
        quiet: true,
        ..RunOptions::default()
    }
}

fn run_sweep(opts: &RunOptions) -> (BTreeMap<String, JobOutput>, cgte_scenarios::CacheStats) {
    let doc = parse_scn(SWEEP_SCN).unwrap();
    let scenario = resolve_scenario(&doc, Scale::Quick, None).unwrap();
    let plan = build_plan(&scenario).unwrap();
    let cache = ResourceCache::new();
    let outputs = run_plan(&plan, &cache, opts, SWEEP_SCN).unwrap();
    (outputs, cache.stats())
}

fn experiment_entries(out: &JobOutput) -> Vec<(String, Vec<u64>)> {
    match out {
        JobOutput::Experiment(e) => e
            .entries
            .iter()
            .map(|(k, t, _, series)| {
                (
                    format!("{}|{t:?}", k.name()),
                    series.iter().map(|x| x.to_bits()).collect(),
                )
            })
            .collect(),
        _ => panic!("expected experiment output"),
    }
}

/// The acceptance criterion: a sweep scenario reusing one graph across
/// ≥ 4 jobs builds that graph exactly once.
#[test]
fn sweep_builds_shared_graph_exactly_once() {
    let (outputs, stats) = run_sweep(&quiet_opts());
    let experiment_jobs = outputs
        .values()
        .filter(|o| matches!(o, JobOutput::Experiment(_)))
        .count();
    assert_eq!(experiment_jobs, 5, "five thinning variants ran");
    assert_eq!(stats.builds, 1, "one shared graph build");
    assert!(
        stats.hits >= 4,
        "every other job hits the cache (got {} hits)",
        stats.hits
    );
}

/// Scheduler parallelism must not change any series bit.
#[test]
fn outputs_identical_across_thread_counts() {
    let (a, _) = run_sweep(&quiet_opts());
    let four = RunOptions {
        threads: 4,
        ..quiet_opts()
    };
    let (b, _) = run_sweep(&four);
    assert_eq!(a.len(), b.len());
    for (id, out) in &a {
        if matches!(out, JobOutput::Experiment(_)) {
            assert_eq!(
                experiment_entries(out),
                experiment_entries(&b[id]),
                "job {id} must be bit-identical across thread counts"
            );
        }
    }
}

/// `--resume` loads completed jobs from artifacts (no re-execution) and
/// re-executes exactly the incomplete ones.
#[test]
fn resume_reexecutes_only_incomplete_jobs() {
    let dir = std::env::temp_dir().join(format!("cgte-engine-resume-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let full_opts = RunOptions {
        out_dir: Some(dir.clone()),
        ..quiet_opts()
    };

    // Fresh run: one build, four cache hits, all artifacts written.
    let (first, stats) = run_sweep(&full_opts);
    assert_eq!(stats.builds, 1);

    // Resume over a complete run: nothing executes, outputs identical.
    let resume_opts = RunOptions {
        resume: true,
        ..full_opts.clone()
    };
    let (resumed, stats) = run_sweep(&resume_opts);
    assert_eq!(
        stats.builds, 0,
        "a fully completed run must not rebuild anything"
    );
    assert_eq!(stats.hits, 0, "no job executed, so no cache traffic");
    // The build job is skipped entirely on resume (its only effect is the
    // warm cache), so only the five experiment outputs reappear.
    let experiments = |m: &BTreeMap<String, JobOutput>| {
        m.values()
            .filter(|o| matches!(o, JobOutput::Experiment(_)))
            .count()
    };
    assert_eq!(experiments(&first), 5);
    assert_eq!(experiments(&resumed), 5);
    for (id, out) in &first {
        if matches!(out, JobOutput::Experiment(_)) {
            assert_eq!(
                experiment_entries(out),
                experiment_entries(&resumed[id]),
                "job {id} must round-trip bit-exactly through its artifact"
            );
        }
    }

    // Interrupt simulation: delete one job's artifact. Resume re-executes
    // exactly that job (one graph rebuild, no cache hits from the others).
    let victim = dir.join("jobs").join("run_g_rw_3_.json");
    assert!(victim.exists(), "expected artifact at {victim:?}");
    std::fs::remove_file(&victim).unwrap();
    let (repaired, stats) = run_sweep(&resume_opts);
    assert_eq!(
        stats.builds, 1,
        "only the incomplete job rebuilds its graph"
    );
    assert_eq!(
        stats.hits, 1,
        "exactly the one re-executed job touches the cache"
    );
    assert_eq!(
        experiment_entries(&first["run/g/rw[3]"]),
        experiment_entries(&repaired["run/g/rw[3]"]),
        "re-executed job reproduces the original series"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Resuming against a run directory written at different parameters is
/// rejected instead of silently mixing results.
#[test]
fn resume_rejects_fingerprint_mismatch() {
    let dir = std::env::temp_dir().join(format!("cgte-engine-fp-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let opts = RunOptions {
        out_dir: Some(dir.clone()),
        ..quiet_opts()
    };
    let (_, _) = run_sweep(&opts);

    let other_scn = SWEEP_SCN.replace("seed = 77", "seed = 78");
    let doc = parse_scn(&other_scn).unwrap();
    let scenario = resolve_scenario(&doc, Scale::Quick, None).unwrap();
    let plan = build_plan(&scenario).unwrap();
    let cache = ResourceCache::new();
    let resume_opts = RunOptions {
        resume: true,
        ..opts
    };
    let err = run_plan(&plan, &cache, &resume_opts, &other_scn).unwrap_err();
    assert!(
        err.msg.contains("different scenario"),
        "unexpected error: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Facebook bundles are cached too: several custom stages over one
/// simulation share a single generation.
#[test]
fn facebook_bundle_shared_across_stages() {
    let doc = parse_scn(cgte_scenarios::builtin_scenario("fig7").unwrap()).unwrap();
    let scenario = resolve_scenario(&doc, Scale::Quick, None).unwrap();
    let plan = build_plan(&scenario).unwrap();
    let cache = ResourceCache::new();
    let outputs = run_plan(&plan, &cache, &quiet_opts(), "fig7").unwrap();
    assert_eq!(outputs.len(), 4, "one build + three panels");
    let stats = cache.stats();
    assert_eq!(stats.builds, 1, "one simulation build for three panels");
    assert!(stats.hits >= 3);
}
