//! Engine integration tests: shared-cache deduplication, scheduler
//! determinism across thread counts, and `--resume` semantics.

use cgte_scenarios::runner::JobOutput;
use cgte_scenarios::{
    build_plan, parse_scn, resolve_scenario, run_plan, ResourceCache, RunOptions, Scale,
};
use std::collections::BTreeMap;

const SWEEP_SCN: &str = "\
[scenario]
name = \"cache-sweep\"
seed = 77
[graph.g]
generator = \"planted\"
k = 5
alpha = 0.4
scale_div = 400
[sampler.rw]
kind = \"rw\"
burn_in = 20
thinning = [1, 2, 3, 4, 5]
[experiment]
sizes = [20, 60]
replications = 3
design = \"weighted\"
targets = [\"size:last\", \"weight:q75\"]
";

fn quiet_opts() -> RunOptions {
    RunOptions {
        quiet: true,
        ..RunOptions::default()
    }
}

fn run_sweep(opts: &RunOptions) -> (BTreeMap<String, JobOutput>, cgte_scenarios::CacheStats) {
    let doc = parse_scn(SWEEP_SCN).unwrap();
    let scenario = resolve_scenario(&doc, Scale::Quick, None).unwrap();
    let plan = build_plan(&scenario).unwrap();
    let cache = ResourceCache::new();
    let outputs = run_plan(&plan, &cache, opts, SWEEP_SCN).unwrap();
    (outputs, cache.stats())
}

fn experiment_entries(out: &JobOutput) -> Vec<(String, Vec<u64>)> {
    match out {
        JobOutput::Experiment(e) => e
            .entries
            .iter()
            .map(|(k, t, _, series)| {
                (
                    format!("{}|{t:?}", k.name()),
                    series.iter().map(|x| x.to_bits()).collect(),
                )
            })
            .collect(),
        _ => panic!("expected experiment output"),
    }
}

/// The acceptance criterion: a sweep scenario reusing one graph across
/// ≥ 4 jobs builds that graph exactly once.
#[test]
fn sweep_builds_shared_graph_exactly_once() {
    let (outputs, stats) = run_sweep(&quiet_opts());
    let experiment_jobs = outputs
        .values()
        .filter(|o| matches!(o, JobOutput::Experiment(_)))
        .count();
    assert_eq!(experiment_jobs, 5, "five thinning variants ran");
    assert_eq!(stats.builds, 1, "one shared graph build");
    assert!(
        stats.hits >= 4,
        "every other job hits the cache (got {} hits)",
        stats.hits
    );
}

/// Scheduler parallelism must not change any series bit.
#[test]
fn outputs_identical_across_thread_counts() {
    let (a, _) = run_sweep(&quiet_opts());
    let four = RunOptions {
        threads: 4,
        ..quiet_opts()
    };
    let (b, _) = run_sweep(&four);
    assert_eq!(a.len(), b.len());
    for (id, out) in &a {
        if matches!(out, JobOutput::Experiment(_)) {
            assert_eq!(
                experiment_entries(out),
                experiment_entries(&b[id]),
                "job {id} must be bit-identical across thread counts"
            );
        }
    }
}

/// `--resume` loads completed jobs from artifacts (no re-execution) and
/// re-executes exactly the incomplete ones.
#[test]
fn resume_reexecutes_only_incomplete_jobs() {
    let dir = std::env::temp_dir().join(format!("cgte-engine-resume-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let full_opts = RunOptions {
        out_dir: Some(dir.clone()),
        ..quiet_opts()
    };

    // Fresh run: one build, four cache hits, all artifacts written.
    let (first, stats) = run_sweep(&full_opts);
    assert_eq!(stats.builds, 1);

    // Resume over a complete run: nothing executes, outputs identical.
    let resume_opts = RunOptions {
        resume: true,
        ..full_opts.clone()
    };
    let (resumed, stats) = run_sweep(&resume_opts);
    assert_eq!(
        stats.builds, 0,
        "a fully completed run must not rebuild anything"
    );
    assert_eq!(stats.hits, 0, "no job executed, so no cache traffic");
    // The build job is skipped entirely on resume (its only effect is the
    // warm cache), so only the five experiment outputs reappear.
    let experiments = |m: &BTreeMap<String, JobOutput>| {
        m.values()
            .filter(|o| matches!(o, JobOutput::Experiment(_)))
            .count()
    };
    assert_eq!(experiments(&first), 5);
    assert_eq!(experiments(&resumed), 5);
    for (id, out) in &first {
        if matches!(out, JobOutput::Experiment(_)) {
            assert_eq!(
                experiment_entries(out),
                experiment_entries(&resumed[id]),
                "job {id} must round-trip bit-exactly through its artifact"
            );
        }
    }

    // Interrupt simulation: delete one job's artifact. Resume re-executes
    // exactly that job (one graph rebuild, no cache hits from the others).
    let victim = dir.join("jobs").join("run_g_rw_3_.json");
    assert!(victim.exists(), "expected artifact at {victim:?}");
    std::fs::remove_file(&victim).unwrap();
    let (repaired, stats) = run_sweep(&resume_opts);
    assert_eq!(
        stats.builds, 1,
        "only the incomplete job rebuilds its graph"
    );
    assert_eq!(
        stats.hits, 1,
        "exactly the one re-executed job touches the cache"
    );
    assert_eq!(
        experiment_entries(&first["run/g/rw[3]"]),
        experiment_entries(&repaired["run/g/rw[3]"]),
        "re-executed job reproduces the original series"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A truncated or corrupted artifact is caught by the manifest's per-job
/// content fingerprint: `--resume` re-executes exactly that job and the
/// untouched completed series stay bit-exact on disk.
#[test]
fn resume_detects_corrupt_artifact_and_reexecutes_it() {
    let dir = std::env::temp_dir().join(format!("cgte-engine-corrupt-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let full_opts = RunOptions {
        out_dir: Some(dir.clone()),
        ..quiet_opts()
    };
    let (first, _) = run_sweep(&full_opts);

    // Truncate one artifact (simulating a crash mid-write) and scramble
    // nothing else; snapshot the other artifacts' bytes.
    let jobs = dir.join("jobs");
    let victim = jobs.join("run_g_rw_2_.json");
    let original = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &original[..original.len() / 2]).unwrap();
    let untouched: Vec<(std::path::PathBuf, Vec<u8>)> = std::fs::read_dir(&jobs)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p != &victim && p.extension().is_some_and(|x| x == "json"))
        .map(|p| {
            let bytes = std::fs::read(&p).unwrap();
            (p, bytes)
        })
        .collect();
    assert_eq!(untouched.len(), 4, "four intact artifacts remain");

    let resume_opts = RunOptions {
        resume: true,
        ..full_opts
    };
    let (repaired, stats) = run_sweep(&resume_opts);
    assert_eq!(
        stats.builds, 1,
        "only the corrupted job re-executes (one graph rebuild)"
    );
    assert_eq!(stats.hits, 1, "exactly one job touched the cache");
    assert_eq!(
        experiment_entries(&first["run/g/rw[2]"]),
        experiment_entries(&repaired["run/g/rw[2]"]),
        "the re-executed job reproduces the original series bit-exactly"
    );
    // The repaired artifact matches its pre-corruption bytes, and the
    // completed jobs were not rewritten differently.
    assert_eq!(std::fs::read(&victim).unwrap(), original);
    for (p, before) in untouched {
        assert_eq!(
            std::fs::read(&p).unwrap(),
            before,
            "completed artifact {p:?} must stay bit-exact across resume"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A byte-flipped (same-length) artifact is equally detected by the
/// content fingerprint, not just truncation.
#[test]
fn resume_detects_bitflip_artifact() {
    let dir = std::env::temp_dir().join(format!("cgte-engine-bitflip-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let full_opts = RunOptions {
        out_dir: Some(dir.clone()),
        ..quiet_opts()
    };
    let (first, _) = run_sweep(&full_opts);
    let victim = dir.join("jobs").join("run_g_rw_5_.json");
    let mut bytes = std::fs::read(&victim).unwrap();
    // Flip one digit inside the series payload; the result still parses
    // as JSON, so only the fingerprint can catch it.
    let pos = bytes
        .windows(8)
        .position(|w| w == b"\"series\"")
        .expect("series key present")
        + 12;
    bytes[pos] = if bytes[pos] == b'1' { b'2' } else { b'1' };
    std::fs::write(&victim, &bytes).unwrap();

    let resume_opts = RunOptions {
        resume: true,
        ..full_opts
    };
    let (repaired, stats) = run_sweep(&resume_opts);
    assert_eq!(stats.builds, 1, "the tampered job must re-execute");
    assert_eq!(
        experiment_entries(&first["run/g/rw[5]"]),
        experiment_entries(&repaired["run/g/rw[5]"]),
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The CLI-level `--seed` override reaches every job's
/// `ExperimentConfig`: different seeds change the series, the same seed
/// reproduces them bit-exactly — without editing the `.scn`.
#[test]
fn seed_override_reaches_experiment_config() {
    let doc = parse_scn(SWEEP_SCN).unwrap();
    let run_with = |seed: Option<u64>| {
        let scenario = resolve_scenario(&doc, Scale::Quick, seed).unwrap();
        let plan = build_plan(&scenario).unwrap();
        let cache = ResourceCache::new();
        run_plan(&plan, &cache, &quiet_opts(), SWEEP_SCN).unwrap()
    };
    let base = run_with(None);
    let a = run_with(Some(123));
    let b = run_with(Some(123));
    for (id, out) in &a {
        if matches!(out, JobOutput::Experiment(_)) {
            assert_eq!(
                experiment_entries(out),
                experiment_entries(&b[id]),
                "same seed must reproduce job {id} bit-exactly"
            );
            assert_ne!(
                experiment_entries(out),
                experiment_entries(&base[id]),
                "seed override must actually change job {id}"
            );
        }
    }
}

/// Resuming against a run directory written at different parameters is
/// rejected instead of silently mixing results.
#[test]
fn resume_rejects_fingerprint_mismatch() {
    let dir = std::env::temp_dir().join(format!("cgte-engine-fp-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let opts = RunOptions {
        out_dir: Some(dir.clone()),
        ..quiet_opts()
    };
    let (_, _) = run_sweep(&opts);

    let other_scn = SWEEP_SCN.replace("seed = 77", "seed = 78");
    let doc = parse_scn(&other_scn).unwrap();
    let scenario = resolve_scenario(&doc, Scale::Quick, None).unwrap();
    let plan = build_plan(&scenario).unwrap();
    let cache = ResourceCache::new();
    let resume_opts = RunOptions {
        resume: true,
        ..opts
    };
    let err = run_plan(&plan, &cache, &resume_opts, &other_scn).unwrap_err();
    assert!(
        err.msg.contains("different scenario"),
        "unexpected error: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The disk tier: a cold run builds and persists, a warm run loads
/// instead (zero builds) and reproduces every series bit-exactly.
#[test]
fn disk_cache_warm_run_performs_zero_builds() {
    let dir = std::env::temp_dir().join(format!("cgte-disk-cache-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let doc = parse_scn(SWEEP_SCN).unwrap();
    let scenario = resolve_scenario(&doc, Scale::Quick, None).unwrap();
    let plan = build_plan(&scenario).unwrap();

    let cold_cache = ResourceCache::with_disk(&dir);
    let cold = run_plan(&plan, &cold_cache, &quiet_opts(), SWEEP_SCN).unwrap();
    let stats = cold_cache.stats();
    assert_eq!(stats.builds, 1, "cold run builds the shared graph once");
    assert_eq!(stats.loads, 0, "nothing to load on a cold cache");
    let cgteg_files = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "cgteg"))
        .count();
    assert_eq!(cgteg_files, 1, "one graph persisted under its content key");

    let warm_cache = ResourceCache::with_disk(&dir);
    let warm = run_plan(&plan, &warm_cache, &quiet_opts(), SWEEP_SCN).unwrap();
    let stats = warm_cache.stats();
    assert_eq!(stats.builds, 0, "warm run performs zero graph builds");
    assert_eq!(stats.loads, 1, "the graph is loaded from the store");
    assert!(stats.hits >= 4, "later jobs still hit the in-memory tier");
    for (id, out) in &cold {
        if matches!(out, JobOutput::Experiment(_)) {
            assert_eq!(
                experiment_entries(out),
                experiment_entries(&warm[id]),
                "job {id} must be bit-identical between cold and warm runs"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Facebook bundles (graph + two partitions + crawls + config) survive
/// the `.cgteg` round trip: a warm fig7 run builds nothing and renders
/// byte-identical sections.
#[test]
fn disk_cache_facebook_bundle_round_trips() {
    let dir = std::env::temp_dir().join(format!("cgte-disk-fb-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let src = cgte_scenarios::builtin_scenario("fig7").unwrap();
    let doc = parse_scn(src).unwrap();
    let scenario = resolve_scenario(&doc, Scale::Quick, None).unwrap();
    let plan = build_plan(&scenario).unwrap();

    let cold_cache = ResourceCache::with_disk(&dir);
    let cold = run_plan(&plan, &cold_cache, &quiet_opts(), src).unwrap();
    assert_eq!(cold_cache.stats().builds, 1);

    let warm_cache = ResourceCache::with_disk(&dir);
    let warm = run_plan(&plan, &warm_cache, &quiet_opts(), src).unwrap();
    let stats = warm_cache.stats();
    assert_eq!(stats.builds, 0, "warm facebook run builds nothing");
    assert_eq!(stats.loads, 1, "the bundle is loaded from the store");
    assert_eq!(cold.len(), warm.len());
    for (id, out) in &cold {
        assert_eq!(
            cgte_scenarios::artifact::output_to_json(out),
            cgte_scenarios::artifact::output_to_json(&warm[id]),
            "job {id} must serialize identically between cold and warm runs"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A corrupted cache file is a miss, not a failure: the run rebuilds,
/// reproduces identical results, and rewrites the file so the next run
/// loads again.
#[test]
fn disk_cache_self_heals_on_corruption() {
    let dir = std::env::temp_dir().join(format!("cgte-disk-heal-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let doc = parse_scn(SWEEP_SCN).unwrap();
    let scenario = resolve_scenario(&doc, Scale::Quick, None).unwrap();
    let plan = build_plan(&scenario).unwrap();
    let cold_cache = ResourceCache::with_disk(&dir);
    let cold = run_plan(&plan, &cold_cache, &quiet_opts(), SWEEP_SCN).unwrap();

    let victim = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|x| x == "cgteg"))
        .expect("a cache file exists");
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&victim, &bytes).unwrap();

    let healed_cache = ResourceCache::with_disk(&dir);
    let healed = run_plan(&plan, &healed_cache, &quiet_opts(), SWEEP_SCN).unwrap();
    let stats = healed_cache.stats();
    assert_eq!(stats.builds, 1, "corrupted entry is rebuilt");
    assert_eq!(stats.loads, 0);
    for (id, out) in &cold {
        if matches!(out, JobOutput::Experiment(_)) {
            assert_eq!(experiment_entries(out), experiment_entries(&healed[id]));
        }
    }

    // The rebuild rewrote the entry: a third run loads again.
    let warm_cache = ResourceCache::with_disk(&dir);
    run_plan(&plan, &warm_cache, &quiet_opts(), SWEEP_SCN).unwrap();
    assert_eq!(warm_cache.stats().builds, 0);
    assert_eq!(warm_cache.stats().loads, 1);
    std::fs::remove_dir_all(&dir).ok();
}

/// `generator = "file"` sources: a `.cgteg` written by the store API is
/// a first-class scenario graph, counted as a load (never a build).
#[test]
fn file_graph_source_loads_cgteg() {
    use cgte_graph::{GraphBuilder, Partition};
    let dir = std::env::temp_dir().join(format!("cgte-file-src-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    // A tiny two-community graph with an explicit partition.
    let mut b = GraphBuilder::new(8);
    for &(u, v) in &[
        (0, 1),
        (1, 2),
        (2, 3),
        (0, 3),
        (4, 5),
        (5, 6),
        (6, 7),
        (4, 7),
        (3, 4),
    ] {
        b.add_edge(u, v).unwrap();
    }
    let g = b.build();
    let p = Partition::from_assignments(vec![0, 0, 0, 0, 1, 1, 1, 1], 2).unwrap();
    let path = dir.join("toy.cgteg");
    let f = std::fs::File::create(&path).unwrap();
    cgte_graph::store::write_bundle(f, &g, Some(&p)).unwrap();

    let scn = format!(
        "[scenario]\nname = \"file-src\"\nseed = 5\n\
         [graph.g]\ngenerator = \"file\"\nfile = \"{}\"\n\
         [sampler.rw]\nkind = \"rw\"\n\
         [experiment]\nsizes = [10, 20]\nreplications = 2\ntargets = [\"size:all\"]\n",
        path.display()
    );
    let doc = parse_scn(&scn).unwrap();
    let scenario = resolve_scenario(&doc, Scale::Quick, None).unwrap();
    let plan = build_plan(&scenario).unwrap();
    let cache = ResourceCache::new();
    let outputs = run_plan(&plan, &cache, &quiet_opts(), &scn).unwrap();
    let stats = cache.stats();
    assert_eq!(stats.builds, 0, "file sources never count as builds");
    assert_eq!(stats.loads, 1, "the file is loaded once");
    let exp = outputs
        .values()
        .find_map(|o| match o {
            JobOutput::Experiment(e) => Some(e),
            _ => None,
        })
        .expect("one experiment ran");
    assert_eq!(exp.graph.nodes, 8);
    assert_eq!(exp.graph.num_categories, 2);
    std::fs::remove_dir_all(&dir).ok();
}

/// A missing or malformed `.cgteg` surfaces as a job error, not a panic.
#[test]
fn file_graph_source_errors_cleanly() {
    let dir = std::env::temp_dir().join(format!("cgte-file-bad-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.cgteg");
    std::fs::write(&bad, b"this is not a cgteg file").unwrap();
    for path in [
        bad.display().to_string(),
        dir.join("absent.cgteg").display().to_string(),
    ] {
        let scn = format!(
            "[scenario]\nname = \"file-bad\"\n\
             [graph.g]\ngenerator = \"file\"\nfile = \"{path}\"\n\
             [experiment]\nsizes = [10]\nreplications = 1\ntargets = [\"size:all\"]\n",
        );
        let doc = parse_scn(&scn).unwrap();
        let scenario = resolve_scenario(&doc, Scale::Quick, None).unwrap();
        let plan = build_plan(&scenario).unwrap();
        let cache = ResourceCache::new();
        let err = run_plan(&plan, &cache, &quiet_opts(), &scn).unwrap_err();
        assert!(
            err.msg.contains("cannot open") || err.msg.contains("cannot load"),
            "unexpected error: {err}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Facebook bundles are cached too: several custom stages over one
/// simulation share a single generation.
#[test]
fn facebook_bundle_shared_across_stages() {
    let doc = parse_scn(cgte_scenarios::builtin_scenario("fig7").unwrap()).unwrap();
    let scenario = resolve_scenario(&doc, Scale::Quick, None).unwrap();
    let plan = build_plan(&scenario).unwrap();
    let cache = ResourceCache::new();
    let outputs = run_plan(&plan, &cache, &quiet_opts(), "fig7").unwrap();
    assert_eq!(outputs.len(), 4, "one build + three panels");
    let stats = cache.stats();
    assert_eq!(stats.builds, 1, "one simulation build for three panels");
    assert!(stats.hits >= 3);
}
