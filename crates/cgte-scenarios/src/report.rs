//! Reporting: the emit helpers shared by every scenario reporter (the
//! exact printing/CSV/SVG conventions of the legacy figure binaries) and
//! the generic reporter used for ad-hoc `.scn` files.

use crate::plan::Plan;
use crate::runner::{JobOutput, ReportSection};
use crate::{EngineError, Scale};
use cgte_eval::Table;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Formats an NRMSE value compactly, with a placeholder for undefined.
pub fn fmt_nrmse(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.4}")
    } else {
        "-".into()
    }
}

/// Logarithmically spaced sample sizes from `lo` to `hi` (inclusive-ish),
/// `points` per decade boundary style of the paper's x-axes.
pub fn log_sizes(lo: usize, hi: usize, points: usize) -> Vec<usize> {
    assert!(lo >= 1 && hi >= lo && points >= 2);
    let (l, h) = ((lo as f64).ln(), (hi as f64).ln());
    let mut v: Vec<usize> = (0..points)
        .map(|i| (l + (h - l) * i as f64 / (points - 1) as f64).exp().round() as usize)
        .collect();
    v.dedup();
    v
}

/// Prints tables and saves CSV/SVG artifacts exactly like the legacy
/// `RunArgs::emit`/`emit_plot` methods did, so refactored binaries emit
/// byte-identical output.
#[derive(Debug, Clone, Default)]
pub struct Emitter {
    /// Where to dump CSV series and plots, if requested (`--csv DIR`).
    pub csv_dir: Option<PathBuf>,
}

impl Emitter {
    /// Prints a table under a heading and optionally saves it as CSV.
    pub fn emit(&self, name: &str, heading: &str, table: &Table) {
        println!("\n## {heading}\n");
        print!("{table}");
        if let Some(dir) = &self.csv_dir {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {dir:?}: {e}");
                return;
            }
            let path = dir.join(format!("{name}.csv"));
            match table.save_csv(&path) {
                Ok(()) => eprintln!("saved {path:?}"),
                Err(e) => eprintln!("cannot save {path:?}: {e}"),
            }
        }
    }

    /// Saves an SVG log-log plot of the given series next to the CSVs
    /// (no-op without a CSV directory).
    pub fn emit_plot(&self, name: &str, title: &str, series: Vec<cgte_viz::PlotSeries>) {
        let Some(dir) = &self.csv_dir else { return };
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir:?}: {e}");
            return;
        }
        let opts = cgte_viz::PlotOptions {
            title: title.into(),
            ..Default::default()
        };
        let svg = cgte_viz::svg_line_plot(&series, &opts);
        let path = dir.join(format!("{name}.svg"));
        match std::fs::write(&path, svg) {
            Ok(()) => eprintln!("saved {path:?}"),
            Err(e) => eprintln!("cannot save {path:?}: {e}"),
        }
    }

    /// Saves an exported file (fig7's DOT/JSON/GraphML dumps) next to the
    /// CSVs, matching the legacy binaries' messages.
    pub fn emit_file(&self, name: &str, ext: &str, content: &str) {
        let Some(dir) = &self.csv_dir else { return };
        let _ = std::fs::create_dir_all(dir);
        let path = dir.join(format!("{name}.{ext}"));
        match std::fs::write(&path, content) {
            Ok(()) => eprintln!("saved {path:?}"),
            Err(e) => eprintln!("cannot save {path:?}: {e}"),
        }
    }

    /// Renders one report section (tables through [`Emitter::emit`]).
    pub fn section(&self, s: &ReportSection) {
        match s {
            ReportSection::Table {
                name,
                heading,
                table,
            } => self.emit(name, heading, table),
            // Text sections carry their exact bytes (including newlines).
            ReportSection::Text(t) => print!("{t}"),
            ReportSection::File { name, ext, content } => self.emit_file(name, ext, content),
            ReportSection::Values(_) => {}
        }
    }
}

/// Everything a reporter needs: the plan (for headings/params), the job
/// outputs, and the emit sink.
pub struct RunContext<'a> {
    /// The expanded plan the run executed.
    pub plan: &'a Plan,
    /// Outputs keyed by job id.
    pub outputs: &'a BTreeMap<String, JobOutput>,
    /// Print/CSV sink.
    pub emitter: Emitter,
    /// The run scale (some legacy headings depend on it).
    pub scale: Scale,
}

impl RunContext<'_> {
    /// A job's output, by id.
    pub fn output(&self, id: &str) -> Result<&JobOutput, EngineError> {
        self.outputs
            .get(id)
            .ok_or_else(|| EngineError::msg(format!("no output for job {id:?}")))
    }

    /// A rebuilt [`cgte_eval::ExperimentResult`] for an experiment job.
    pub fn experiment(&self, id: &str) -> Result<cgte_eval::ExperimentResult, EngineError> {
        match self.output(id)? {
            JobOutput::Experiment(e) => Ok(e.to_result()),
            _ => Err(EngineError::msg(format!(
                "job {id:?} did not produce an experiment output"
            ))),
        }
    }

    /// The raw experiment output (sizes/graph info) for a job.
    pub fn experiment_raw(
        &self,
        id: &str,
    ) -> Result<&crate::runner::ExperimentOutput, EngineError> {
        match self.output(id)? {
            JobOutput::Experiment(e) => Ok(e),
            _ => Err(EngineError::msg(format!(
                "job {id:?} did not produce an experiment output"
            ))),
        }
    }

    /// A custom job's columns.
    pub fn columns(&self, id: &str) -> Result<&[crate::runner::NamedSeries], EngineError> {
        match self.output(id)? {
            JobOutput::Columns(c) => Ok(c),
            _ => Err(EngineError::msg(format!(
                "job {id:?} did not produce column output"
            ))),
        }
    }

    /// A custom job's report sections.
    pub fn sections(&self, id: &str) -> Result<&[ReportSection], EngineError> {
        match self.output(id)? {
            JobOutput::Sections(s) => Ok(s),
            _ => Err(EngineError::msg(format!(
                "job {id:?} did not produce sections"
            ))),
        }
    }

    /// The `Values` entries of a sections-producing job, flattened.
    pub fn values(&self, id: &str) -> Result<Vec<(String, String)>, EngineError> {
        let mut out = Vec::new();
        for s in self.sections(id)? {
            if let ReportSection::Values(v) = s {
                out.extend(v.iter().cloned());
            }
        }
        Ok(out)
    }
}

/// The fallback reporter for ad-hoc scenarios: every job's output is
/// rendered in plan order (experiment series as a `|S|` table, columns as
/// a labelled table, sections verbatim).
pub fn generic_report(ctx: &RunContext<'_>) -> Result<(), EngineError> {
    for job in &ctx.plan.jobs {
        let Some(out) = ctx.outputs.get(&job.id) else {
            continue;
        };
        match out {
            JobOutput::None => {}
            JobOutput::Experiment(e) => {
                let mut headers = vec!["|S|".to_string()];
                for (k, t, _, _) in &e.entries {
                    headers.push(format!(
                        "{}|{}",
                        k.name(),
                        match t {
                            cgte_eval::Target::Size(c) => format!("size:{c}"),
                            cgte_eval::Target::Weight(a, b) => format!("weight:{a}-{b}"),
                        }
                    ));
                }
                let mut table = Table::new(headers);
                for (i, s) in e.sizes.iter().enumerate() {
                    let mut row = vec![s.to_string()];
                    for (_, _, _, series) in &e.entries {
                        row.push(fmt_nrmse(series[i]));
                    }
                    table.row(row);
                }
                ctx.emitter.emit(
                    &sanitize_name(&job.id),
                    &format!("{} — NRMSE", job.id),
                    &table,
                );
            }
            JobOutput::Columns(cols) => {
                let headers: Vec<String> = cols.iter().map(|c| c.label.clone()).collect();
                let rows = cols.iter().map(|c| c.values.len()).max().unwrap_or(0);
                let mut table = Table::new(headers);
                for i in 0..rows {
                    table.row(
                        cols.iter()
                            .map(|c| c.values.get(i).map(|v| fmt_nrmse(*v)).unwrap_or_default())
                            .collect(),
                    );
                }
                ctx.emitter
                    .emit(&sanitize_name(&job.id), &job.id.to_string(), &table);
            }
            JobOutput::Sections(sections) => {
                for s in sections {
                    ctx.emitter.section(s);
                }
            }
        }
    }
    Ok(())
}

fn sanitize_name(id: &str) -> String {
    id.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}
