//! Run-directory artifacts: per-job CSV + JSON series dumps and the run
//! manifest that makes `--resume` possible.
//!
//! Layout under `--out DIR`:
//!
//! ```text
//! DIR/manifest.json      # scenario name, fingerprint, completed job ids
//! DIR/jobs/<job>.json    # full job output (reloadable)
//! DIR/jobs/<job>.csv     # the same series as CSV, for humans/plots
//! ```
//!
//! The manifest records a fingerprint of (scenario source, scale, seed);
//! resuming against a run directory written by a different scenario or at
//! different parameters is rejected rather than silently mixed.
//!
//! Serialization is a hand-rolled JSON subset (the build environment has
//! no serde): objects, arrays, strings, and numbers, with non-finite
//! floats encoded as the strings `"NaN"`, `"inf"`, `"-inf"` so that NRMSE
//! series round-trip exactly.

use crate::runner::{ExperimentOutput, GraphInfo, JobOutput, NamedSeries, ReportSection};
use crate::{EngineError, RunOptions};
use cgte_eval::{EstimatorKind, Table, Target};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

// ---------------------------------------------------------------------------
// Minimal JSON value + parser (we only read what we wrote).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// null
    Null,
    /// true/false
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion order preserved).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn str(&self) -> Result<&str, EngineError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(EngineError::msg(format!("expected string, got {other:?}"))),
        }
    }

    fn arr(&self) -> Result<&[Json], EngineError> {
        match self {
            Json::Arr(a) => Ok(a),
            other => Err(EngineError::msg(format!("expected array, got {other:?}"))),
        }
    }

    /// A float, honoring the non-finite string encodings.
    fn f64(&self) -> Result<f64, EngineError> {
        match self {
            Json::Num(x) => Ok(*x),
            Json::Str(s) => match s.as_str() {
                "NaN" => Ok(f64::NAN),
                "inf" => Ok(f64::INFINITY),
                "-inf" => Ok(f64::NEG_INFINITY),
                other => Err(EngineError::msg(format!("expected number, got {other:?}"))),
            },
            other => Err(EngineError::msg(format!("expected number, got {other:?}"))),
        }
    }

    fn usize(&self) -> Result<usize, EngineError> {
        let x = self.f64()?;
        if x.fract() != 0.0 || x < 0.0 {
            return Err(EngineError::msg(format!("expected integer, got {x}")));
        }
        Ok(x as usize)
    }
}

/// Parses a JSON document.
pub fn parse_json(text: &str) -> Result<Json, EngineError> {
    let chars: Vec<char> = text.chars().collect();
    let mut pos = 0;
    let v = json_value(&chars, &mut pos)?;
    json_ws(&chars, &mut pos);
    if pos != chars.len() {
        return Err(EngineError::msg("trailing characters after JSON value"));
    }
    Ok(v)
}

fn json_ws(b: &[char], pos: &mut usize) {
    while *pos < b.len() && b[*pos].is_whitespace() {
        *pos += 1;
    }
}

fn json_value(b: &[char], pos: &mut usize) -> Result<Json, EngineError> {
    json_ws(b, pos);
    match b.get(*pos) {
        Some('{') => {
            *pos += 1;
            let mut fields = Vec::new();
            loop {
                json_ws(b, pos);
                if b.get(*pos) == Some(&'}') {
                    *pos += 1;
                    return Ok(Json::Obj(fields));
                }
                if !fields.is_empty() {
                    if b.get(*pos) != Some(&',') {
                        return Err(EngineError::msg("expected ',' or '}' in object"));
                    }
                    *pos += 1;
                    json_ws(b, pos);
                }
                let Json::Str(key) = json_value(b, pos)? else {
                    return Err(EngineError::msg("object key must be a string"));
                };
                json_ws(b, pos);
                if b.get(*pos) != Some(&':') {
                    return Err(EngineError::msg("expected ':' after object key"));
                }
                *pos += 1;
                fields.push((key, json_value(b, pos)?));
            }
        }
        Some('[') => {
            *pos += 1;
            let mut items = Vec::new();
            loop {
                json_ws(b, pos);
                if b.get(*pos) == Some(&']') {
                    *pos += 1;
                    return Ok(Json::Arr(items));
                }
                if !items.is_empty() {
                    if b.get(*pos) != Some(&',') {
                        return Err(EngineError::msg("expected ',' or ']' in array"));
                    }
                    *pos += 1;
                }
                items.push(json_value(b, pos)?);
            }
        }
        Some('"') => {
            *pos += 1;
            let mut out = String::new();
            while let Some(&c) = b.get(*pos) {
                *pos += 1;
                match c {
                    '"' => return Ok(Json::Str(out)),
                    '\\' => {
                        let Some(&e) = b.get(*pos) else {
                            return Err(EngineError::msg("unterminated escape"));
                        };
                        *pos += 1;
                        out.push(match e {
                            'n' => '\n',
                            't' => '\t',
                            'r' => '\r',
                            '"' => '"',
                            '\\' => '\\',
                            '/' => '/',
                            'u' => {
                                let hex: String = b
                                    .get(*pos..*pos + 4)
                                    .ok_or_else(|| EngineError::msg("short \\u escape"))?
                                    .iter()
                                    .collect();
                                *pos += 4;
                                let code = u32::from_str_radix(&hex, 16)
                                    .map_err(|_| EngineError::msg("bad \\u escape"))?;
                                char::from_u32(code)
                                    .ok_or_else(|| EngineError::msg("bad \\u code point"))?
                            }
                            other => {
                                return Err(EngineError::msg(format!("unknown escape \\{other}")))
                            }
                        });
                    }
                    other => out.push(other),
                }
            }
            Err(EngineError::msg("unterminated string"))
        }
        Some(&c) if c == 't' || c == 'f' || c == 'n' => {
            for (word, val) in [
                ("true", Json::Bool(true)),
                ("false", Json::Bool(false)),
                ("null", Json::Null),
            ] {
                let end = *pos + word.len();
                if b.len() >= end && b[*pos..end].iter().collect::<String>() == word {
                    *pos = end;
                    return Ok(val);
                }
            }
            Err(EngineError::msg("invalid JSON literal"))
        }
        Some(&c) if c.is_ascii_digit() || c == '-' => {
            let start = *pos;
            while *pos < b.len()
                && (b[*pos].is_ascii_digit() || matches!(b[*pos], '-' | '+' | '.' | 'e' | 'E'))
            {
                *pos += 1;
            }
            let text: String = b[start..*pos].iter().collect();
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|e| EngineError::msg(format!("invalid number {text:?}: {e}")))
        }
        other => Err(EngineError::msg(format!(
            "unexpected character {other:?} in JSON"
        ))),
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a float with exact round-tripping (shortest representation),
/// encoding non-finite values as strings.
fn json_f64(x: f64) -> String {
    if x.is_nan() {
        "\"NaN\"".into()
    } else if x == f64::INFINITY {
        "\"inf\"".into()
    } else if x == f64::NEG_INFINITY {
        "\"-inf\"".into()
    } else {
        format!("{x:?}")
    }
}

// ---------------------------------------------------------------------------
// JobOutput <-> JSON

fn target_str(t: Target) -> String {
    match t {
        Target::Size(c) => format!("size:{c}"),
        Target::Weight(a, b) => format!("weight:{a}-{b}"),
    }
}

fn parse_target(s: &str) -> Result<Target, EngineError> {
    let (kind, arg) = s
        .split_once(':')
        .ok_or_else(|| EngineError::msg(format!("bad target {s:?}")))?;
    match kind {
        "size" => {
            Ok(Target::Size(arg.parse().map_err(|_| {
                EngineError::msg(format!("bad target {s:?}"))
            })?))
        }
        "weight" => {
            let (a, b) = arg
                .split_once('-')
                .ok_or_else(|| EngineError::msg(format!("bad target {s:?}")))?;
            Ok(Target::Weight(
                a.parse()
                    .map_err(|_| EngineError::msg(format!("bad target {s:?}")))?,
                b.parse()
                    .map_err(|_| EngineError::msg(format!("bad target {s:?}")))?,
            ))
        }
        _ => Err(EngineError::msg(format!("bad target {s:?}"))),
    }
}

fn kind_str(k: EstimatorKind) -> &'static str {
    k.name()
}

fn parse_kind(s: &str) -> Result<EstimatorKind, EngineError> {
    cgte_eval::ALL_ESTIMATORS
        .iter()
        .copied()
        .find(|k| k.name() == s)
        .ok_or_else(|| EngineError::msg(format!("unknown estimator kind {s:?}")))
}

fn floats_json(v: &[f64]) -> String {
    let items: Vec<String> = v.iter().map(|&x| json_f64(x)).collect();
    format!("[{}]", items.join(","))
}

/// Serializes a job output to JSON.
pub fn output_to_json(out: &JobOutput) -> String {
    match out {
        JobOutput::None => "{\"type\":\"none\"}".into(),
        JobOutput::Experiment(e) => {
            let sizes: Vec<String> = e.sizes.iter().map(|s| s.to_string()).collect();
            let entries: Vec<String> = e
                .entries
                .iter()
                .map(|(k, t, truth, series)| {
                    format!(
                        "{{\"kind\":\"{}\",\"target\":\"{}\",\"truth\":{},\"series\":{}}}",
                        kind_str(*k),
                        target_str(*t),
                        json_f64(*truth),
                        floats_json(series)
                    )
                })
                .collect();
            format!(
                "{{\"type\":\"experiment\",\"sizes\":[{}],\"graph\":{{\"nodes\":{},\"edges\":{},\"mean_degree\":{},\"num_categories\":{}}},\"entries\":[{}]}}",
                sizes.join(","),
                e.graph.nodes,
                e.graph.edges,
                json_f64(e.graph.mean_degree),
                e.graph.num_categories,
                entries.join(",")
            )
        }
        JobOutput::Columns(cols) => {
            let items: Vec<String> = cols
                .iter()
                .map(|c| {
                    format!(
                        "{{\"label\":\"{}\",\"values\":{}}}",
                        json_escape(&c.label),
                        floats_json(&c.values)
                    )
                })
                .collect();
            format!("{{\"type\":\"columns\",\"cols\":[{}]}}", items.join(","))
        }
        JobOutput::Sections(sections) => {
            let items: Vec<String> = sections
                .iter()
                .map(|s| match s {
                    ReportSection::Table {
                        name,
                        heading,
                        table,
                    } => {
                        let headers: Vec<String> = table
                            .headers()
                            .iter()
                            .map(|h| format!("\"{}\"", json_escape(h)))
                            .collect();
                        let rows: Vec<String> = table
                            .rows()
                            .iter()
                            .map(|r| {
                                let cells: Vec<String> =
                                    r.iter().map(|c| format!("\"{}\"", json_escape(c))).collect();
                                format!("[{}]", cells.join(","))
                            })
                            .collect();
                        format!(
                            "{{\"kind\":\"table\",\"name\":\"{}\",\"heading\":\"{}\",\"headers\":[{}],\"rows\":[{}]}}",
                            json_escape(name),
                            json_escape(heading),
                            headers.join(","),
                            rows.join(",")
                        )
                    }
                    ReportSection::Text(t) => {
                        format!("{{\"kind\":\"text\",\"text\":\"{}\"}}", json_escape(t))
                    }
                    ReportSection::File { name, ext, content } => format!(
                        "{{\"kind\":\"file\",\"name\":\"{}\",\"ext\":\"{}\",\"content\":\"{}\"}}",
                        json_escape(name),
                        json_escape(ext),
                        json_escape(content)
                    ),
                    ReportSection::Values(vals) => {
                        let items: Vec<String> = vals
                            .iter()
                            .map(|(k, v)| {
                                format!("[\"{}\",\"{}\"]", json_escape(k), json_escape(v))
                            })
                            .collect();
                        format!("{{\"kind\":\"values\",\"values\":[{}]}}", items.join(","))
                    }
                })
                .collect();
            format!(
                "{{\"type\":\"sections\",\"sections\":[{}]}}",
                items.join(",")
            )
        }
    }
}

/// Deserializes a job output from JSON.
pub fn output_from_json(text: &str) -> Result<JobOutput, EngineError> {
    let v = parse_json(text)?;
    let ty = v
        .get("type")
        .ok_or_else(|| EngineError::msg("artifact JSON has no type"))?
        .str()?;
    match ty {
        "none" => Ok(JobOutput::None),
        "experiment" => {
            let sizes = v
                .get("sizes")
                .ok_or_else(|| EngineError::msg("missing sizes"))?
                .arr()?
                .iter()
                .map(Json::usize)
                .collect::<Result<Vec<_>, _>>()?;
            let g = v
                .get("graph")
                .ok_or_else(|| EngineError::msg("missing graph info"))?;
            let graph = GraphInfo {
                nodes: g
                    .get("nodes")
                    .ok_or_else(|| EngineError::msg("missing nodes"))?
                    .usize()?,
                edges: g
                    .get("edges")
                    .ok_or_else(|| EngineError::msg("missing edges"))?
                    .usize()?,
                mean_degree: g
                    .get("mean_degree")
                    .ok_or_else(|| EngineError::msg("missing mean_degree"))?
                    .f64()?,
                num_categories: g
                    .get("num_categories")
                    .ok_or_else(|| EngineError::msg("missing num_categories"))?
                    .usize()?,
            };
            let entries = v
                .get("entries")
                .ok_or_else(|| EngineError::msg("missing entries"))?
                .arr()?
                .iter()
                .map(|e| {
                    let kind = parse_kind(
                        e.get("kind")
                            .ok_or_else(|| EngineError::msg("missing kind"))?
                            .str()?,
                    )?;
                    let target = parse_target(
                        e.get("target")
                            .ok_or_else(|| EngineError::msg("missing target"))?
                            .str()?,
                    )?;
                    let truth = e
                        .get("truth")
                        .ok_or_else(|| EngineError::msg("missing truth"))?
                        .f64()?;
                    let series = e
                        .get("series")
                        .ok_or_else(|| EngineError::msg("missing series"))?
                        .arr()?
                        .iter()
                        .map(Json::f64)
                        .collect::<Result<Vec<_>, _>>()?;
                    Ok((kind, target, truth, series))
                })
                .collect::<Result<Vec<_>, EngineError>>()?;
            Ok(JobOutput::Experiment(ExperimentOutput {
                sizes,
                entries,
                graph,
            }))
        }
        "columns" => {
            let cols = v
                .get("cols")
                .ok_or_else(|| EngineError::msg("missing cols"))?
                .arr()?
                .iter()
                .map(|c| {
                    Ok(NamedSeries {
                        label: c
                            .get("label")
                            .ok_or_else(|| EngineError::msg("missing label"))?
                            .str()?
                            .to_string(),
                        values: c
                            .get("values")
                            .ok_or_else(|| EngineError::msg("missing values"))?
                            .arr()?
                            .iter()
                            .map(Json::f64)
                            .collect::<Result<Vec<_>, _>>()?,
                    })
                })
                .collect::<Result<Vec<_>, EngineError>>()?;
            Ok(JobOutput::Columns(cols))
        }
        "sections" => {
            let sections = v
                .get("sections")
                .ok_or_else(|| EngineError::msg("missing sections"))?
                .arr()?
                .iter()
                .map(|s| {
                    let kind = s
                        .get("kind")
                        .ok_or_else(|| EngineError::msg("missing section kind"))?
                        .str()?;
                    Ok(match kind {
                        "table" => {
                            let headers: Vec<String> = s
                                .get("headers")
                                .ok_or_else(|| EngineError::msg("missing headers"))?
                                .arr()?
                                .iter()
                                .map(|h| h.str().map(String::from))
                                .collect::<Result<_, _>>()?;
                            let mut table = Table::new(headers);
                            for r in s
                                .get("rows")
                                .ok_or_else(|| EngineError::msg("missing rows"))?
                                .arr()?
                            {
                                let row: Vec<String> = r
                                    .arr()?
                                    .iter()
                                    .map(|c| c.str().map(String::from))
                                    .collect::<Result<_, _>>()?;
                                table.row(row);
                            }
                            ReportSection::Table {
                                name: s
                                    .get("name")
                                    .ok_or_else(|| EngineError::msg("missing name"))?
                                    .str()?
                                    .to_string(),
                                heading: s
                                    .get("heading")
                                    .ok_or_else(|| EngineError::msg("missing heading"))?
                                    .str()?
                                    .to_string(),
                                table,
                            }
                        }
                        "text" => ReportSection::Text(
                            s.get("text")
                                .ok_or_else(|| EngineError::msg("missing text"))?
                                .str()?
                                .to_string(),
                        ),
                        "file" => ReportSection::File {
                            name: s
                                .get("name")
                                .ok_or_else(|| EngineError::msg("missing name"))?
                                .str()?
                                .to_string(),
                            ext: s
                                .get("ext")
                                .ok_or_else(|| EngineError::msg("missing ext"))?
                                .str()?
                                .to_string(),
                            content: s
                                .get("content")
                                .ok_or_else(|| EngineError::msg("missing content"))?
                                .str()?
                                .to_string(),
                        },
                        "values" => ReportSection::Values(
                            s.get("values")
                                .ok_or_else(|| EngineError::msg("missing values"))?
                                .arr()?
                                .iter()
                                .map(|pair| {
                                    let p = pair.arr()?;
                                    if p.len() != 2 {
                                        return Err(EngineError::msg(
                                            "values pair must have 2 items",
                                        ));
                                    }
                                    Ok((p[0].str()?.to_string(), p[1].str()?.to_string()))
                                })
                                .collect::<Result<Vec<_>, EngineError>>()?,
                        ),
                        other => {
                            return Err(EngineError::msg(format!("unknown section kind {other:?}")))
                        }
                    })
                })
                .collect::<Result<Vec<_>, EngineError>>()?;
            Ok(JobOutput::Sections(sections))
        }
        other => Err(EngineError::msg(format!("unknown output type {other:?}"))),
    }
}

/// Renders a job output as CSV (the human-readable artifact twin).
pub fn output_to_csv(out: &JobOutput) -> String {
    let mut s = String::new();
    match out {
        JobOutput::None => {}
        JobOutput::Experiment(e) => {
            s.push_str("size");
            for (k, t, _, _) in &e.entries {
                let _ = write!(s, ",{}|{}", kind_str(*k), target_str(*t));
            }
            s.push('\n');
            for (i, size) in e.sizes.iter().enumerate() {
                let _ = write!(s, "{size}");
                for (_, _, _, series) in &e.entries {
                    let _ = write!(s, ",{}", series[i]);
                }
                s.push('\n');
            }
        }
        JobOutput::Columns(cols) => {
            let labels: Vec<&str> = cols.iter().map(|c| c.label.as_str()).collect();
            s.push_str(&labels.join(","));
            s.push('\n');
            let rows = cols.iter().map(|c| c.values.len()).max().unwrap_or(0);
            for i in 0..rows {
                let cells: Vec<String> = cols
                    .iter()
                    .map(|c| c.values.get(i).map(|v| v.to_string()).unwrap_or_default())
                    .collect();
                s.push_str(&cells.join(","));
                s.push('\n');
            }
        }
        JobOutput::Sections(sections) => {
            for sec in sections {
                if let ReportSection::Table { heading, table, .. } = sec {
                    let _ = writeln!(s, "# {heading}");
                    let mut buf = Vec::new();
                    if table.write_csv(&mut buf).is_ok() {
                        s.push_str(&String::from_utf8_lossy(&buf));
                    }
                }
            }
        }
    }
    s
}

// ---------------------------------------------------------------------------
// Run directory + manifest

/// FNV-1a over arbitrary bytes; the primitive behind both fingerprints.
fn fnv1a(chunks: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for chunk in chunks {
        for &b in *chunk {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

/// FNV-1a over the scenario source + options, for manifest compatibility
/// checks.
pub fn fingerprint(source: &str, opts: &RunOptions) -> String {
    let seed_bytes;
    let mut chunks: Vec<&[u8]> = vec![source.as_bytes(), opts.scale.name().as_bytes()];
    if let Some(s) = opts.seed {
        seed_bytes = s.to_le_bytes();
        chunks.push(&seed_bytes);
    }
    format!("{:016x}", fnv1a(&chunks))
}

/// Content fingerprint of one job artifact, recorded in the manifest so
/// `--resume` detects truncated or corrupted artifacts and re-executes
/// exactly those jobs.
pub fn artifact_fingerprint(content: &str) -> String {
    format!("{:016x}", fnv1a(&[content.as_bytes()]))
}

/// A run directory with its manifest. `done` maps completed job ids to
/// their artifact content fingerprints (`None` for manifests written
/// before per-job fingerprints existed).
pub struct RunDir {
    jobs_dir: PathBuf,
    manifest_path: PathBuf,
    scenario: String,
    fingerprint: String,
    done: BTreeMap<String, Option<String>>,
}

fn sanitize(id: &str) -> String {
    id.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

impl RunDir {
    /// Opens (or creates) a run directory for a scenario. With
    /// `opts.resume`, an existing manifest is validated and its completed
    /// set loaded; without it, any previous manifest is discarded.
    pub fn open(
        dir: &Path,
        scenario: &str,
        source: &str,
        opts: &RunOptions,
    ) -> Result<RunDir, EngineError> {
        let jobs_dir = dir.join("jobs");
        std::fs::create_dir_all(&jobs_dir)
            .map_err(|e| EngineError::msg(format!("cannot create {jobs_dir:?}: {e}")))?;
        let manifest_path = dir.join("manifest.json");
        let fp = fingerprint(source, opts);
        let mut rd = RunDir {
            jobs_dir,
            manifest_path,
            scenario: scenario.to_string(),
            fingerprint: fp.clone(),
            done: BTreeMap::new(),
        };
        if opts.resume && rd.manifest_path.exists() {
            let text = std::fs::read_to_string(&rd.manifest_path)
                .map_err(|e| EngineError::msg(format!("cannot read manifest: {e}")))?;
            let v = parse_json(&text)?;
            let prev_fp = v
                .get("fingerprint")
                .and_then(|f| match f {
                    Json::Str(s) => Some(s.clone()),
                    _ => None,
                })
                .unwrap_or_default();
            if prev_fp != fp {
                return Err(EngineError::msg(format!(
                    "--resume: run directory was written by a different scenario/scale/seed (fingerprint {prev_fp} != {fp})"
                )));
            }
            if let Some(Json::Arr(ids)) = v.get("done") {
                for entry in ids {
                    match entry {
                        // Legacy manifests: plain id, no content hash.
                        Json::Str(s) => {
                            rd.done.insert(s.clone(), None);
                        }
                        Json::Obj(_) => {
                            if let (Some(Json::Str(id)), Some(Json::Str(h))) =
                                (entry.get("id"), entry.get("hash"))
                            {
                                rd.done.insert(id.clone(), Some(h.clone()));
                            }
                        }
                        _ => {}
                    }
                }
            }
        } else {
            rd.write_manifest()?;
        }
        Ok(rd)
    }

    /// Loads a previously completed job's output, if recorded **and**
    /// intact. A missing, truncated, or corrupted artifact — detected by
    /// the manifest's per-job content fingerprint, or by a parse failure
    /// for pre-fingerprint manifests — yields `Ok(None)`, so `--resume`
    /// re-executes exactly that job instead of failing the run.
    pub fn load_completed(&self, id: &str) -> Result<Option<JobOutput>, EngineError> {
        let Some(recorded_hash) = self.done.get(id) else {
            return Ok(None);
        };
        let path = self.jobs_dir.join(format!("{}.json", sanitize(id)));
        let Ok(text) = std::fs::read_to_string(&path) else {
            return Ok(None); // manifest said done but artifact is gone: re-run
        };
        if let Some(h) = recorded_hash {
            if artifact_fingerprint(&text) != *h {
                eprintln!("warning: artifact {path:?} does not match its recorded fingerprint; re-running {id}");
                return Ok(None);
            }
        }
        match output_from_json(&text) {
            Ok(out) => Ok(Some(out)),
            Err(e) => {
                eprintln!(
                    "warning: corrupt artifact {path:?} ({}); re-running {id}",
                    e.msg
                );
                Ok(None)
            }
        }
    }

    /// Persists one job's output and marks it complete in the manifest,
    /// recording the artifact's content fingerprint.
    pub fn record(&mut self, id: &str, out: &JobOutput) -> Result<(), EngineError> {
        let base = sanitize(id);
        let json = output_to_json(out);
        let json_path = self.jobs_dir.join(format!("{base}.json"));
        std::fs::write(&json_path, &json)
            .map_err(|e| EngineError::msg(format!("cannot write {json_path:?}: {e}")))?;
        let csv = output_to_csv(out);
        if !csv.is_empty() {
            let csv_path = self.jobs_dir.join(format!("{base}.csv"));
            std::fs::write(&csv_path, csv)
                .map_err(|e| EngineError::msg(format!("cannot write {csv_path:?}: {e}")))?;
        }
        self.done
            .insert(id.to_string(), Some(artifact_fingerprint(&json)));
        self.write_manifest()
    }

    fn write_manifest(&self) -> Result<(), EngineError> {
        let ids: Vec<String> = self
            .done
            .iter()
            .map(|(id, hash)| match hash {
                Some(h) => format!("{{\"id\":\"{}\",\"hash\":\"{h}\"}}", json_escape(id)),
                None => format!("\"{}\"", json_escape(id)),
            })
            .collect();
        let text = format!(
            "{{\"scenario\":\"{}\",\"fingerprint\":\"{}\",\"done\":[{}]}}\n",
            json_escape(&self.scenario),
            self.fingerprint,
            ids.join(",")
        );
        let tmp = self.manifest_path.with_extension("json.tmp");
        std::fs::write(&tmp, &text)
            .map_err(|e| EngineError::msg(format!("cannot write {tmp:?}: {e}")))?;
        std::fs::rename(&tmp, &self.manifest_path)
            .map_err(|e| EngineError::msg(format!("cannot update manifest: {e}")))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_output_roundtrips_exactly() {
        let out = JobOutput::Experiment(ExperimentOutput {
            sizes: vec![10, 100],
            entries: vec![
                (
                    EstimatorKind::StarSize,
                    Target::Size(3),
                    123.456,
                    vec![0.123_456_789_012_345_68, f64::NAN],
                ),
                (
                    EstimatorKind::InducedWeight,
                    Target::Weight(1, 2),
                    1e-9,
                    vec![f64::INFINITY, 0.25],
                ),
            ],
            graph: GraphInfo {
                nodes: 1000,
                edges: 5000,
                mean_degree: 10.0,
                num_categories: 10,
            },
        });
        let json = output_to_json(&out);
        let back = output_from_json(&json).unwrap();
        let JobOutput::Experiment(b) = back else {
            panic!("wrong variant")
        };
        let JobOutput::Experiment(a) = out else {
            unreachable!()
        };
        assert_eq!(a.sizes, b.sizes);
        assert_eq!(a.entries.len(), b.entries.len());
        for ((k1, t1, tr1, s1), (k2, t2, tr2, s2)) in a.entries.iter().zip(&b.entries) {
            assert_eq!(k1, k2);
            assert_eq!(t1, t2);
            assert_eq!(tr1.to_bits(), tr2.to_bits());
            for (x, y) in s1.iter().zip(s2) {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "series must round-trip bit-exactly"
                );
            }
        }
    }

    #[test]
    fn sections_roundtrip() {
        let mut table = Table::new(vec!["a".into(), "b".into()]);
        table.row(vec!["1".into(), "x,y\"z\"".into()]);
        let out = JobOutput::Sections(vec![
            ReportSection::Table {
                name: "t1".into(),
                heading: "Head \"quoted\"".into(),
                table,
            },
            ReportSection::Text("line1\nline2".into()),
            ReportSection::File {
                name: "g".into(),
                ext: "dot".into(),
                content: "digraph {}".into(),
            },
            ReportSection::Values(vec![("k".into(), "v".into())]),
        ]);
        let back = output_from_json(&output_to_json(&out)).unwrap();
        let JobOutput::Sections(secs) = back else {
            panic!("wrong variant")
        };
        assert_eq!(secs.len(), 4);
        match &secs[0] {
            ReportSection::Table { heading, table, .. } => {
                assert_eq!(heading, "Head \"quoted\"");
                assert_eq!(table.rows()[0][1], "x,y\"z\"");
            }
            _ => panic!("expected table"),
        }
    }
}
