//! The content-keyed build cache shared by every job in a run, with an
//! optional persistent disk tier.
//!
//! Keys are the canonical spec strings of [`crate::plan::ResolvedGraph`];
//! values are `Arc`-shared built resources. The first requester builds
//! (under a per-key `OnceLock`, so concurrent requesters block instead of
//! duplicating work); every later requester gets the shared `Arc` and is
//! counted as a cache **hit** — the statistic the engine's sweep tests
//! assert on ("a graph reused by ≥ 4 jobs is built exactly once").
//!
//! With a disk tier attached ([`ResourceCache::with_disk`], the CLI's
//! `--cache-dir`), every first-time construction is also persisted as a
//! `.cgteg` container under its content key, and later runs **load**
//! instead of building — a third counter, so "a warm run performs zero
//! graph builds" is machine-checkable (`builds == 0`, `loads > 0`).
//! Loads go through the checksummed [`cgte_graph::store`] reader; any
//! corrupted or mismatched cache file is treated as a miss and rebuilt
//! (the cache self-heals rather than failing the run). Because every
//! resource is derived deterministically from its key's RNG streams, a
//! loaded resource is bit-identical to a rebuilt one, and run artifacts
//! are byte-identical between cold and warm runs.

use crate::plan::ResolvedGraph;
use crate::EngineError;
use cgte_datasets::{
    standin, standin_huge, standin_partition, CrawlDataset, CrawlType, FacebookSim,
    FacebookSimConfig,
};
use cgte_graph::generators::{par_planted_partition, planted_partition, PlantedConfig};
use cgte_graph::store::{
    graph_sections, partition_from_container, partition_section, Container, LoadedStore, Loader,
    Section, Validate,
};
use cgte_graph::{CategoryGraph, Graph, NodeId, Partition};
use cgte_sampling::MultiWalkSample;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Deferred partition constructor (captures the post-graph RNG state).
type PartitionInit = Box<dyn FnOnce(&Graph) -> Partition + Send>;

/// A built graph + partition, with the exact category graph computed
/// lazily (shared by every job that needs it for target resolution).
pub struct BuiltGraph {
    /// The graph.
    pub graph: Graph,
    partition: OnceLock<Partition>,
    // Deferred partition construction for stand-ins: the builder captures
    // the RNG state right after graph generation, so the partition stream
    // is identical whether it is forced eagerly or lazily (jobs that only
    // need the graph — e.g. `graph-stats` — never pay for it).
    partition_init: Mutex<Option<PartitionInit>>,
    exact: OnceLock<CategoryGraph>,
}

impl BuiltGraph {
    /// A graph whose partition is already materialized.
    pub fn eager(graph: Graph, partition: Partition) -> Self {
        let cell = OnceLock::new();
        cell.set(partition).ok();
        BuiltGraph {
            graph,
            partition: cell,
            partition_init: Mutex::new(None),
            exact: OnceLock::new(),
        }
    }

    /// A graph whose partition is built on first use.
    pub fn lazy_partition(
        graph: Graph,
        init: impl FnOnce(&Graph) -> Partition + Send + 'static,
    ) -> Self {
        BuiltGraph {
            graph,
            partition: OnceLock::new(),
            partition_init: Mutex::new(Some(Box::new(init))),
            exact: OnceLock::new(),
        }
    }

    /// The node partition, constructing it on first use.
    pub fn partition(&self) -> &Partition {
        self.partition.get_or_init(|| {
            let init = self
                .partition_init
                .lock()
                .expect("partition init poisoned")
                .take()
                .expect("lazy partition initializer present");
            init(&self.graph)
        })
    }

    /// The exact category graph, computed once and shared.
    pub fn exact(&self) -> &CategoryGraph {
        self.exact
            .get_or_init(|| CategoryGraph::exact(&self.graph, self.partition()))
    }
}

/// A built Facebook-like population, optionally with the paper's two crawl
/// campaigns (generated from one continuous RNG stream, exactly like the
/// original figure binaries).
pub struct FacebookBundle {
    /// The simulated population.
    pub sim: FacebookSim,
    /// 2009-style crawls (MHRW/RW/UIS over regions); empty without crawls.
    pub c09: Vec<CrawlDataset>,
    /// 2010-style crawls (RW/S-WRW over colleges); empty without crawls.
    pub c10: Vec<CrawlDataset>,
    /// The crawl parameters `(walks09, per_walk09, walks10, per_walk10)`
    /// the datasets were drawn with, if any.
    pub crawl_params: Option<(usize, usize, usize, usize)>,
    exact_regions: OnceLock<CategoryGraph>,
    exact_colleges: OnceLock<CategoryGraph>,
}

impl FacebookBundle {
    /// Exact category graph over the region partition, computed once.
    pub fn exact_regions(&self) -> &CategoryGraph {
        self.exact_regions
            .get_or_init(|| CategoryGraph::exact(&self.sim.graph, &self.sim.regions))
    }

    /// Exact category graph over the college partition, computed once.
    pub fn exact_colleges(&self) -> &CategoryGraph {
        self.exact_colleges
            .get_or_init(|| CategoryGraph::exact(&self.sim.graph, &self.sim.colleges))
    }
}

/// A cached resource.
#[derive(Clone)]
pub enum Resource {
    /// A graph + partition.
    Graph(Arc<BuiltGraph>),
    /// A Facebook-like simulation (+ crawls).
    Facebook(Arc<FacebookBundle>),
}

impl Resource {
    /// The graph resource, or an error if the key holds a simulation.
    pub fn as_graph(&self) -> Result<&Arc<BuiltGraph>, crate::EngineError> {
        match self {
            Resource::Graph(g) => Ok(g),
            Resource::Facebook(_) => Err(crate::EngineError::msg(
                "expected a graph resource, found a facebook simulation",
            )),
        }
    }

    /// The simulation resource, or an error if the key holds a graph.
    pub fn as_facebook(&self) -> Result<&Arc<FacebookBundle>, crate::EngineError> {
        match self {
            Resource::Facebook(f) => Ok(f),
            Resource::Graph(_) => Err(crate::EngineError::msg(
                "expected a facebook simulation, found a graph resource",
            )),
        }
    }
}

/// Cache counters: `builds` actual constructions, `loads` disk-tier
/// restores, `hits` shared in-memory reuses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Number of resources actually constructed.
    pub builds: usize,
    /// Number of resources restored from the disk tier (`--cache-dir`)
    /// or loaded from a `file =` graph source.
    pub loads: usize,
    /// Number of requests served from the in-memory cache.
    pub hits: usize,
}

/// One lazily-initialized cache slot; a failed build is cached too.
type Slot = Arc<OnceLock<Result<Resource, EngineError>>>;

/// How a slot's resource came to exist, for the counters.
#[derive(Clone, Copy, PartialEq)]
enum Origin {
    /// Constructed from its generator spec.
    Built,
    /// Restored from a `.cgteg` (disk tier or `file =` source).
    Loaded,
}

/// The content-keyed resource cache shared across a run's jobs, with an
/// optional persistent `.cgteg` disk tier.
#[derive(Default)]
pub struct ResourceCache {
    slots: Mutex<HashMap<String, Slot>>,
    disk_dir: Option<PathBuf>,
    mmap: bool,
    builds: AtomicUsize,
    loads: AtomicUsize,
    hits: AtomicUsize,
}

impl ResourceCache {
    /// An empty in-memory cache (no disk tier).
    pub fn new() -> Self {
        Self::default()
    }

    /// A cache backed by a persistent directory: every build is saved as
    /// a `.cgteg` under its content key, and later runs load instead of
    /// rebuilding. The directory is created on first write.
    pub fn with_disk(dir: impl Into<PathBuf>) -> Self {
        ResourceCache {
            disk_dir: Some(dir.into()),
            ..Self::default()
        }
    }

    /// Serves `.cgteg` loads (disk tier and `file =` sources) through the
    /// zero-copy mapped path of [`cgte_graph::store::Loader`] instead of
    /// the streamed heap decode. Loaded resources are bit-identical either
    /// way; this only changes load cost. Off by default.
    pub fn mmap(mut self, on: bool) -> Self {
        self.mmap = on;
        self
    }

    /// The disk-tier directory, if one is attached.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.disk_dir.as_deref()
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            builds: self.builds.load(Ordering::SeqCst),
            loads: self.loads.load(Ordering::SeqCst),
            hits: self.hits.load(Ordering::SeqCst),
        }
    }

    /// Fetches the resource for `key`, building it with `build` on first
    /// request. Concurrent requesters for the same key block until the
    /// first finishes; exactly one construction attempt happens per key
    /// (a failed build is cached too, so every sharer sees the same
    /// error instead of retrying).
    pub fn get_or_build(
        &self,
        key: &str,
        build: impl FnOnce() -> Result<Resource, EngineError>,
    ) -> Result<Resource, EngineError> {
        self.get_counted(key, || build().map(|r| (r, Origin::Built)))
    }

    /// [`ResourceCache::get_or_build`] with the producer reporting
    /// whether it built or loaded, so the counters stay truthful.
    fn get_counted(
        &self,
        key: &str,
        produce: impl FnOnce() -> Result<(Resource, Origin), EngineError>,
    ) -> Result<Resource, EngineError> {
        let slot = {
            let mut slots = self.slots.lock().expect("cache lock poisoned");
            Arc::clone(slots.entry(key.to_string()).or_default())
        };
        let mut origin: Option<Origin> = None;
        let resource = slot.get_or_init(|| match produce() {
            Ok((r, o)) => {
                origin = Some(o);
                Ok(r)
            }
            Err(e) => {
                origin = Some(Origin::Built);
                Err(e)
            }
        });
        let outcome = match origin {
            Some(Origin::Built) => {
                self.builds.fetch_add(1, Ordering::SeqCst);
                "build"
            }
            Some(Origin::Loaded) => {
                self.loads.fetch_add(1, Ordering::SeqCst);
                "load"
            }
            None => {
                self.hits.fetch_add(1, Ordering::SeqCst);
                "hit"
            }
        };
        cgte_obs::event(
            cgte_obs::LEVEL_DETAIL,
            "scenario.cache",
            &[
                ("key", cgte_obs::Value::Str(key)),
                ("outcome", cgte_obs::Value::Str(outcome)),
            ],
        );
        resource.clone()
    }

    /// Fetches (building if necessary) the resource for a resolved spec.
    pub fn resource(&self, spec: &ResolvedGraph) -> Result<Resource, EngineError> {
        self.resource_threads(spec, 0)
    }

    /// Like [`ResourceCache::resource`], with a worker-count hint for the
    /// huge-tier parallel builders. `threads` only affects wall-clock
    /// time — the parallel generators are thread-invariant, so the cached
    /// resource is identical for every hint.
    ///
    /// When several huge builds are scheduled concurrently each gets the
    /// full hint, briefly oversubscribing the cores; the generator
    /// threads are CPU-bound and OS time-slicing keeps total throughput
    /// near the exclusive case, which beats serializing builds (the
    /// common many-small-builds plans would lose their job-level
    /// parallelism).
    ///
    /// Resolution order per key: in-memory slot → disk tier (when
    /// attached) → generator build (persisted to the disk tier on
    /// success). `file =` sources always load from their own path and are
    /// never copied into the cache directory — the source file stays
    /// authoritative, so editing it is picked up by the next run.
    pub fn resource_threads(
        &self,
        spec: &ResolvedGraph,
        threads: usize,
    ) -> Result<Resource, EngineError> {
        let key = spec.key();
        if matches!(spec, ResolvedGraph::File { .. }) {
            // The source file is authoritative: always load from it (so
            // edits are picked up) and never copy it into the cache dir.
            return self.get_counted(&key, || {
                build_resource_impl(spec, threads, self.mmap).map(|r| (r, Origin::Loaded))
            });
        }
        self.get_counted(&key, || {
            if let Some(dir) = &self.disk_dir {
                match load_resource(dir, &key, self.mmap) {
                    Ok(Some(r)) => return Ok((r, Origin::Loaded)),
                    Ok(None) => {}
                    Err(e) => eprintln!("warning: cache load failed for {key} ({e}); rebuilding"),
                }
            }
            let resource = build_resource_threads(spec, threads)?;
            if let Some(dir) = &self.disk_dir {
                if let Err(e) = save_resource(dir, &key, &resource) {
                    eprintln!("warning: cannot persist {key} to cache ({e})");
                }
            }
            Ok((resource, Origin::Built))
        })
    }
}

/// Constructs a resource from its spec with the default worker hint; see
/// [`build_resource_threads`].
pub fn build_resource(spec: &ResolvedGraph) -> Result<Resource, EngineError> {
    build_resource_threads(spec, 0)
}

/// Constructs a resource from its spec, replicating the exact RNG streams
/// of the original figure binaries (graph first, partition continuing the
/// same stream, crawls continuing after generation). Specs with
/// `scale_mul > 1` — the `scale(huge)` tier — route through the parallel
/// generators instead, whose counter-derived streams make the result
/// independent of `threads`. Infeasible parameters surface as an
/// [`EngineError`] rather than a worker panic.
pub fn build_resource_threads(
    spec: &ResolvedGraph,
    threads: usize,
) -> Result<Resource, EngineError> {
    build_resource_impl(spec, threads, false)
}

fn build_resource_impl(
    spec: &ResolvedGraph,
    threads: usize,
    mmap: bool,
) -> Result<Resource, EngineError> {
    let _ = mmap; // only `file =` sources read it; other specs generate
    match *spec {
        ResolvedGraph::Planted {
            k,
            alpha,
            scale_div,
            scale_mul,
            seed,
        } => {
            if scale_mul > 1 && scale_div > 1 {
                return Err(EngineError::msg(format!(
                    "planted: scale_div={scale_div} and scale_mul={scale_mul} are mutually exclusive"
                )));
            }
            if scale_mul > 1 {
                let cfg = PlantedConfig::scaled_up(scale_mul, k, alpha);
                let pg = par_planted_partition(&cfg, seed, threads).map_err(|e| {
                    EngineError::msg(format!(
                        "infeasible planted config (k={k}, alpha={alpha}, scale_mul={scale_mul}): {e}"
                    ))
                })?;
                return Ok(Resource::Graph(Arc::new(BuiltGraph::eager(
                    pg.graph,
                    pg.partition,
                ))));
            }
            let mut rng = StdRng::seed_from_u64(seed);
            let cfg = if scale_div == 1 {
                PlantedConfig::paper(k, alpha)
            } else {
                PlantedConfig::scaled(scale_div, k, alpha)
            };
            let pg = planted_partition(&cfg, &mut rng).map_err(|e| {
                EngineError::msg(format!(
                    "infeasible planted config (k={k}, alpha={alpha}, scale_div={scale_div}): {e}"
                ))
            })?;
            Ok(Resource::Graph(Arc::new(BuiltGraph::eager(
                pg.graph,
                pg.partition,
            ))))
        }
        ResolvedGraph::Standin {
            kind,
            scale_div,
            scale_mul,
            top_k,
            spectral,
            seed,
        } => {
            if scale_mul > 1 && scale_div > 1 {
                return Err(EngineError::msg(format!(
                    "standin: scale_div={scale_div} and scale_mul={scale_mul} are mutually exclusive"
                )));
            }
            if scale_mul > 1 {
                let graph = standin_huge(kind, scale_mul, seed, threads);
                // Huge-tier partitions draw a dedicated stream (there is
                // no sequential generator stream to continue).
                return Ok(Resource::Graph(Arc::new(BuiltGraph::lazy_partition(
                    graph,
                    move |g| {
                        let mut rng =
                            StdRng::seed_from_u64(cgte_graph::parallel::stream_seed(seed, 0x9A27));
                        standin_partition(g, top_k, spectral, &mut rng)
                    },
                ))));
            }
            let mut rng = StdRng::seed_from_u64(seed);
            let graph = standin(kind, scale_div, &mut rng);
            // Snapshot the stream so the deferred partition continues it.
            let rng_after = rng.clone();
            Ok(Resource::Graph(Arc::new(BuiltGraph::lazy_partition(
                graph,
                move |g| {
                    let mut rng = rng_after;
                    standin_partition(g, top_k, spectral, &mut rng)
                },
            ))))
        }
        ResolvedGraph::File {
            ref path,
            top_k,
            spectral,
            seed,
        } => {
            // Untrusted input: full structural validation, so a crafted
            // file cannot violate Graph invariants downstream.
            let bundle = Loader::open(path)
                .validate(Validate::Full)
                .mmap(mmap)
                .load_bundle()
                .map_err(|e| EngineError::msg(format!("cannot load {path:?}: {e}")))?;
            match bundle.partition {
                Some(p) => Ok(Resource::Graph(Arc::new(BuiltGraph::eager(
                    bundle.graph,
                    p,
                )))),
                None => Ok(Resource::Graph(Arc::new(BuiltGraph::lazy_partition(
                    bundle.graph,
                    move |g| {
                        let mut rng =
                            StdRng::seed_from_u64(cgte_graph::parallel::stream_seed(seed, 0xF11E));
                        standin_partition(g, top_k, spectral, &mut rng)
                    },
                )))),
            }
        }
        ResolvedGraph::Facebook {
            ref cfg,
            crawls,
            seed,
        } => {
            let mut rng = StdRng::seed_from_u64(seed);
            let sim = FacebookSim::generate(cfg, &mut rng);
            let (c09, c10) = match crawls {
                Some((w09, p09, w10, p10)) => (
                    sim.crawl_2009(w09, p09, &mut rng),
                    sim.crawl_2010(w10, p10, &mut rng),
                ),
                None => (Vec::new(), Vec::new()),
            };
            Ok(Resource::Facebook(Arc::new(FacebookBundle {
                sim,
                c09,
                c10,
                crawl_params: crawls,
                exact_regions: OnceLock::new(),
                exact_colleges: OnceLock::new(),
            })))
        }
    }
}

// ---------------------------------------------------------------------------
// Disk tier: Resource <-> .cgteg containers

/// The cache file of a content key: `<fnv64(key)>.cgteg`, with the full
/// key recorded inside the container (`meta.key`) as a collision guard.
fn cache_file(dir: &Path, key: &str) -> PathBuf {
    dir.join(format!(
        "{}.cgteg",
        crate::artifact::artifact_fingerprint(key)
    ))
}

fn store_err(e: impl std::fmt::Display) -> EngineError {
    EngineError::msg(e.to_string())
}

/// `FacebookSimConfig` fields in their fixed `fb.config` section order.
/// Counts are stored as exact f64s (all well under 2^53).
fn config_to_f64s(c: &FacebookSimConfig) -> Vec<f64> {
    vec![
        c.num_users as f64,
        c.num_regions as f64,
        c.num_countries as f64,
        c.region_declared_fraction,
        c.num_colleges as f64,
        c.college_fraction,
        c.mean_degree,
        c.gamma,
        c.region_homophily,
        c.college_homophily,
        c.zipf_exponent,
    ]
}

fn config_from_f64s(v: &[f64]) -> Result<FacebookSimConfig, EngineError> {
    if v.len() != 11 {
        return Err(EngineError::msg(format!(
            "fb.config has {} fields, expected 11",
            v.len()
        )));
    }
    Ok(FacebookSimConfig {
        num_users: v[0] as usize,
        num_regions: v[1] as usize,
        num_countries: v[2] as usize,
        region_declared_fraction: v[3],
        num_colleges: v[4] as usize,
        college_fraction: v[5],
        mean_degree: v[6],
        gamma: v[7],
        region_homophily: v[8],
        college_homophily: v[9],
        zipf_exponent: v[10],
    })
}

fn crawl_type_code(t: CrawlType) -> u32 {
    match t {
        CrawlType::Uis => 0,
        CrawlType::Rw => 1,
        CrawlType::Mhrw => 2,
        CrawlType::Swrw => 3,
    }
}

fn crawl_type_from_code(c: u32) -> Result<CrawlType, EngineError> {
    Ok(match c {
        0 => CrawlType::Uis,
        1 => CrawlType::Rw,
        2 => CrawlType::Mhrw,
        3 => CrawlType::Swrw,
        other => return Err(EngineError::msg(format!("unknown crawl type code {other}"))),
    })
}

fn push_crawls(c: &mut Container, prefix: &str, sets: &[CrawlDataset]) {
    for (i, ds) in sets.iter().enumerate() {
        c.push(Section::string(format!("fb.{prefix}.{i}.name"), &ds.name));
        c.push(Section::u32s(
            format!("fb.{prefix}.{i}.type"),
            vec![crawl_type_code(ds.crawl)],
        ));
        let lens: Vec<u64> = ds.walks.walks().map(|w| w.len() as u64).collect();
        let mut nodes: Vec<NodeId> = Vec::with_capacity(ds.walks.total_len());
        for w in ds.walks.walks() {
            nodes.extend_from_slice(w);
        }
        c.push(Section::u64s(format!("fb.{prefix}.{i}.lens"), lens));
        c.push(Section::u32s(format!("fb.{prefix}.{i}.nodes"), nodes));
    }
}

fn read_crawls(
    c: &Container,
    prefix: &str,
    count: usize,
    num_nodes: usize,
) -> Result<Vec<CrawlDataset>, EngineError> {
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let name = c
            .string(&format!("fb.{prefix}.{i}.name"))
            .map_err(store_err)?
            .to_string();
        let type_sec = c
            .u32s(&format!("fb.{prefix}.{i}.type"))
            .map_err(store_err)?;
        let crawl =
            crawl_type_from_code(*type_sec.first().ok_or_else(|| {
                EngineError::msg(format!("fb.{prefix}.{i}.type section is empty"))
            })?)?;
        let lens = c
            .u64s(&format!("fb.{prefix}.{i}.lens"))
            .map_err(store_err)?;
        let nodes = c
            .u32s(&format!("fb.{prefix}.{i}.nodes"))
            .map_err(store_err)?;
        let total: u64 = lens.iter().sum();
        if total != nodes.len() as u64 {
            return Err(EngineError::msg(format!(
                "crawl {prefix}.{i}: walk lengths sum to {total}, {} nodes stored",
                nodes.len()
            )));
        }
        if let Some(&bad) = nodes.iter().find(|&&v| v as usize >= num_nodes) {
            return Err(EngineError::msg(format!(
                "crawl {prefix}.{i}: node {bad} out of range ({num_nodes} nodes)"
            )));
        }
        let mut walks = Vec::with_capacity(lens.len());
        let mut cursor = 0usize;
        for &l in lens {
            let l = l as usize;
            walks.push(nodes[cursor..cursor + l].to_vec());
            cursor += l;
        }
        out.push(CrawlDataset {
            name,
            crawl,
            walks: MultiWalkSample::new(walks),
        });
    }
    Ok(out)
}

/// Encodes a resource as a `.cgteg` container. Lazily deferred pieces
/// (stand-in partitions) are forced here — their RNG streams are captured
/// at build time, so forcing is deterministic and the loaded resource is
/// identical to the built one.
fn resource_to_container(key: &str, r: &Resource) -> Container {
    let mut c = Container::new();
    c.push(Section::string("meta.key", key));
    match r {
        Resource::Graph(bg) => {
            c.push(Section::string("meta.kind", "graph"));
            for s in graph_sections(&bg.graph) {
                c.push(s);
            }
            c.push(partition_section("main", bg.partition()));
        }
        Resource::Facebook(fb) => {
            c.push(Section::string("meta.kind", "facebook"));
            for s in graph_sections(&fb.sim.graph) {
                c.push(s);
            }
            c.push(partition_section("regions", &fb.sim.regions));
            c.push(partition_section("colleges", &fb.sim.colleges));
            c.push(Section::u32s(
                "fb.region_to_country",
                fb.sim.region_to_country.clone(),
            ));
            c.push(Section::f64s("fb.config", config_to_f64s(fb.sim.config())));
            if let Some((w09, p09, w10, p10)) = fb.crawl_params {
                c.push(Section::u64s(
                    "fb.crawl_params",
                    vec![w09 as u64, p09 as u64, w10 as u64, p10 as u64],
                ));
            }
            c.push(Section::u64s(
                "fb.counts",
                vec![fb.c09.len() as u64, fb.c10.len() as u64],
            ));
            push_crawls(&mut c, "c09", &fb.c09);
            push_crawls(&mut c, "c10", &fb.c10);
        }
    }
    c
}

/// Decodes a cached resource from a [`Loader::load`] result (graph already
/// extracted, every other section in `rest`), verifying the recorded key.
fn resource_from_store(key: &str, loaded: LoadedStore) -> Result<Resource, EngineError> {
    let LoadedStore { graph, mut rest } = loaded;
    let c = &mut rest;
    let recorded = c.string("meta.key").map_err(store_err)?;
    if recorded != key {
        return Err(EngineError::msg(format!(
            "cache file holds key {recorded:?}, expected {key:?} (hash collision?)"
        )));
    }
    match c.string("meta.kind").map_err(store_err)? {
        "graph" => {
            let partition = partition_from_container(c, "main", graph.num_nodes())
                .map_err(store_err)?
                .ok_or_else(|| EngineError::msg("graph cache file has no main partition"))?;
            Ok(Resource::Graph(Arc::new(BuiltGraph::eager(
                graph, partition,
            ))))
        }
        "facebook" => {
            let n = graph.num_nodes();
            let regions = partition_from_container(c, "regions", n)
                .map_err(store_err)?
                .ok_or_else(|| EngineError::msg("facebook cache file has no regions block"))?;
            let colleges = partition_from_container(c, "colleges", n)
                .map_err(store_err)?
                .ok_or_else(|| EngineError::msg("facebook cache file has no colleges block"))?;
            let region_to_country = c.u32s("fb.region_to_country").map_err(store_err)?.to_vec();
            let config = config_from_f64s(c.f64s("fb.config").map_err(store_err)?)?;
            let crawl_params = match c.get("fb.crawl_params") {
                Some(_) => {
                    let p = c.u64s("fb.crawl_params").map_err(store_err)?;
                    if p.len() != 4 {
                        return Err(EngineError::msg("fb.crawl_params must have 4 entries"));
                    }
                    Some((p[0] as usize, p[1] as usize, p[2] as usize, p[3] as usize))
                }
                None => None,
            };
            let counts = c.u64s("fb.counts").map_err(store_err)?;
            if counts.len() != 2 {
                return Err(EngineError::msg("fb.counts must have 2 entries"));
            }
            let c09 = read_crawls(c, "c09", counts[0] as usize, n)?;
            let c10 = read_crawls(c, "c10", counts[1] as usize, n)?;
            let sim = FacebookSim::from_parts(graph, regions, colleges, region_to_country, config);
            Ok(Resource::Facebook(Arc::new(FacebookBundle {
                sim,
                c09,
                c10,
                crawl_params,
                exact_regions: OnceLock::new(),
                exact_colleges: OnceLock::new(),
            })))
        }
        other => Err(EngineError::msg(format!(
            "unknown cache resource kind {other:?}"
        ))),
    }
}

/// One `.cgteg` entry found in a disk-tier directory — the listing the
/// `cgte-serve` graph registry is built on. The cache directory is shared
/// infrastructure: scenario runs write it, the estimation service reads
/// it, and both name entries by file stem.
#[derive(Debug, Clone)]
pub struct DiskEntry {
    /// Path of the `.cgteg` file.
    pub path: PathBuf,
    /// The file stem (the name a server exposes).
    pub name: String,
    /// The lightweight table-of-contents scan (node/edge counts, kind,
    /// recorded content key, partition names) — no CSR payloads loaded.
    pub summary: cgte_graph::store::StoreSummary,
}

/// Scans a disk-tier directory (`--cache-dir`) for `.cgteg` entries,
/// without loading any graph payloads (`O(metadata)` per file). Unreadable
/// or non-`.cgteg` files are skipped — the listing is advisory; full
/// validation happens when an entry is actually loaded. Entries are sorted
/// by name.
pub fn disk_entries(dir: &Path) -> Vec<DiskEntry> {
    let mut out = Vec::new();
    let Ok(rd) = std::fs::read_dir(dir) else {
        return out;
    };
    for e in rd.flatten() {
        let path = e.path();
        if path.extension().and_then(|x| x.to_str()) != Some("cgteg") {
            continue;
        }
        let Some(name) = path.file_stem().and_then(|s| s.to_str()) else {
            continue;
        };
        let Ok(file) = File::open(&path) else {
            continue;
        };
        match cgte_graph::store::scan_summary(BufReader::new(file)) {
            Ok(summary) => out.push(DiskEntry {
                name: name.to_string(),
                path,
                summary,
            }),
            Err(_) => continue,
        }
    }
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

/// Persists a resource to the disk tier (atomic: tmp file + rename).
fn save_resource(dir: &Path, key: &str, r: &Resource) -> Result<(), EngineError> {
    std::fs::create_dir_all(dir)
        .map_err(|e| EngineError::msg(format!("cannot create cache dir {dir:?}: {e}")))?;
    let container = resource_to_container(key, r);
    let path = cache_file(dir, key);
    // Per-process tmp name: the cache directory is shared across
    // processes, and two cold runs building the same key concurrently
    // must not interleave writes into one tmp inode before the rename.
    let tmp = path.with_extension(format!("cgteg.tmp.{}", std::process::id()));
    let mut w = BufWriter::new(
        File::create(&tmp).map_err(|e| EngineError::msg(format!("cannot create {tmp:?}: {e}")))?,
    );
    container
        .write_to(&mut w)
        .and_then(|()| w.flush())
        .map_err(|e| EngineError::msg(format!("cannot write {tmp:?}: {e}")))?;
    drop(w);
    std::fs::rename(&tmp, &path)
        .map_err(|e| EngineError::msg(format!("cannot move cache file into place: {e}")))?;
    Ok(())
}

/// Loads a resource from the disk tier. `Ok(None)` means "not cached";
/// corrupted files surface as `Err` (the caller rebuilds). The CSR goes
/// through [`Validate::Trusted`] — the per-section checksums already rule
/// out bit rot for files this cache wrote itself.
fn load_resource(dir: &Path, key: &str, mmap: bool) -> Result<Option<Resource>, EngineError> {
    let path = cache_file(dir, key);
    if !path.exists() {
        return Ok(None);
    }
    let loaded = Loader::open(&path)
        .validate(Validate::Trusted)
        .mmap(mmap)
        .load()
        .map_err(store_err)?;
    resource_from_store(key, loaded).map(Some)
}
