//! The content-keyed build cache shared by every job in a run.
//!
//! Keys are the canonical spec strings of [`crate::plan::ResolvedGraph`];
//! values are `Arc`-shared built resources. The first requester builds
//! (under a per-key `OnceLock`, so concurrent requesters block instead of
//! duplicating work); every later requester gets the shared `Arc` and is
//! counted as a cache **hit** — the statistic the engine's sweep tests
//! assert on ("a graph reused by ≥ 4 jobs is built exactly once").

use crate::plan::ResolvedGraph;
use crate::EngineError;
use cgte_datasets::{standin, standin_huge, standin_partition, CrawlDataset, FacebookSim};
use cgte_graph::generators::{par_planted_partition, planted_partition, PlantedConfig};
use cgte_graph::{CategoryGraph, Graph, Partition};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Deferred partition constructor (captures the post-graph RNG state).
type PartitionInit = Box<dyn FnOnce(&Graph) -> Partition + Send>;

/// A built graph + partition, with the exact category graph computed
/// lazily (shared by every job that needs it for target resolution).
pub struct BuiltGraph {
    /// The graph.
    pub graph: Graph,
    partition: OnceLock<Partition>,
    // Deferred partition construction for stand-ins: the builder captures
    // the RNG state right after graph generation, so the partition stream
    // is identical whether it is forced eagerly or lazily (jobs that only
    // need the graph — e.g. `graph-stats` — never pay for it).
    partition_init: Mutex<Option<PartitionInit>>,
    exact: OnceLock<CategoryGraph>,
}

impl BuiltGraph {
    /// A graph whose partition is already materialized.
    pub fn eager(graph: Graph, partition: Partition) -> Self {
        let cell = OnceLock::new();
        cell.set(partition).ok();
        BuiltGraph {
            graph,
            partition: cell,
            partition_init: Mutex::new(None),
            exact: OnceLock::new(),
        }
    }

    /// A graph whose partition is built on first use.
    pub fn lazy_partition(
        graph: Graph,
        init: impl FnOnce(&Graph) -> Partition + Send + 'static,
    ) -> Self {
        BuiltGraph {
            graph,
            partition: OnceLock::new(),
            partition_init: Mutex::new(Some(Box::new(init))),
            exact: OnceLock::new(),
        }
    }

    /// The node partition, constructing it on first use.
    pub fn partition(&self) -> &Partition {
        self.partition.get_or_init(|| {
            let init = self
                .partition_init
                .lock()
                .expect("partition init poisoned")
                .take()
                .expect("lazy partition initializer present");
            init(&self.graph)
        })
    }

    /// The exact category graph, computed once and shared.
    pub fn exact(&self) -> &CategoryGraph {
        self.exact
            .get_or_init(|| CategoryGraph::exact(&self.graph, self.partition()))
    }
}

/// A built Facebook-like population, optionally with the paper's two crawl
/// campaigns (generated from one continuous RNG stream, exactly like the
/// original figure binaries).
pub struct FacebookBundle {
    /// The simulated population.
    pub sim: FacebookSim,
    /// 2009-style crawls (MHRW/RW/UIS over regions); empty without crawls.
    pub c09: Vec<CrawlDataset>,
    /// 2010-style crawls (RW/S-WRW over colleges); empty without crawls.
    pub c10: Vec<CrawlDataset>,
    /// The crawl parameters `(walks09, per_walk09, walks10, per_walk10)`
    /// the datasets were drawn with, if any.
    pub crawl_params: Option<(usize, usize, usize, usize)>,
    exact_regions: OnceLock<CategoryGraph>,
    exact_colleges: OnceLock<CategoryGraph>,
}

impl FacebookBundle {
    /// Exact category graph over the region partition, computed once.
    pub fn exact_regions(&self) -> &CategoryGraph {
        self.exact_regions
            .get_or_init(|| CategoryGraph::exact(&self.sim.graph, &self.sim.regions))
    }

    /// Exact category graph over the college partition, computed once.
    pub fn exact_colleges(&self) -> &CategoryGraph {
        self.exact_colleges
            .get_or_init(|| CategoryGraph::exact(&self.sim.graph, &self.sim.colleges))
    }
}

/// A cached resource.
#[derive(Clone)]
pub enum Resource {
    /// A graph + partition.
    Graph(Arc<BuiltGraph>),
    /// A Facebook-like simulation (+ crawls).
    Facebook(Arc<FacebookBundle>),
}

impl Resource {
    /// The graph resource, or an error if the key holds a simulation.
    pub fn as_graph(&self) -> Result<&Arc<BuiltGraph>, crate::EngineError> {
        match self {
            Resource::Graph(g) => Ok(g),
            Resource::Facebook(_) => Err(crate::EngineError::msg(
                "expected a graph resource, found a facebook simulation",
            )),
        }
    }

    /// The simulation resource, or an error if the key holds a graph.
    pub fn as_facebook(&self) -> Result<&Arc<FacebookBundle>, crate::EngineError> {
        match self {
            Resource::Facebook(f) => Ok(f),
            Resource::Graph(_) => Err(crate::EngineError::msg(
                "expected a facebook simulation, found a graph resource",
            )),
        }
    }
}

/// Cache counters: `builds` actual constructions, `hits` shared reuses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Number of resources actually constructed.
    pub builds: usize,
    /// Number of requests served from the cache.
    pub hits: usize,
}

/// One lazily-initialized cache slot; a failed build is cached too.
type Slot = Arc<OnceLock<Result<Resource, EngineError>>>;

/// The content-keyed resource cache shared across a run's jobs.
#[derive(Default)]
pub struct ResourceCache {
    slots: Mutex<HashMap<String, Slot>>,
    builds: AtomicUsize,
    hits: AtomicUsize,
}

impl ResourceCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            builds: self.builds.load(Ordering::SeqCst),
            hits: self.hits.load(Ordering::SeqCst),
        }
    }

    /// Fetches the resource for `key`, building it with `build` on first
    /// request. Concurrent requesters for the same key block until the
    /// first finishes; exactly one construction attempt happens per key
    /// (a failed build is cached too, so every sharer sees the same
    /// error instead of retrying).
    pub fn get_or_build(
        &self,
        key: &str,
        build: impl FnOnce() -> Result<Resource, EngineError>,
    ) -> Result<Resource, EngineError> {
        let slot = {
            let mut slots = self.slots.lock().expect("cache lock poisoned");
            Arc::clone(slots.entry(key.to_string()).or_default())
        };
        let mut built = false;
        let resource = slot.get_or_init(|| {
            built = true;
            build()
        });
        if built {
            self.builds.fetch_add(1, Ordering::SeqCst);
        } else {
            self.hits.fetch_add(1, Ordering::SeqCst);
        }
        resource.clone()
    }

    /// Fetches (building if necessary) the resource for a resolved spec.
    pub fn resource(&self, spec: &ResolvedGraph) -> Result<Resource, EngineError> {
        self.resource_threads(spec, 0)
    }

    /// Like [`ResourceCache::resource`], with a worker-count hint for the
    /// huge-tier parallel builders. `threads` only affects wall-clock
    /// time — the parallel generators are thread-invariant, so the cached
    /// resource is identical for every hint.
    ///
    /// When several huge builds are scheduled concurrently each gets the
    /// full hint, briefly oversubscribing the cores; the generator
    /// threads are CPU-bound and OS time-slicing keeps total throughput
    /// near the exclusive case, which beats serializing builds (the
    /// common many-small-builds plans would lose their job-level
    /// parallelism).
    pub fn resource_threads(
        &self,
        spec: &ResolvedGraph,
        threads: usize,
    ) -> Result<Resource, EngineError> {
        self.get_or_build(&spec.key(), || build_resource_threads(spec, threads))
    }
}

/// Constructs a resource from its spec with the default worker hint; see
/// [`build_resource_threads`].
pub fn build_resource(spec: &ResolvedGraph) -> Result<Resource, EngineError> {
    build_resource_threads(spec, 0)
}

/// Constructs a resource from its spec, replicating the exact RNG streams
/// of the original figure binaries (graph first, partition continuing the
/// same stream, crawls continuing after generation). Specs with
/// `scale_mul > 1` — the `scale(huge)` tier — route through the parallel
/// generators instead, whose counter-derived streams make the result
/// independent of `threads`. Infeasible parameters surface as an
/// [`EngineError`] rather than a worker panic.
pub fn build_resource_threads(
    spec: &ResolvedGraph,
    threads: usize,
) -> Result<Resource, EngineError> {
    match *spec {
        ResolvedGraph::Planted {
            k,
            alpha,
            scale_div,
            scale_mul,
            seed,
        } => {
            if scale_mul > 1 && scale_div > 1 {
                return Err(EngineError::msg(format!(
                    "planted: scale_div={scale_div} and scale_mul={scale_mul} are mutually exclusive"
                )));
            }
            if scale_mul > 1 {
                let cfg = PlantedConfig::scaled_up(scale_mul, k, alpha);
                let pg = par_planted_partition(&cfg, seed, threads).map_err(|e| {
                    EngineError::msg(format!(
                        "infeasible planted config (k={k}, alpha={alpha}, scale_mul={scale_mul}): {e}"
                    ))
                })?;
                return Ok(Resource::Graph(Arc::new(BuiltGraph::eager(
                    pg.graph,
                    pg.partition,
                ))));
            }
            let mut rng = StdRng::seed_from_u64(seed);
            let cfg = if scale_div == 1 {
                PlantedConfig::paper(k, alpha)
            } else {
                PlantedConfig::scaled(scale_div, k, alpha)
            };
            let pg = planted_partition(&cfg, &mut rng).map_err(|e| {
                EngineError::msg(format!(
                    "infeasible planted config (k={k}, alpha={alpha}, scale_div={scale_div}): {e}"
                ))
            })?;
            Ok(Resource::Graph(Arc::new(BuiltGraph::eager(
                pg.graph,
                pg.partition,
            ))))
        }
        ResolvedGraph::Standin {
            kind,
            scale_div,
            scale_mul,
            top_k,
            spectral,
            seed,
        } => {
            if scale_mul > 1 && scale_div > 1 {
                return Err(EngineError::msg(format!(
                    "standin: scale_div={scale_div} and scale_mul={scale_mul} are mutually exclusive"
                )));
            }
            if scale_mul > 1 {
                let graph = standin_huge(kind, scale_mul, seed, threads);
                // Huge-tier partitions draw a dedicated stream (there is
                // no sequential generator stream to continue).
                return Ok(Resource::Graph(Arc::new(BuiltGraph::lazy_partition(
                    graph,
                    move |g| {
                        let mut rng =
                            StdRng::seed_from_u64(cgte_graph::parallel::stream_seed(seed, 0x9A27));
                        standin_partition(g, top_k, spectral, &mut rng)
                    },
                ))));
            }
            let mut rng = StdRng::seed_from_u64(seed);
            let graph = standin(kind, scale_div, &mut rng);
            // Snapshot the stream so the deferred partition continues it.
            let rng_after = rng.clone();
            Ok(Resource::Graph(Arc::new(BuiltGraph::lazy_partition(
                graph,
                move |g| {
                    let mut rng = rng_after;
                    standin_partition(g, top_k, spectral, &mut rng)
                },
            ))))
        }
        ResolvedGraph::Facebook {
            ref cfg,
            crawls,
            seed,
        } => {
            let mut rng = StdRng::seed_from_u64(seed);
            let sim = FacebookSim::generate(cfg, &mut rng);
            let (c09, c10) = match crawls {
                Some((w09, p09, w10, p10)) => (
                    sim.crawl_2009(w09, p09, &mut rng),
                    sim.crawl_2010(w10, p10, &mut rng),
                ),
                None => (Vec::new(), Vec::new()),
            };
            Ok(Resource::Facebook(Arc::new(FacebookBundle {
                sim,
                c09,
                c10,
                crawl_params: crawls,
                exact_regions: OnceLock::new(),
                exact_colleges: OnceLock::new(),
            })))
        }
    }
}
