//! Reporters for the three ablations.

use crate::report::{fmt_nrmse, log_sizes, RunContext};
use crate::value::Value;
use crate::{EngineError, Scale};
use cgte_eval::{EstimatorKind, Table, Target};

pub(super) fn model_based_report(ctx: &RunContext<'_>) -> Result<(), EngineError> {
    for id in ["a1[uis]", "a1[rw]"] {
        for s in ctx.sections(id)? {
            ctx.emitter.section(s);
        }
    }
    println!("\nExpected: the model-based column dominates at small |S| and concedes");
    println!("to the plug-in at large |S| (precision-vs-accuracy, footnote 4).");
    Ok(())
}

pub(super) fn swrw_report(ctx: &RunContext<'_>) -> Result<(), EngineError> {
    let scn = &ctx.plan.scenario;
    let betas: Vec<Value> = scn
        .custom("sweep")
        .and_then(|p| p.get("beta"))
        .map(|(v, _)| match v {
            Value::List(items) => items.clone(),
            other => vec![other.clone()],
        })
        .ok_or_else(|| EngineError::msg("ablation_swrw scenario has no beta sweep"))?;
    let sample_sizes = match ctx.scale {
        Scale::Quick => log_sizes(300, 1500, 2),
        _ => log_sizes(1000, 20_000, 3),
    };

    let mut headers = vec!["|S|".to_string()];
    let mut cols: Vec<Vec<f64>> = Vec::new();
    let mut n_colleges = 0usize;
    for b in &betas {
        let id = format!("sweep[{b}]");
        let job_cols = ctx.columns(&id)?;
        for c in job_cols {
            if c.label == "ncolleges" {
                n_colleges = c.values.first().copied().unwrap_or(0.0) as usize;
            } else {
                headers.push(c.label.clone());
                cols.push(c.values.clone());
            }
        }
    }
    let mut t = Table::new(headers);
    for (i, &s) in sample_sizes.iter().enumerate() {
        let mut row = vec![s.to_string()];
        for c in &cols {
            row.push(fmt_nrmse(c[i]));
        }
        t.row(row);
    }
    ctx.emitter.emit(
        "ablation_swrw",
        &format!(
            "A3: S-WRW stratification sweep — median NRMSE(|Â|) over {n_colleges} colleges, star sizes"
        ),
        &t,
    );
    println!("\nExpected: college-size NRMSE falls monotonically with β (β=0 is plain RW,");
    println!("which leaves most colleges unsampled); the paper's configuration is β=1.");
    Ok(())
}

pub(super) fn thinning_report(ctx: &RunContext<'_>) -> Result<(), EngineError> {
    let scn = &ctx.plan.scenario;
    let thinnings: Vec<Value> = scn
        .sampler("rw")
        .and_then(|p| p.get("thinning"))
        .map(|(v, _)| match v {
            Value::List(items) => items.clone(),
            other => vec![other.clone()],
        })
        .ok_or_else(|| EngineError::msg("ablation_thinning scenario has no thinning sweep"))?;

    let mut headers = vec!["|S| retained".to_string()];
    for t in &thinnings {
        headers.push(format!("T={t} size/star"));
        headers.push(format!("T={t} weight/star"));
    }
    let mut table = Table::new(headers);
    let mut cols: Vec<Vec<f64>> = Vec::new();
    let mut sizes: Vec<usize> = Vec::new();
    for t in &thinnings {
        let id = format!("run/g/rw[{t}]");
        let res = ctx.experiment(&id)?;
        let raw = ctx.experiment_raw(&id)?;
        sizes = raw.sizes.clone();
        let size_target = res
            .targets()
            .into_iter()
            .find(|t| matches!(t, Target::Size(_)))
            .ok_or_else(|| EngineError::msg("no size target tracked"))?;
        let weight_target = res
            .targets()
            .into_iter()
            .find(|t| matches!(t, Target::Weight(..)))
            .ok_or_else(|| EngineError::msg("no weight target tracked"))?;
        cols.push(
            res.nrmse(EstimatorKind::StarSize, size_target)
                .expect("tracked")
                .to_vec(),
        );
        cols.push(
            res.nrmse(EstimatorKind::StarWeight, weight_target)
                .expect("tracked")
                .to_vec(),
        );
    }
    for (i, &s) in sizes.iter().enumerate() {
        let mut row = vec![s.to_string()];
        for c in &cols {
            row.push(fmt_nrmse(c[i]));
        }
        table.row(row);
    }
    ctx.emitter.emit(
        "ablation_thinning",
        "A2: RW thinning sweep — star estimators, fixed retained |S|",
        &table,
    );
    println!("\nExpected: NRMSE improves (or saturates) as T grows at fixed retained |S| —");
    println!("the gain is what the discarded (T−1)/T of the crawl bought.");
    Ok(())
}
