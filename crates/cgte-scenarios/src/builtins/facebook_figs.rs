//! Reporters for the Facebook-crawl figures (fig5, fig6, fig7).

use crate::report::{fmt_nrmse, RunContext};
use crate::runner::NamedSeries;
use crate::EngineError;
use cgte_eval::Table;

pub(super) fn fig5_report(ctx: &RunContext<'_>) -> Result<(), EngineError> {
    for id in ["c2009", "c2010"] {
        for s in ctx.sections(id)? {
            ctx.emitter.section(s);
        }
    }
    println!("\nExpected: S-WRW10 exceeds RW10 by ≥ an order of magnitude at every rank");
    println!("(the paper reports \"at least one order of magnitude\" improvement).");
    Ok(())
}

fn col<'a>(cols: &'a [NamedSeries], label: &str) -> Result<&'a [f64], EngineError> {
    cols.iter()
        .find(|c| c.label == label)
        .map(|c| c.values.as_slice())
        .ok_or_else(|| EngineError::msg(format!("missing column {label:?}")))
}

/// Emits one fig6 panel (both truth styles) from the per-crawl columns.
fn emit_panel(
    ctx: &RunContext<'_>,
    name: &str,
    heading: &str,
    crawls: &[(&str, &[NamedSeries])],
    sizes: &[f64],
    panel: &str,
) -> Result<(), EngineError> {
    for (suffix, style) in [("true", "true"), ("paper", "paper")] {
        let mut headers = vec!["|S|".to_string()];
        for (n, _) in crawls {
            headers.push(format!("{n}/induced"));
            headers.push(format!("{n}/star"));
        }
        let mut t = Table::new(headers);
        for (si, &s) in sizes.iter().enumerate() {
            let mut row = vec![(s as usize).to_string()];
            for (_, cols) in crawls {
                row.push(fmt_nrmse(
                    col(cols, &format!("{panel}/{style}/induced"))?[si],
                ));
                row.push(fmt_nrmse(col(cols, &format!("{panel}/{style}/star"))?[si]));
            }
            t.row(row);
        }
        let truth_label = if style == "paper" {
            "vs all-walk mean (paper protocol)"
        } else {
            "vs simulator ground truth"
        };
        ctx.emitter.emit(
            &format!("{name}_{suffix}"),
            &format!("{heading} — {truth_label}"),
            &t,
        );
    }
    Ok(())
}

pub(super) fn fig6_report(ctx: &RunContext<'_>) -> Result<(), EngineError> {
    let scn = &ctx.plan.scenario;
    let top = scn
        .custom("eval09")
        .and_then(|p| p.get("top"))
        .and_then(|(v, l)| v.as_usize(l, "top").ok())
        .unwrap_or(100);

    let crawls09 = ["MHRW09", "RW09", "UIS09"];
    let crawls10 = ["RW10", "S-WRW10"];
    let cols09: Vec<(&str, &[NamedSeries])> = crawls09
        .iter()
        .map(|c| Ok((*c, ctx.columns(&format!("eval09[{c}]"))?)))
        .collect::<Result<_, EngineError>>()?;
    let cols10: Vec<(&str, &[NamedSeries])> = crawls10
        .iter()
        .map(|c| Ok((*c, ctx.columns(&format!("eval10[{c}]"))?)))
        .collect::<Result<_, EngineError>>()?;

    let sizes09 = col(cols09[0].1, "sizes")?.to_vec();
    let sizes10 = col(cols10[0].1, "sizes")?.to_vec();
    let npairs09 = col(cols09[0].1, "npairs")?[0] as usize;
    let npairs10 = col(cols10[0].1, "npairs")?[0] as usize;

    emit_panel(
        ctx,
        "fig6a",
        &format!("Fig. 6(a): 2009 — median NRMSE(|Â|) over top {top} regions"),
        &cols09,
        &sizes09,
        "size",
    )?;
    emit_panel(
        ctx,
        "fig6c",
        &format!("Fig. 6(c): 2009 — median NRMSE(ŵ) over {npairs09} region pairs"),
        &cols09,
        &sizes09,
        "weight",
    )?;
    emit_panel(
        ctx,
        "fig6b",
        &format!("Fig. 6(b): 2010 — median NRMSE(|Â|) over top {top} colleges"),
        &cols10,
        &sizes10,
        "size",
    )?;
    emit_panel(
        ctx,
        "fig6d",
        &format!("Fig. 6(d): 2010 — median NRMSE(ŵ) over {npairs10} college pairs"),
        &cols10,
        &sizes10,
        "weight",
    )?;

    println!("\nExpected ordering (paper §7.2): UIS < S-WRW < RW < MHRW; star ≪ induced");
    println!("for edge weights; star sizes win under RW/S-WRW, induced can win under UIS.");
    Ok(())
}

pub(super) fn fig7_report(ctx: &RunContext<'_>) -> Result<(), EngineError> {
    for id in ["countries", "regions", "colleges"] {
        for s in ctx.sections(id)? {
            ctx.emitter.section(s);
        }
    }
    println!("\nfig7 done. The exported graphs are the §7.3 deliverables; the paper's");
    println!("visual claims (distance effects) live in the edge-weight orderings above.");
    Ok(())
}
