//! The fig4 reporter: per-dataset median-NRMSE tables over the sampler
//! grid, byte-identical to the legacy binary.

use crate::report::{fmt_nrmse, RunContext};
use crate::EngineError;
use cgte_eval::{median, EstimatorKind, ExperimentResult, Table, Target};

fn median_series(res: &ExperimentResult, kind: EstimatorKind, n_sizes: usize) -> Vec<f64> {
    (0..n_sizes)
        .map(|i| median(&res.nrmse_across_targets(kind, i)).unwrap_or(f64::NAN))
        .collect()
}

/// `(graph section, display name, artifact tag)` in Table-1 order.
const DATASETS: &[(&str, &str, &str)] = &[
    ("texas", "Facebook: Texas", "texas"),
    ("neworleans", "Facebook: New Orleans", "neworleans"),
    ("p2p", "P2P", "p2p"),
    ("epinions", "Epinions", "epinions"),
];

/// `(sampler variant id, display name)` in run order.
const SAMPLERS: &[(&str, &str)] = &[("s[uis]", "UIS"), ("s[rw]", "RW"), ("s[swrw]", "S-WRW")];

pub(super) fn report(ctx: &RunContext<'_>) -> Result<(), EngineError> {
    for (gname, display, tag) in DATASETS {
        let mut size_cols: Vec<Vec<f64>> = Vec::new();
        let mut weight_cols: Vec<Vec<f64>> = Vec::new();
        let mut headers = vec!["|S|".to_string()];
        for (_, sname) in SAMPLERS {
            headers.push(format!("{sname}/induced"));
            headers.push(format!("{sname}/star"));
        }
        let mut size_table = Table::new(headers.clone());
        let mut weight_table = Table::new(headers);

        let first = ctx.experiment_raw(&format!("run/{gname}/{}", SAMPLERS[0].0))?;
        let sizes = first.sizes.clone();
        let info = first.graph.clone();
        let mut num_weight_targets = 0usize;
        for (svariant, _) in SAMPLERS {
            let res = ctx.experiment(&format!("run/{gname}/{svariant}"))?;
            num_weight_targets = res
                .targets()
                .iter()
                .filter(|t| matches!(t, Target::Weight(..)))
                .count();
            size_cols.push(median_series(&res, EstimatorKind::InducedSize, sizes.len()));
            size_cols.push(median_series(&res, EstimatorKind::StarSize, sizes.len()));
            weight_cols.push(median_series(
                &res,
                EstimatorKind::InducedWeight,
                sizes.len(),
            ));
            weight_cols.push(median_series(&res, EstimatorKind::StarWeight, sizes.len()));
        }
        for (i, &s) in sizes.iter().enumerate() {
            let mut row = vec![s.to_string()];
            row.extend(size_cols.iter().map(|c| fmt_nrmse(c[i])));
            size_table.row(row);
            let mut row = vec![s.to_string()];
            row.extend(weight_cols.iter().map(|c| fmt_nrmse(c[i])));
            weight_table.row(row);
        }

        ctx.emitter.emit(
            &format!("fig4_size_{tag}"),
            &format!(
                "Fig. 4 (top) {display}: median NRMSE(|Â|) across {} categories ({} nodes, kV={:.1})",
                info.num_categories, info.nodes, info.mean_degree
            ),
            &size_table,
        );
        ctx.emitter.emit(
            &format!("fig4_weight_{tag}"),
            &format!(
                "Fig. 4 (bottom) {display}: median NRMSE(ŵ) across {num_weight_targets} edges"
            ),
            &weight_table,
        );
    }
    println!("\nfig4 done. Expected: weight/star ≪ weight/induced for every sampler;");
    println!("UIS best overall; S-WRW ≥ RW; star sizes win under RW/S-WRW but can lose under UIS.");
    Ok(())
}
