//! Reporters for Table 1 and Table 2.

use crate::report::RunContext;
use crate::EngineError;
use cgte_datasets::StandinKind;
use cgte_eval::Table;

/// `(custom job id, stand-in)` in Table-1 order.
const STATS_JOBS: &[(&str, StandinKind)] = &[
    ("stats_texas", StandinKind::FacebookTexas),
    ("stats_neworleans", StandinKind::FacebookNewOrleans),
    ("stats_p2p", StandinKind::P2p),
    ("stats_epinions", StandinKind::Epinions),
];

pub(super) fn table1_report(ctx: &RunContext<'_>) -> Result<(), EngineError> {
    let scale_div = ctx
        .plan
        .scenario
        .graph_usize("texas", "scale_div")
        .unwrap_or(1);
    let mut t = Table::new(
        [
            "Dataset",
            "|V| paper",
            "|V| ours",
            "|E| ours",
            "kV paper",
            "kV ours",
            "max deg",
            "deg CV",
        ]
        .map(String::from)
        .to_vec(),
    );
    for (id, kind) in STATS_JOBS {
        let vals = ctx.values(id)?;
        let get = |key: &str| -> Result<String, EngineError> {
            vals.iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
                .ok_or_else(|| EngineError::msg(format!("job {id} has no value {key:?}")))
        };
        let (v_pub, kv_pub) = kind.published();
        t.row(vec![
            kind.name().into(),
            v_pub.to_string(),
            get("nodes")?,
            get("edges")?,
            format!("{kv_pub:.1}"),
            get("mean_degree")?,
            get("max_degree")?,
            get("degree_cv")?,
        ]);
    }
    ctx.emitter.emit(
        "table1",
        &format!("Table 1: empirical topologies (stand-ins, scale 1/{scale_div})"),
        &t,
    );
    println!("\nNote: |V|, kV are matched to the paper; |E| follows from them.");
    println!("The high degree CV column documents the skew §6.3.2 attributes the");
    println!("star size estimator's difficulties to.");
    Ok(())
}

pub(super) fn table2_report(ctx: &RunContext<'_>) -> Result<(), EngineError> {
    for s in ctx.sections("report")? {
        ctx.emitter.section(s);
    }
    println!("\nPaper reference values: MHRW09 34%, RW09 41%, UIS09 34% (28 walks);");
    println!("RW10 9%, S-WRW10 86% (25 walks). Shape check: RW09 ≥ UIS09 (homophily");
    println!("draws walks into large declared regions) and S-WRW10 ≫ RW10.");
    Ok(())
}
