//! The fig3 reporter: reassembles the eight panels of Fig. 3 from the
//! scenario's six experiment jobs, printing exactly what the legacy
//! binary printed.

use crate::report::{fmt_nrmse, RunContext};
use crate::EngineError;
use cgte_eval::{empirical_cdf, EstimatorKind, ExperimentResult, Table, Target};

struct Panel {
    /// (curve label, experiment result) tuples sharing an x-axis.
    curves: Vec<(
        String,
        ExperimentResult,
        Target,
        EstimatorKind,
        EstimatorKind,
    )>,
    sizes: Vec<usize>,
}

impl Panel {
    fn plot_series(&self) -> Vec<cgte_viz::PlotSeries> {
        let xs: Vec<f64> = self.sizes.iter().map(|&s| s as f64).collect();
        let mut out = Vec::new();
        for (label, res, target, ind, star) in &self.curves {
            for (kind, suffix) in [(ind, "induced"), (star, "star")] {
                let ys = res.nrmse(*kind, *target).expect("tracked");
                out.push(cgte_viz::PlotSeries {
                    label: format!("{label}/{suffix}"),
                    points: xs.iter().copied().zip(ys.iter().copied()).collect(),
                });
            }
        }
        out
    }

    fn table(&self) -> Table {
        let mut headers = vec!["|S|".to_string()];
        for (label, ..) in &self.curves {
            headers.push(format!("{label}/induced"));
            headers.push(format!("{label}/star"));
        }
        let mut t = Table::new(headers);
        for (i, &s) in self.sizes.iter().enumerate() {
            let mut row = vec![s.to_string()];
            for (_, res, target, ind, star) in &self.curves {
                row.push(fmt_nrmse(res.nrmse(*ind, *target).unwrap()[i]));
                row.push(fmt_nrmse(res.nrmse(*star, *target).unwrap()[i]));
            }
            t.row(row);
        }
        t
    }
}

/// The single tracked weight target of a sweep job.
fn weight_target(res: &ExperimentResult) -> Result<Target, EngineError> {
    res.targets()
        .into_iter()
        .find(|t| matches!(t, Target::Weight(..)))
        .ok_or_else(|| EngineError::msg("job tracked no weight target"))
}

/// The edge at weight-quantile `q` among the tracked weight targets,
/// replicating `CategoryGraph::weight_quantile_edge` (sort descending by
/// weight with `(a, b)` tie-breaks, reverse, round((n-1)·q)).
fn quantile_target(weights: &[(Target, f64)], q: f64) -> Result<Target, EngineError> {
    if weights.is_empty() {
        return Err(EngineError::msg("no weight targets tracked"));
    }
    let mut v = weights.to_vec();
    v.sort_by(|(tx, x), (ty, y)| {
        let (Target::Weight(xa, xb), Target::Weight(ya, yb)) = (tx, ty) else {
            return std::cmp::Ordering::Equal;
        };
        y.partial_cmp(x)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(xa.cmp(ya))
            .then(xb.cmp(yb))
    });
    v.reverse(); // ascending weight
    let idx = ((v.len() - 1) as f64 * q).round() as usize;
    Ok(v[idx].0)
}

pub(super) fn report(ctx: &RunContext<'_>) -> Result<(), EngineError> {
    let scn = &ctx.plan.scenario;
    let k_lo = scn.graph_usize("klo", "k").unwrap_or(0);
    let k_hi = scn.graph_usize("khi", "k").unwrap_or(0);
    let k_mid = scn.graph_usize("mid", "k").unwrap_or(0);

    let res_klo = ctx.experiment("sweep/klo/uis")?;
    let res_khi = ctx.experiment("sweep/khi/uis")?;
    let res_a0 = ctx.experiment("sweep/a0/uis")?;
    let res_a1 = ctx.experiment("sweep/a1/uis")?;
    let res_mid = ctx.experiment("mid/mid/uis")?;
    let raw_mid = ctx.experiment_raw("mid/mid/uis")?;

    let sizes = raw_mid.sizes.clone();
    let cdf_size_idx = sizes.len() / 2; // the paper's fixed |S| = 2000 point
    let ncat = raw_mid.graph.num_categories as u32;
    let biggest = Target::Size(ncat - 1);

    let t_klo = weight_target(&res_klo)?;
    let t_khi = weight_target(&res_khi)?;
    let t_a0 = weight_target(&res_a0)?;
    let t_a1 = weight_target(&res_a1)?;

    let mid_weights: Vec<(Target, f64)> = res_mid
        .targets()
        .into_iter()
        .filter(|t| matches!(t, Target::Weight(..)))
        .map(|t| (t, res_mid.truth(t).expect("tracked")))
        .collect();
    let t_low = quantile_target(&mid_weights, 0.25)?;
    let t_high = quantile_target(&mid_weights, 0.75)?;

    let size_kinds = (EstimatorKind::InducedSize, EstimatorKind::StarSize);
    let weight_kinds = (EstimatorKind::InducedWeight, EstimatorKind::StarWeight);

    let panel = |curves: Vec<(
        String,
        &ExperimentResult,
        Target,
        (EstimatorKind, EstimatorKind),
    )>| {
        Panel {
            curves: curves
                .into_iter()
                .map(|(l, r, t, (i, s))| (l, r.clone(), t, i, s))
                .collect(),
            sizes: sizes.clone(),
        }
    };
    let emitter = &ctx.emitter;

    let a = panel(vec![
        (format!("k={k_lo}"), &res_klo, biggest, size_kinds),
        (format!("k={k_hi}"), &res_khi, biggest, size_kinds),
    ]);
    emitter.emit(
        "fig3a",
        "Fig. 3(a): NRMSE(|Â|), α=0.5, largest category, k sweep",
        &a.table(),
    );
    emitter.emit_plot("fig3a", "fig3a", a.plot_series());

    let b = panel(vec![
        ("α=0.0".into(), &res_a0, biggest, size_kinds),
        ("α=1.0".into(), &res_a1, biggest, size_kinds),
    ]);
    emitter.emit(
        "fig3b",
        &format!("Fig. 3(b): NRMSE(|Â|), k={k_mid}, largest category, α sweep"),
        &b.table(),
    );
    emitter.emit_plot("fig3b", "fig3b", b.plot_series());

    let small_cat = Target::Size(ncat.saturating_sub(7)); // |C| = 500 at paper scale
    let c = panel(vec![
        ("small |C|".into(), &res_mid, small_cat, size_kinds),
        ("large |C|".into(), &res_mid, biggest, size_kinds),
    ]);
    emitter.emit(
        "fig3c",
        &format!("Fig. 3(c): NRMSE(|Â|), k={k_mid}, α=0.5, category size effect"),
        &c.table(),
    );
    emitter.emit_plot("fig3c", "fig3c", c.plot_series());

    // Panel (d): CDF of size NRMSE over all categories at fixed |S|.
    {
        let mut t = Table::new(vec!["estimator".into(), "nrmse".into(), "cdf".into()]);
        for (kind, name) in [
            (EstimatorKind::InducedSize, "induced"),
            (EstimatorKind::StarSize, "star"),
        ] {
            let vals = res_mid.nrmse_across_targets(kind, cdf_size_idx);
            let (xs, fs) = empirical_cdf(&vals);
            for (x, f) in xs.iter().zip(&fs) {
                t.row(vec![name.into(), fmt_nrmse(*x), format!("{f:.2}")]);
            }
        }
        emitter.emit(
            "fig3d",
            &format!(
                "Fig. 3(d): CDF of NRMSE(|Â|) over all {ncat} categories at |S|={}",
                sizes[cdf_size_idx]
            ),
            &t,
        );
    }

    let e = panel(vec![
        (format!("k={k_lo}"), &res_klo, t_klo, weight_kinds),
        (format!("k={k_hi}"), &res_khi, t_khi, weight_kinds),
    ]);
    emitter.emit(
        "fig3e",
        "Fig. 3(e): NRMSE(ŵ), α=0.5, edge e_high, k sweep",
        &e.table(),
    );
    emitter.emit_plot("fig3e", "fig3e", e.plot_series());

    let f = panel(vec![
        ("α=0.0".into(), &res_a0, t_a0, weight_kinds),
        ("α=1.0".into(), &res_a1, t_a1, weight_kinds),
    ]);
    emitter.emit(
        "fig3f",
        &format!("Fig. 3(f): NRMSE(ŵ), k={k_mid}, edge e_high, α sweep"),
        &f.table(),
    );
    emitter.emit_plot("fig3f", "fig3f", f.plot_series());

    let g = panel(vec![
        ("e_low".into(), &res_mid, t_low, weight_kinds),
        ("e_high".into(), &res_mid, t_high, weight_kinds),
    ]);
    emitter.emit(
        "fig3g",
        &format!("Fig. 3(g): NRMSE(ŵ), k={k_mid}, α=0.5, e_low vs e_high"),
        &g.table(),
    );
    emitter.emit_plot("fig3g", "fig3g", g.plot_series());

    // Panel (h): CDF of weight NRMSE over all edges at fixed |S|.
    {
        let mut t = Table::new(vec!["estimator".into(), "nrmse".into(), "cdf".into()]);
        for (kind, name) in [
            (EstimatorKind::InducedWeight, "induced"),
            (EstimatorKind::StarWeight, "star"),
        ] {
            let vals = res_mid.nrmse_across_targets(kind, cdf_size_idx);
            let (xs, fs) = empirical_cdf(&vals);
            // Subsample long CDFs for printing; CSV gets every point.
            let stride = (xs.len() / 20).max(1);
            for (i, (x, f)) in xs.iter().zip(&fs).enumerate() {
                if i % stride == 0 || i + 1 == xs.len() {
                    t.row(vec![name.into(), fmt_nrmse(*x), format!("{f:.2}")]);
                }
            }
        }
        emitter.emit(
            "fig3h",
            &format!(
                "Fig. 3(h): CDF of NRMSE(ŵ) over all {} edges at |S|={}",
                mid_weights.len(),
                sizes[cdf_size_idx]
            ),
            &t,
        );
    }

    println!("\nfig3 done. Expected shape: star < induced for weights everywhere;");
    println!("star advantage for sizes grows with k and with α (see EXPERIMENTS.md).");
    Ok(())
}
