//! The built-in scenarios: every figure/table binary of the reproduction,
//! shipped as embedded `.scn` strings plus a reporter that renders the
//! job outputs into the binary's exact legacy stdout (verified
//! byte-for-byte by the golden-output tests in `crates/bench`).

mod ablations;
mod facebook_figs;
mod fig3;
mod fig4;
mod tables;

use crate::report::RunContext;
use crate::{CacheStats, EngineError, RunOptions};

/// A builtin's report function: renders job outputs to stdout/CSV.
pub type Reporter = fn(&RunContext<'_>) -> Result<(), EngineError>;

const BUILTINS: &[(&str, &str, Reporter)] = &[
    (
        "fig3",
        include_str!("../../scenarios/fig3.scn"),
        fig3::report,
    ),
    (
        "fig4",
        include_str!("../../scenarios/fig4.scn"),
        fig4::report,
    ),
    (
        "fig5",
        include_str!("../../scenarios/fig5.scn"),
        facebook_figs::fig5_report,
    ),
    (
        "fig6",
        include_str!("../../scenarios/fig6.scn"),
        facebook_figs::fig6_report,
    ),
    (
        "fig7",
        include_str!("../../scenarios/fig7.scn"),
        facebook_figs::fig7_report,
    ),
    (
        "table1",
        include_str!("../../scenarios/table1.scn"),
        tables::table1_report,
    ),
    (
        "table2",
        include_str!("../../scenarios/table2.scn"),
        tables::table2_report,
    ),
    (
        "ablation_model_based",
        include_str!("../../scenarios/ablation_model_based.scn"),
        ablations::model_based_report,
    ),
    (
        "ablation_swrw",
        include_str!("../../scenarios/ablation_swrw.scn"),
        ablations::swrw_report,
    ),
    (
        "ablation_thinning",
        include_str!("../../scenarios/ablation_thinning.scn"),
        ablations::thinning_report,
    ),
    (
        "huge",
        include_str!("../../scenarios/huge.scn"),
        huge_report,
    ),
];

/// The `huge` scenario has no legacy binary to replicate; it renders with
/// the generic reporter.
fn huge_report(ctx: &RunContext<'_>) -> Result<(), EngineError> {
    crate::report::generic_report(ctx)
}

/// Names of all built-in scenarios, in figure order.
pub fn builtin_names() -> Vec<&'static str> {
    BUILTINS.iter().map(|(n, _, _)| *n).collect()
}

/// The embedded `.scn` source of a builtin.
pub fn builtin_scenario(name: &str) -> Option<&'static str> {
    BUILTINS
        .iter()
        .find(|(n, _, _)| *n == name)
        .map(|(_, s, _)| *s)
}

/// The reporter registered for a scenario name (builtins only).
pub fn reporter_for(name: &str) -> Option<Reporter> {
    BUILTINS
        .iter()
        .find(|(n, _, _)| *n == name)
        .map(|(_, _, r)| *r)
}

/// Runs a builtin end to end (the figure-binary shims call this).
pub fn run_builtin(name: &str, opts: &RunOptions) -> Result<CacheStats, EngineError> {
    let scn = builtin_scenario(name)
        .ok_or_else(|| EngineError::msg(format!("unknown builtin scenario {name:?}")))?;
    crate::run_scenario_str(scn, opts)
}
