//! Declarative experiment scenarios for the paper's evaluation (§6–§7).
//!
//! The paper's evaluation is a large cross-product — sampling designs ×
//! observation scenarios × estimators × graph families × growing prefix
//! sizes. This crate turns each cell of that product into **data**: a small
//! TOML-like `.scn` file describes the graph specs, sampler grid, estimator
//! settings, prefix sizes, replications and seed, with sweep syntax
//! (`thinning = [1, 2, 5]`) that expands to a job matrix. The engine then:
//!
//! 1. **parses** the scenario ([`parse`], [`spec`]) with line-numbered
//!    errors and scale selectors (`scale(quick, default, full)`);
//! 2. **plans** a job DAG ([`plan`]): one build job per distinct graph
//!    spec, one runnable job per matrix cell, dependencies wired from
//!    consumers to builders;
//! 3. **schedules** the DAG ([`schedule`]) onto `--threads`-bounded workers
//!    over `crossbeam` channels, deduplicating graph construction through a
//!    content-keyed [`cache::ResourceCache`] shared by every job;
//! 4. **persists** every job's series as CSV + JSON under a run directory
//!    with a manifest ([`artifact`]), so `--resume` re-executes only
//!    incomplete jobs;
//! 5. **reports** ([`report`], [`builtins`]): the ten figure/table binaries
//!    are thin shims over embedded built-in scenarios whose reporters
//!    reproduce the original table output byte-for-byte.
//!
//! See `EXPERIMENTS.md` at the repository root for the `.scn` format
//! reference and the default-scale outputs of every built-in scenario.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod builtins;
pub mod cache;
pub mod parse;
pub mod plan;
pub mod report;
pub mod runner;
pub mod schedule;
pub mod spec;
pub mod stages;
pub mod value;

pub use builtins::{builtin_names, builtin_scenario, run_builtin};
pub use cache::{CacheStats, ResourceCache};
pub use parse::{parse_scn, ScnDoc};
pub use plan::{build_plan, Job, JobKind, Plan};
pub use report::{fmt_nrmse, log_sizes, Emitter};
pub use runner::{JobOutput, NamedSeries, ReportSection};
pub use schedule::run_plan;
pub use spec::{resolve_scenario, Scenario};
pub use value::Value;

use std::path::PathBuf;

/// Run scale selected on the command line; the three parameter tiers
/// every figure binary historically supported, plus the million-node
/// `huge` tier served by the parallel generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smoke-test parameters (CI-sized, seconds).
    Quick,
    /// Laptop-scale defaults (graphs scaled down ~10×).
    Default,
    /// The paper's parameters.
    Full,
    /// Million-node scale tier (1M–2M-node graphs, built by the parallel
    /// generators). `scale(...)` selectors with only three arguments fall
    /// back to their `full` value at this tier.
    Huge,
}

impl Scale {
    /// Display name, as used in manifests and progress lines.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Default => "default",
            Scale::Full => "full",
            Scale::Huge => "huge",
        }
    }
}

/// Engine options shared by every entry point (the `cgte run` subcommand
/// and the figure-binary shims).
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Parameter tier.
    pub scale: Scale,
    /// Base seed override; `None` uses the scenario file's `seed` key.
    pub seed: Option<u64>,
    /// Where reporters dump CSV series and SVG plots (the legacy `--csv`).
    pub csv_dir: Option<PathBuf>,
    /// Scheduler worker threads (0 = all available cores).
    pub threads: usize,
    /// Run directory for job artifacts + manifest; `None` keeps results
    /// in memory only (no `--resume` support).
    pub out_dir: Option<PathBuf>,
    /// Skip jobs already completed in `out_dir`'s manifest.
    pub resume: bool,
    /// Suppress per-job progress lines on stderr.
    pub quiet: bool,
    /// Persistent graph-store directory (the `--cache-dir` disk tier):
    /// every built resource is saved as a `.cgteg` under its content key,
    /// and warm runs load instead of rebuilding (`builds == 0`).
    pub cache_dir: Option<PathBuf>,
    /// Serve `.cgteg` loads (disk tier and `file =` sources) through the
    /// zero-copy mapped loader. Results are bit-identical to heap loads;
    /// only load cost changes. Does not affect run fingerprints.
    pub mmap: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            scale: Scale::Default,
            seed: None,
            csv_dir: None,
            threads: 0,
            out_dir: None,
            resume: false,
            quiet: false,
            cache_dir: None,
            mmap: false,
        }
    }
}

/// Any error surfaced by the scenario engine: parse errors carry the
/// offending line number, everything else a plain message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineError {
    /// 1-based line in the `.scn` source, when the error is tied to one.
    pub line: Option<usize>,
    /// Human-readable description.
    pub msg: String,
}

impl EngineError {
    /// An error anchored to a scenario-file line.
    pub fn at(line: usize, msg: impl Into<String>) -> Self {
        EngineError {
            line: Some(line),
            msg: msg.into(),
        }
    }

    /// An error with no source location.
    pub fn msg(msg: impl Into<String>) -> Self {
        EngineError {
            line: None,
            msg: msg.into(),
        }
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.line {
            Some(l) => write!(f, "line {l}: {}", self.msg),
            None => write!(f, "{}", self.msg),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        EngineError::msg(e.to_string())
    }
}

/// Parses and runs a scenario from a string, using the builtin reporter
/// when `text` is one of the embedded scenarios, and the generic reporter
/// otherwise. Returns the cache statistics of the run.
pub fn run_scenario_str(text: &str, opts: &RunOptions) -> Result<CacheStats, EngineError> {
    let doc = parse_scn(text)?;
    let scenario = resolve_scenario(&doc, opts.scale, opts.seed)?;
    // A builtin reporter expects the builtin's exact job ids, so it is
    // selected only when the source *is* the embedded scenario — a user
    // file that merely reuses a builtin's name gets the generic reporter.
    let reporter = builtins::builtin_scenario(&scenario.name)
        .filter(|&src| src == text)
        .and_then(|_| builtins::reporter_for(&scenario.name));
    run_resolved(text, scenario, opts, reporter)
}

/// Parses and runs a scenario from a file path.
pub fn run_scenario_path(
    path: &std::path::Path,
    opts: &RunOptions,
) -> Result<CacheStats, EngineError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| EngineError::msg(format!("cannot read {path:?}: {e}")))?;
    run_scenario_str(&text, opts)
}

fn run_resolved(
    source: &str,
    scenario: Scenario,
    opts: &RunOptions,
    reporter: Option<builtins::Reporter>,
) -> Result<CacheStats, EngineError> {
    let plan = build_plan(&scenario)?;
    let cache = match &opts.cache_dir {
        Some(dir) => ResourceCache::with_disk(dir),
        None => ResourceCache::new(),
    }
    .mmap(opts.mmap);
    let outputs = run_plan(&plan, &cache, opts, source)?;
    let ctx = report::RunContext {
        plan: &plan,
        outputs: &outputs,
        emitter: Emitter {
            csv_dir: opts.csv_dir.clone(),
        },
        scale: opts.scale,
    };
    match reporter {
        Some(r) => r(&ctx)?,
        None => report::generic_report(&ctx)?,
    }
    Ok(cache.stats())
}
