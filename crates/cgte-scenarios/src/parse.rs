//! The dependency-free `.scn` parser.
//!
//! The format is a line-oriented TOML subset:
//!
//! ```text
//! # comment
//! [scenario]                 # section
//! name = "fig3"              # key = value
//! [graph.mid]                # section with a name
//! k = scale(6, 20, 20)       # scale-selected value
//! alpha = [0.0, 0.5, 1.0]    # list (a sweep in scalar position)
//! sizes = logsizes(100, 10000, 5)
//! ```
//!
//! Every error carries the 1-based source line. Values must fit on one
//! line; strings are double-quoted (bare words are accepted for
//! identifier-like strings such as sampler kinds).

use crate::value::Value;
use crate::EngineError;

/// One `key = value` entry with its source line.
#[derive(Debug, Clone)]
pub struct Entry {
    /// The key left of `=`.
    pub key: String,
    /// The parsed value.
    pub value: Value,
    /// 1-based source line.
    pub line: usize,
}

/// One `[kind]` or `[kind.name]` section.
#[derive(Debug, Clone)]
pub struct Section {
    /// The part before the dot (`graph`, `sampler`, `job`, …).
    pub kind: String,
    /// The part after the dot, or `""` for unnamed sections.
    pub name: String,
    /// 1-based source line of the header.
    pub line: usize,
    /// Entries in file order.
    pub entries: Vec<Entry>,
}

impl Section {
    /// Looks up an entry by key.
    pub fn get(&self, key: &str) -> Option<&Entry> {
        self.entries.iter().find(|e| e.key == key)
    }
}

/// A parsed scenario document: sections in file order.
#[derive(Debug, Clone, Default)]
pub struct ScnDoc {
    /// All sections, in file order.
    pub sections: Vec<Section>,
}

impl ScnDoc {
    /// All sections of one kind, in file order.
    pub fn sections_of<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a Section> + 'a {
        self.sections.iter().filter(move |s| s.kind == kind)
    }

    /// The single section of a kind, if present; errors on duplicates.
    pub fn unique_section<'a>(&'a self, kind: &'a str) -> Result<Option<&'a Section>, EngineError> {
        let mut found = None;
        for s in self.sections_of(kind) {
            if found.is_some() {
                return Err(EngineError::at(
                    s.line,
                    format!("duplicate [{kind}] section"),
                ));
            }
            found = Some(s);
        }
        Ok(found)
    }
}

/// Parses a `.scn` document, reporting the first error with its line.
pub fn parse_scn(text: &str) -> Result<ScnDoc, EngineError> {
    let mut doc = ScnDoc::default();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = strip_comment(raw);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let inner = rest
                .strip_suffix(']')
                .ok_or_else(|| {
                    EngineError::at(lineno, "unterminated section header (missing ']')")
                })?
                .trim();
            let (kind, name) = match inner.split_once('.') {
                Some((k, n)) => (k.trim(), n.trim()),
                None => (inner, ""),
            };
            if kind.is_empty() || !is_ident(kind) || (!name.is_empty() && !is_ident(name)) {
                return Err(EngineError::at(
                    lineno,
                    format!("invalid section header [{inner}]"),
                ));
            }
            if doc
                .sections
                .iter()
                .any(|s| s.kind == kind && s.name == name)
            {
                return Err(EngineError::at(
                    lineno,
                    format!("duplicate section [{inner}]"),
                ));
            }
            doc.sections.push(Section {
                kind: kind.to_string(),
                name: name.to_string(),
                line: lineno,
                entries: Vec::new(),
            });
            continue;
        }
        let (key, rest) = line.split_once('=').ok_or_else(|| {
            EngineError::at(lineno, format!("expected `key = value`, got {line:?}"))
        })?;
        let key = key.trim();
        if !is_ident(key) {
            return Err(EngineError::at(lineno, format!("invalid key {key:?}")));
        }
        let value = parse_value_str(rest.trim(), lineno)?;
        let section = doc.sections.last_mut().ok_or_else(|| {
            EngineError::at(lineno, format!("entry {key:?} before any [section] header"))
        })?;
        if section.entries.iter().any(|e| e.key == key) {
            return Err(EngineError::at(
                lineno,
                format!("duplicate key {key:?} in section [{}]", section.kind),
            ));
        }
        section.entries.push(Entry {
            key: key.to_string(),
            value,
            line: lineno,
        });
    }
    Ok(doc)
}

/// Strips a trailing `# comment`, honoring double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

/// Parses a complete value string; errors if trailing characters remain.
pub fn parse_value_str(s: &str, line: usize) -> Result<Value, EngineError> {
    if s.is_empty() {
        return Err(EngineError::at(line, "missing value after `=`"));
    }
    let bytes: Vec<char> = s.chars().collect();
    let mut pos = 0usize;
    let v = parse_value(&bytes, &mut pos, line)?;
    skip_ws(&bytes, &mut pos);
    if pos != bytes.len() {
        return Err(EngineError::at(
            line,
            format!(
                "unexpected trailing characters {:?} after value",
                bytes[pos..].iter().collect::<String>()
            ),
        ));
    }
    Ok(v)
}

fn skip_ws(b: &[char], pos: &mut usize) {
    while *pos < b.len() && b[*pos].is_whitespace() {
        *pos += 1;
    }
}

fn parse_value(b: &[char], pos: &mut usize, line: usize) -> Result<Value, EngineError> {
    skip_ws(b, pos);
    let Some(&c) = b.get(*pos) else {
        return Err(EngineError::at(line, "unexpected end of value"));
    };
    match c {
        '"' => parse_string(b, pos, line),
        '[' => {
            *pos += 1;
            let mut items = Vec::new();
            loop {
                skip_ws(b, pos);
                if b.get(*pos) == Some(&']') {
                    *pos += 1;
                    return Ok(Value::List(items));
                }
                if !items.is_empty() {
                    if b.get(*pos) != Some(&',') {
                        return Err(EngineError::at(line, "expected ',' or ']' in list"));
                    }
                    *pos += 1;
                    skip_ws(b, pos);
                    // Allow a trailing comma before ']'.
                    if b.get(*pos) == Some(&']') {
                        *pos += 1;
                        return Ok(Value::List(items));
                    }
                }
                items.push(parse_value(b, pos, line)?);
            }
        }
        c if c.is_ascii_digit() || c == '-' || c == '+' => parse_number(b, pos, line),
        c if c.is_ascii_alphabetic() || c == '_' => {
            let start = *pos;
            while *pos < b.len()
                && (b[*pos].is_ascii_alphanumeric() || b[*pos] == '_' || b[*pos] == '-')
            {
                *pos += 1;
            }
            let word: String = b[start..*pos].iter().collect();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&'(') {
                *pos += 1;
                let mut args = Vec::new();
                loop {
                    skip_ws(b, pos);
                    if b.get(*pos) == Some(&')') {
                        *pos += 1;
                        return Ok(Value::Func(word, args));
                    }
                    if !args.is_empty() {
                        if b.get(*pos) != Some(&',') {
                            return Err(EngineError::at(
                                line,
                                format!("expected ',' or ')' in {word}(...)"),
                            ));
                        }
                        *pos += 1;
                    }
                    args.push(parse_value(b, pos, line)?);
                }
            }
            Ok(match word.as_str() {
                "true" => Value::Bool(true),
                "false" => Value::Bool(false),
                _ => Value::Str(word),
            })
        }
        other => Err(EngineError::at(
            line,
            format!("unexpected character {other:?} in value"),
        )),
    }
}

fn parse_string(b: &[char], pos: &mut usize, line: usize) -> Result<Value, EngineError> {
    debug_assert_eq!(b[*pos], '"');
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            '"' => return Ok(Value::Str(out)),
            '\\' => {
                let Some(&e) = b.get(*pos) else {
                    return Err(EngineError::at(line, "unterminated escape in string"));
                };
                *pos += 1;
                out.push(match e {
                    'n' => '\n',
                    't' => '\t',
                    '\\' => '\\',
                    '"' => '"',
                    other => {
                        return Err(EngineError::at(
                            line,
                            format!("unknown escape \\{other} in string"),
                        ))
                    }
                });
            }
            other => out.push(other),
        }
    }
    Err(EngineError::at(line, "unterminated string literal"))
}

fn parse_number(b: &[char], pos: &mut usize, line: usize) -> Result<Value, EngineError> {
    let start = *pos;
    if b.get(*pos) == Some(&'-') || b.get(*pos) == Some(&'+') {
        *pos += 1;
    }
    // Hex integers: 0x…
    if b.get(*pos) == Some(&'0') && matches!(b.get(*pos + 1), Some('x') | Some('X')) {
        *pos += 2;
        let digits_start = *pos;
        while *pos < b.len() && (b[*pos].is_ascii_hexdigit() || b[*pos] == '_') {
            *pos += 1;
        }
        let digits: String = b[digits_start..*pos]
            .iter()
            .filter(|&&c| c != '_')
            .collect();
        if digits.is_empty() {
            return Err(EngineError::at(line, "empty hex literal"));
        }
        let neg = b[start] == '-';
        let mag = i64::from_str_radix(&digits, 16)
            .map_err(|e| EngineError::at(line, format!("invalid hex literal: {e}")))?;
        return Ok(Value::Int(if neg { -mag } else { mag }));
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        if c.is_ascii_digit() || c == '_' {
            *pos += 1;
        } else if c == '.' || c == 'e' || c == 'E' {
            is_float = true;
            *pos += 1;
            // Allow an exponent sign right after e/E.
            if (c == 'e' || c == 'E') && matches!(b.get(*pos), Some('-') | Some('+')) {
                *pos += 1;
            }
        } else {
            break;
        }
    }
    let text: String = b[start..*pos].iter().filter(|&&c| c != '_').collect();
    if is_float {
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|e| EngineError::at(line, format!("invalid float {text:?}: {e}")))
    } else {
        text.parse::<i64>()
            .map(Value::Int)
            .map_err(|e| EngineError::at(line, format!("invalid integer {text:?}: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_and_values() {
        let doc = parse_scn(
            "# header\n[scenario]\nname = \"demo\"\nseed = 0x10\n[graph.g]\nk = [1, 2]\nalpha = 0.5 # inline\nsizes = logsizes(10, 100, 3)\nreps = scale(1, 2, 3)\nflag = true\n",
        )
        .unwrap();
        assert_eq!(doc.sections.len(), 2);
        assert_eq!(doc.sections[0].kind, "scenario");
        assert_eq!(doc.sections[1].name, "g");
        assert_eq!(
            doc.sections[1].get("k").unwrap().value,
            Value::List(vec![Value::Int(1), Value::Int(2)])
        );
        assert_eq!(doc.sections[0].get("seed").unwrap().value, Value::Int(16));
        assert_eq!(
            doc.sections[1].get("alpha").unwrap().value,
            Value::Float(0.5)
        );
        assert_eq!(
            doc.sections[1].get("flag").unwrap().value,
            Value::Bool(true)
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_scn("[scenario]\nname = \"x\"\noops\n").unwrap_err();
        assert_eq!(e.line, Some(3));
        let e = parse_scn("key = 1\n").unwrap_err();
        assert_eq!(e.line, Some(1));
        let e = parse_scn("[s]\nk = [1, 2\n").unwrap_err();
        assert_eq!(e.line, Some(2));
        let e = parse_scn("[s]\nk = \"unterminated\n").unwrap_err();
        assert_eq!(e.line, Some(2));
    }

    #[test]
    fn rejects_duplicates() {
        assert!(parse_scn("[s]\nk = 1\nk = 2\n")
            .unwrap_err()
            .msg
            .contains("duplicate key"));
        assert!(parse_scn("[s]\n[s]\n")
            .unwrap_err()
            .msg
            .contains("duplicate section"));
    }

    #[test]
    fn comment_hash_inside_string_kept() {
        let doc = parse_scn("[s]\nk = \"a # b\"\n").unwrap();
        assert_eq!(
            doc.sections[0].get("k").unwrap().value,
            Value::Str("a # b".into())
        );
    }
}
