//! Job-matrix expansion: sweeps → concrete jobs → dependency DAG.
//!
//! Every graph/sampler/custom section key holding a list in scalar
//! position is a **sweep**; the planner takes the cross product of all
//! sweeps in a section (in key order) and materializes one variant per
//! combination. Jobs reference graph variants by content key; one build
//! job per distinct key is prepended and every consumer depends on it, so
//! the scheduler's topological order guarantees a graph is constructed
//! exactly once no matter how many jobs share it.

use crate::spec::{is_sweep_key, Params, Scenario};
use crate::value::Value;
use crate::EngineError;
use cgte_datasets::{FacebookSimConfig, StandinKind};
use std::collections::HashMap;

/// A concrete (sweep-expanded) graph/simulation spec, identified by a
/// canonical content key.
#[derive(Debug, Clone)]
pub enum ResolvedGraph {
    /// Planted-partition generator (`PlantedConfig::paper`/`scaled`, or
    /// `scaled_up` through the parallel path when `scale_mul > 1`).
    Planted {
        /// Intra-category mean degree.
        k: usize,
        /// Community tightness.
        alpha: f64,
        /// Down-scaling divisor (1 = paper scale).
        scale_div: usize,
        /// Up-scaling multiplier for the `scale(huge)` tier (1 = paper
        /// scale; `> 1` routes construction through the thread-invariant
        /// parallel generators).
        scale_mul: usize,
        /// Fully derived RNG seed.
        seed: u64,
    },
    /// Table-1 stand-in graphs (+ spectral top-k partition).
    Standin {
        /// Which dataset stand-in.
        kind: StandinKind,
        /// Down-scaling divisor.
        scale_div: usize,
        /// Up-scaling multiplier (`> 1` = parallel huge-tier build).
        scale_mul: usize,
        /// Partition: the top-k communities + rest.
        top_k: usize,
        /// Use the spectral community finder.
        spectral: bool,
        /// Fully derived RNG seed.
        seed: u64,
    },
    /// A pre-built graph loaded from a `.cgteg` container (`cgte ingest`
    /// output). Uses the file's embedded `main` partition when present;
    /// otherwise a top-k community partition is computed on first use.
    File {
        /// Path to the `.cgteg` file.
        path: String,
        /// Fallback partition: the top-k communities + rest.
        top_k: usize,
        /// Fallback partition: use the spectral community finder.
        spectral: bool,
        /// Fully derived RNG seed (for the fallback partition stream).
        seed: u64,
    },
    /// The Facebook-like population simulator, optionally with the 2009 +
    /// 2010 crawl datasets.
    Facebook {
        /// Simulator configuration.
        cfg: FacebookSimConfig,
        /// Crawl parameters `(walks09, per_walk09, walks10, per_walk10)`,
        /// when the scenario needs the crawl datasets.
        crawls: Option<(usize, usize, usize, usize)>,
        /// Fully derived RNG seed.
        seed: u64,
    },
}

impl ResolvedGraph {
    /// Canonical content key: generator + every parameter + seed. Two
    /// specs with equal keys build identical resources.
    pub fn key(&self) -> String {
        match self {
            ResolvedGraph::Planted {
                k,
                alpha,
                scale_div,
                scale_mul,
                seed,
            } => {
                // `scale_mul` joins the key only when it scales (keeps the
                // legacy keys of every pre-huge scenario byte-stable).
                let mul = if *scale_mul > 1 {
                    format!(",scale_mul={scale_mul}")
                } else {
                    String::new()
                };
                format!("planted:k={k},alpha={alpha},scale_div={scale_div}{mul},seed={seed}")
            }
            ResolvedGraph::Standin {
                kind,
                scale_div,
                scale_mul,
                top_k,
                spectral,
                seed,
            } => {
                let mul = if *scale_mul > 1 {
                    format!(",scale_mul={scale_mul}")
                } else {
                    String::new()
                };
                format!(
                    "standin:kind={},scale_div={scale_div}{mul},top_k={top_k},spectral={spectral},seed={seed}",
                    kind.name()
                )
            }
            ResolvedGraph::File {
                path,
                top_k,
                spectral,
                seed,
            } => {
                format!("file:path={path},top_k={top_k},spectral={spectral},seed={seed}")
            }
            ResolvedGraph::Facebook { cfg, crawls, seed } => {
                let crawl_part = match crawls {
                    Some((w09, p09, w10, p10)) => format!(",crawls={w09}x{p09}+{w10}x{p10}"),
                    None => String::new(),
                };
                format!(
                    "facebook:users={},regions={},countries={},declared={},colleges={},cfrac={},kmean={},gamma={},rhom={},chom={},zipf={}{crawl_part},seed={seed}",
                    cfg.num_users,
                    cfg.num_regions,
                    cfg.num_countries,
                    cfg.region_declared_fraction,
                    cfg.num_colleges,
                    cfg.college_fraction,
                    cfg.mean_degree,
                    cfg.gamma,
                    cfg.region_homophily,
                    cfg.college_homophily,
                    cfg.zipf_exponent,
                )
            }
        }
    }
}

/// Which sampler a job draws with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplerKind {
    /// Uniform independence sampling.
    Uis,
    /// Simple random walk.
    Rw,
    /// Metropolis-Hastings random walk.
    Mhrw,
    /// Stratified weighted random walk (equal-category-mass target).
    Swrw,
}

impl SamplerKind {
    /// Parses a sampler kind name.
    pub fn parse(s: &str, line: usize) -> Result<SamplerKind, EngineError> {
        Ok(match s {
            "uis" => SamplerKind::Uis,
            "rw" => SamplerKind::Rw,
            "mhrw" => SamplerKind::Mhrw,
            "swrw" => SamplerKind::Swrw,
            other => {
                return Err(EngineError::at(
                    line,
                    format!("unknown sampler kind {other:?} (known: uis, rw, mhrw, swrw)"),
                ))
            }
        })
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SamplerKind::Uis => "uis",
            SamplerKind::Rw => "rw",
            SamplerKind::Mhrw => "mhrw",
            SamplerKind::Swrw => "swrw",
        }
    }
}

/// Burn-in policy for walk samplers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BurnIn {
    /// A fixed number of discarded steps.
    Fixed(usize),
    /// `max(sample sizes) / div` steps (the figure binaries' idiom).
    Div(usize),
}

/// A concrete sampler variant.
#[derive(Debug, Clone)]
pub struct ResolvedSampler {
    /// Variant display name (section name + sweep suffix).
    pub name: String,
    /// Which sampler.
    pub kind: SamplerKind,
    /// Burn-in policy.
    pub burn_in: BurnIn,
    /// Thinning factor (keep every T-th node).
    pub thinning: usize,
}

/// Estimator design choice for a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DesignChoice {
    /// Uniform (UIS-style) estimators.
    Uniform,
    /// Hansen–Hurwitz weighted estimators.
    Weighted,
    /// Uniform for independence samplers, weighted for walks.
    Auto,
}

/// Experiment settings for one job, after inheritance from `[experiment]`.
#[derive(Debug, Clone)]
pub struct ResolvedExperiment {
    /// Prefix sizes `|S|`.
    pub sizes: Vec<usize>,
    /// Replications per point.
    pub replications: usize,
    /// Estimator design.
    pub design: DesignChoice,
    /// Symbolic target specs (`size:all`, `weight:q75`, …), resolved
    /// against the built graph at job start.
    pub targets: Vec<String>,
    /// Cap for `weight:spectrum` targets (0 = no cap).
    pub max_weight_targets: usize,
    /// `ExperimentConfig::threads` for this job (0 = all cores); the plan
    /// leaves 0 only for single-experiment plans, where the scheduler
    /// passes its own `--threads` through.
    pub threads: usize,
    /// Base seed for the replication streams.
    pub seed: u64,
}

/// What a scheduled job does.
#[derive(Debug, Clone)]
pub enum JobKind {
    /// Construct (and cache) a graph resource.
    Build {
        /// Content key into the resource cache.
        key: String,
    },
    /// Run the NRMSE protocol for one graph × sampler × settings cell.
    Experiment {
        /// Content key of the graph resource.
        graph_key: String,
        /// Sampler variant.
        sampler: ResolvedSampler,
        /// Experiment settings.
        exp: ResolvedExperiment,
    },
    /// Run a registered custom stage (the Facebook-crawl figures and the
    /// ablations that predate the declarative job model).
    Custom {
        /// Stage name in the registry.
        stage: String,
        /// Resolved stage parameters (sweeps already applied).
        params: Vec<(String, Value)>,
        /// Content key of the resource the stage consumes, if any.
        uses: Option<String>,
        /// Scenario base seed.
        seed: u64,
    },
}

/// One schedulable job.
#[derive(Debug, Clone)]
pub struct Job {
    /// Stable id (`jobsection/graphvariant/samplervariant`), used for
    /// artifacts, `--resume`, and reporter lookups.
    pub id: String,
    /// What to do.
    pub kind: JobKind,
    /// Indices of jobs that must complete first.
    pub deps: Vec<usize>,
}

/// The expanded, dependency-ordered run plan.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The resolved scenario (reporters read headings/params from here).
    pub scenario: Scenario,
    /// All jobs; build jobs precede their consumers.
    pub jobs: Vec<Job>,
    /// Graph specs by content key.
    pub graphs: HashMap<String, ResolvedGraph>,
    /// Graph section name → expanded `(variant name, content key)` list.
    pub graph_variants: HashMap<String, Vec<(String, String)>>,
}

impl Plan {
    /// Number of runnable (non-build) jobs.
    pub fn num_runnable(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| !matches!(j.kind, JobKind::Build { .. }))
            .count()
    }
}

/// `(key, value, source line)` entries of one expanded section variant.
type SectionEntries = Vec<(String, Value, usize)>;

/// Expands one section's sweep keys into concrete variants. Returns
/// `(variant-suffixed name, key → scalar value map)` pairs; a section with
/// no sweeps yields exactly itself.
fn expand_sweeps(kind: &str, p: &Params) -> Vec<(String, SectionEntries)> {
    let sweep_keys: Vec<usize> = p
        .entries
        .iter()
        .enumerate()
        .filter(|(_, (k, v, _))| matches!(v, Value::List(_)) && is_sweep_key(kind, k))
        .map(|(i, _)| i)
        .collect();
    if sweep_keys.is_empty() {
        return vec![(p.name.clone(), p.entries.clone())];
    }
    let single = sweep_keys.len() == 1;
    let mut variants: Vec<(String, SectionEntries)> = vec![(String::new(), p.entries.clone())];
    for &ki in &sweep_keys {
        let (key, value, line) = p.entries[ki].clone();
        let Value::List(options) = value else {
            unreachable!()
        };
        let mut next = Vec::with_capacity(variants.len() * options.len());
        for (suffix, entries) in &variants {
            for opt in &options {
                let mut e = entries.clone();
                e[ki] = (key.clone(), opt.clone(), line);
                let part = if single {
                    format!("{opt}")
                } else {
                    format!("{key}={opt}")
                };
                let suffix = if suffix.is_empty() {
                    part
                } else {
                    format!("{suffix},{part}")
                };
                next.push((suffix, e));
            }
        }
        variants = next;
    }
    variants
        .into_iter()
        .map(|(suffix, entries)| (format!("{}[{suffix}]", p.name), entries))
        .collect()
}

fn params_of(name: &str, line: usize, entries: SectionEntries) -> Params {
    Params {
        name: name.to_string(),
        line,
        entries,
    }
}

fn resolve_graph(p: &Params, base_seed: u64) -> Result<ResolvedGraph, EngineError> {
    let (gen_v, gen_l) = p.required("generator")?;
    let gen = gen_v.as_str(gen_l, "generator")?;
    let seed = base_seed.wrapping_add(p.u64_or("seed_add", 0)?) ^ p.u64_or("seed_xor", 0)?;
    match gen {
        "planted" => Ok(ResolvedGraph::Planted {
            k: p.usize_or("k", 20)?,
            alpha: p.f64_or("alpha", 0.5)?,
            scale_div: p.usize_or("scale_div", 1)?,
            scale_mul: p.usize_or("scale_mul", 1)?.max(1),
            seed,
        }),
        "standin" => {
            let (kv, kl) = p.required("kind")?;
            let kind = match kv.as_str(kl, "kind")? {
                "texas" => StandinKind::FacebookTexas,
                "neworleans" => StandinKind::FacebookNewOrleans,
                "p2p" => StandinKind::P2p,
                "epinions" => StandinKind::Epinions,
                other => {
                    return Err(EngineError::at(
                        kl,
                        format!(
                        "unknown standin kind {other:?} (known: texas, neworleans, p2p, epinions)"
                    ),
                    ))
                }
            };
            Ok(ResolvedGraph::Standin {
                kind,
                scale_div: p.usize_or("scale_div", 1)?,
                scale_mul: p.usize_or("scale_mul", 1)?.max(1),
                top_k: p.usize_or("top_k", 50)?,
                spectral: p.bool_or("spectral", true)?,
                seed,
            })
        }
        "file" => {
            let (pv, pl) = p.required("file")?;
            Ok(ResolvedGraph::File {
                path: pv.as_str(pl, "file")?.to_string(),
                top_k: p.usize_or("top_k", 50)?,
                spectral: p.bool_or("spectral", false)?,
                seed,
            })
        }
        "facebook" => {
            let preset = p.str_or("preset", "default")?;
            let mut cfg = match preset.as_str() {
                "default" => FacebookSimConfig::default(),
                "quick" => FacebookSimConfig::quick(),
                other => {
                    return Err(EngineError::at(
                        p.line,
                        format!("unknown facebook preset {other:?} (known: default, quick)"),
                    ))
                }
            };
            // Every override accepts the bare word `keep`, which leaves
            // the preset's value in place (used by scale() selectors).
            macro_rules! ov {
                ($key:literal, $field:ident, usize) => {
                    if let Some((v, l)) = p.get($key) {
                        if !matches!(v, Value::Str(s) if s == "keep") {
                            cfg.$field = v.as_usize(l, $key)?;
                        }
                    }
                };
                ($key:literal, $field:ident, f64) => {
                    if let Some((v, l)) = p.get($key) {
                        if !matches!(v, Value::Str(s) if s == "keep") {
                            cfg.$field = v.as_f64(l, $key)?;
                        }
                    }
                };
            }
            ov!("num_users", num_users, usize);
            ov!("num_regions", num_regions, usize);
            ov!("num_countries", num_countries, usize);
            ov!("num_colleges", num_colleges, usize);
            ov!("college_fraction", college_fraction, f64);
            ov!("region_declared_fraction", region_declared_fraction, f64);
            ov!("mean_degree", mean_degree, f64);
            ov!("gamma", gamma, f64);
            ov!("region_homophily", region_homophily, f64);
            ov!("college_homophily", college_homophily, f64);
            ov!("zipf_exponent", zipf_exponent, f64);
            if let Some((v, l)) = p.get("college_fraction_min") {
                if !matches!(v, Value::Str(s) if s == "keep") {
                    cfg.college_fraction = cfg
                        .college_fraction
                        .max(v.as_f64(l, "college_fraction_min")?);
                }
            }
            let crawls = if p.bool_or("crawls", false)? {
                Some((
                    p.usize_or("walks09", 28)?,
                    p.usize_or("per_walk09", 5_000)?,
                    p.usize_or("walks10", 25)?,
                    p.usize_or("per_walk10", 5_000)?,
                ))
            } else {
                None
            };
            Ok(ResolvedGraph::Facebook { cfg, crawls, seed })
        }
        other => Err(EngineError::at(
            gen_l,
            format!("unknown generator {other:?}"),
        )),
    }
}

fn resolve_sampler(p: &Params) -> Result<ResolvedSampler, EngineError> {
    let (kv, kl) = p.required("kind")?;
    let kind = SamplerKind::parse(kv.as_str(kl, "kind")?, kl)?;
    let burn_in = if let Some((v, l)) = p.get("burn_in_div") {
        if p.get("burn_in").is_some() {
            return Err(EngineError::at(
                l,
                "burn_in and burn_in_div are mutually exclusive",
            ));
        }
        BurnIn::Div(v.as_usize(l, "burn_in_div")?)
    } else {
        BurnIn::Fixed(p.usize_or("burn_in", 0)?)
    };
    Ok(ResolvedSampler {
        name: p.name.clone(),
        kind,
        burn_in,
        thinning: p.usize_or("thinning", 1)?,
    })
}

fn resolve_experiment(
    job: Option<&Params>,
    base: &Params,
    seed: u64,
) -> Result<ResolvedExperiment, EngineError> {
    let lookup = |key: &str| job.and_then(|j| j.get(key)).or_else(|| base.get(key));
    let sizes = match lookup("sizes") {
        Some((v, l)) => v.as_usize_list(l, "sizes")?,
        None => vec![100, 1_000, 10_000],
    };
    let replications = match lookup("replications") {
        Some((v, l)) => v.as_usize(l, "replications")?,
        None => 10,
    };
    let design = match lookup("design") {
        Some((v, l)) => match v.as_str(l, "design")? {
            "uniform" => DesignChoice::Uniform,
            "weighted" => DesignChoice::Weighted,
            "auto" => DesignChoice::Auto,
            other => {
                return Err(EngineError::at(
                    l,
                    format!("unknown design {other:?} (known: uniform, weighted, auto)"),
                ))
            }
        },
        None => DesignChoice::Auto,
    };
    let targets = match lookup("targets") {
        Some((v, l)) => v.as_str_list(l, "targets")?,
        None => vec!["size:all".into(), "weight:all".into()],
    };
    let max_weight_targets = match lookup("max_weight_targets") {
        Some((v, l)) => v.as_usize(l, "max_weight_targets")?,
        None => 0,
    };
    let threads = match base.get("threads") {
        Some((v, l)) => v.as_usize(l, "threads")?,
        None => 1,
    };
    Ok(ResolvedExperiment {
        sizes,
        replications,
        design,
        targets,
        max_weight_targets,
        threads,
        seed,
    })
}

/// Expands a resolved scenario into the job DAG.
pub fn build_plan(scenario: &Scenario) -> Result<Plan, EngineError> {
    let mut graphs: HashMap<String, ResolvedGraph> = HashMap::new();
    let mut graph_variants: HashMap<String, Vec<(String, String)>> = HashMap::new();
    let mut build_idx: HashMap<String, usize> = HashMap::new();
    let mut jobs: Vec<Job> = Vec::new();

    // Build jobs, one per distinct graph content key, in section order.
    for g in &scenario.graphs {
        let mut variants = Vec::new();
        for (vname, entries) in expand_sweeps("graph", g) {
            let params = params_of(&vname, g.line, entries);
            let rg = resolve_graph(&params, scenario.seed)?;
            let key = rg.key();
            if !build_idx.contains_key(&key) {
                build_idx.insert(key.clone(), jobs.len());
                jobs.push(Job {
                    id: format!("build/{vname}"),
                    kind: JobKind::Build { key: key.clone() },
                    deps: Vec::new(),
                });
                graphs.insert(key.clone(), rg);
            }
            variants.push((vname, key));
        }
        graph_variants.insert(g.name.clone(), variants);
    }

    // Sampler variants by section name.
    let mut sampler_variants: HashMap<String, Vec<ResolvedSampler>> = HashMap::new();
    let mut sampler_order: Vec<String> = Vec::new();
    for s in &scenario.samplers {
        let mut variants = Vec::new();
        for (vname, entries) in expand_sweeps("sampler", s) {
            let params = params_of(&vname, s.line, entries);
            variants.push(resolve_sampler(&params)?);
        }
        sampler_variants.insert(s.name.clone(), variants);
        sampler_order.push(s.name.clone());
    }

    // Experiment jobs: explicit [job.X] sections, or the full matrix.
    let emit_cell = |jobs: &mut Vec<Job>,
                     jobsec: Option<&Params>,
                     jobsec_name: &str,
                     gvariant: &(String, String),
                     sampler: &ResolvedSampler|
     -> Result<(), EngineError> {
        let exp = resolve_experiment(jobsec, &scenario.experiment, scenario.seed)?;
        let (gname, gkey) = gvariant;
        let dep = build_idx[gkey];
        jobs.push(Job {
            id: format!("{jobsec_name}/{gname}/{}", sampler.name),
            kind: JobKind::Experiment {
                graph_key: gkey.clone(),
                sampler: sampler.clone(),
                exp,
            },
            deps: vec![dep],
        });
        Ok(())
    };

    if scenario.jobs.is_empty() {
        // The implicit all-graphs × all-samplers matrix is enabled by the
        // presence of an [experiment] section (its line is 0 only when
        // synthesized); missing keys fall back to the same defaults an
        // explicit [job] section would get. Scenarios that drive custom
        // stages only (fig5, table1, …) omit [experiment] entirely.
        if !scenario.graphs.is_empty() && scenario.experiment.line > 0 {
            for g in &scenario.graphs {
                for gvariant in &graph_variants[&g.name] {
                    for sname in &sampler_order {
                        for sv in &sampler_variants[sname] {
                            emit_cell(&mut jobs, None, "run", gvariant, sv)?;
                        }
                    }
                }
            }
        }
    } else {
        for j in &scenario.jobs {
            let graph_refs = match j.get("graph") {
                Some((v, l)) => v.as_str_list(l, "graph")?,
                None => scenario.graphs.iter().map(|g| g.name.clone()).collect(),
            };
            let sampler_refs = match j.get("sampler") {
                Some((v, l)) => v.as_str_list(l, "sampler")?,
                None => sampler_order.clone(),
            };
            for gref in &graph_refs {
                let variants = graph_variants.get(gref).ok_or_else(|| {
                    EngineError::at(j.line, format!("job references unknown graph {gref:?}"))
                })?;
                for gvariant in variants {
                    for sref in &sampler_refs {
                        let svs = sampler_variants.get(sref).ok_or_else(|| {
                            EngineError::at(
                                j.line,
                                format!("job references unknown sampler {sref:?}"),
                            )
                        })?;
                        for sv in svs {
                            emit_cell(&mut jobs, Some(j), &j.name, gvariant, sv)?;
                        }
                    }
                }
            }
        }
    }

    // Custom stage jobs.
    for c in &scenario.customs {
        for (vname, entries) in expand_sweeps("custom", c) {
            let params = params_of(&vname, c.line, entries);
            let (sv, sl) = params.required("stage")?;
            let stage = sv.as_str(sl, "stage")?.to_string();
            let (uses, deps) = match params.get("uses") {
                Some((v, l)) => {
                    let gref = v.as_str(l, "uses")?;
                    let variants = graph_variants.get(gref).ok_or_else(|| {
                        EngineError::at(
                            l,
                            format!("custom stage references unknown graph {gref:?}"),
                        )
                    })?;
                    if variants.len() != 1 {
                        return Err(EngineError::at(
                            l,
                            format!("custom stage `uses` must name an unswept graph; {gref:?} has {} variants", variants.len()),
                        ));
                    }
                    let key = variants[0].1.clone();
                    let dep = build_idx[&key];
                    (Some(key), vec![dep])
                }
                None => (None, Vec::new()),
            };
            let plain_params: Vec<(String, Value)> = params
                .entries
                .iter()
                .filter(|(k, _, _)| k != "stage" && k != "uses")
                .map(|(k, v, _)| (k.clone(), v.clone()))
                .collect();
            jobs.push(Job {
                id: vname,
                kind: JobKind::Custom {
                    stage,
                    params: plain_params,
                    uses,
                    seed: scenario.seed,
                },
                deps,
            });
        }
    }

    if jobs.is_empty() {
        return Err(EngineError::msg(
            "scenario expands to zero jobs — add an [experiment] section to run the \
             implicit graph × sampler matrix, or explicit [job]/[custom] sections",
        ));
    }

    // Single-experiment plans inherit the scheduler's full thread budget.
    let exp_jobs: Vec<usize> = jobs
        .iter()
        .enumerate()
        .filter(|(_, j)| matches!(j.kind, JobKind::Experiment { .. }))
        .map(|(i, _)| i)
        .collect();
    if exp_jobs.len() == 1 {
        if let JobKind::Experiment { exp, .. } = &mut jobs[exp_jobs[0]].kind {
            if scenario.experiment.get("threads").is_none() {
                exp.threads = 0;
            }
        }
    }

    Ok(Plan {
        scenario: scenario.clone(),
        jobs,
        graphs,
        graph_variants,
    })
}
