//! Typed, scale-resolved scenario model with schema validation.
//!
//! [`resolve_scenario`] turns a parsed [`ScnDoc`] into a [`Scenario`]:
//! every `scale(...)` / `logsizes(...)` call is resolved for the run's
//! scale, every key is checked against the section's schema (unknown keys
//! and malformed values are rejected with their source line), and the CLI
//! seed override is applied. Sweep lists stay symbolic; they are expanded
//! into the job matrix by [`crate::plan::build_plan`].

use crate::parse::{ScnDoc, Section};
use crate::value::Value;
use crate::{EngineError, Scale};

/// One resolved section: ordered `key -> value` entries plus source lines.
#[derive(Debug, Clone)]
pub struct Params {
    /// Section name (`""` for unnamed sections).
    pub name: String,
    /// Header source line.
    pub line: usize,
    /// Resolved entries in file order.
    pub entries: Vec<(String, Value, usize)>,
}

impl Params {
    /// Looks up a resolved value and its line.
    pub fn get(&self, key: &str) -> Option<(&Value, usize)> {
        self.entries
            .iter()
            .find(|(k, _, _)| k == key)
            .map(|(_, v, l)| (v, *l))
    }

    /// A required key.
    pub fn required(&self, key: &str) -> Result<(&Value, usize), EngineError> {
        self.get(key).ok_or_else(|| {
            EngineError::at(
                self.line,
                format!("section is missing required key `{key}`"),
            )
        })
    }

    /// An optional integer with a default.
    pub fn usize_or(&self, key: &str, default: usize) -> Result<usize, EngineError> {
        match self.get(key) {
            Some((v, l)) => v.as_usize(l, key),
            None => Ok(default),
        }
    }

    /// An optional u64 with a default.
    pub fn u64_or(&self, key: &str, default: u64) -> Result<u64, EngineError> {
        match self.get(key) {
            Some((v, l)) => v.as_u64(l, key),
            None => Ok(default),
        }
    }

    /// An optional float with a default.
    pub fn f64_or(&self, key: &str, default: f64) -> Result<f64, EngineError> {
        match self.get(key) {
            Some((v, l)) => v.as_f64(l, key),
            None => Ok(default),
        }
    }

    /// An optional bool with a default.
    pub fn bool_or(&self, key: &str, default: bool) -> Result<bool, EngineError> {
        match self.get(key) {
            Some((v, l)) => v.as_bool(l, key),
            None => Ok(default),
        }
    }

    /// An optional string with a default.
    pub fn str_or(&self, key: &str, default: &str) -> Result<String, EngineError> {
        match self.get(key) {
            Some((v, l)) => v.as_str(l, key).map(String::from),
            None => Ok(default.to_string()),
        }
    }
}

/// A fully scale-resolved scenario, ready for job-matrix expansion.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (`[scenario] name = "..."`).
    pub name: String,
    /// Base RNG seed after any CLI override.
    pub seed: u64,
    /// `[graph.X]` sections in file order.
    pub graphs: Vec<Params>,
    /// `[sampler.X]` sections in file order.
    pub samplers: Vec<Params>,
    /// The `[experiment]` section (possibly empty defaults).
    pub experiment: Params,
    /// `[job.X]` sections in file order (empty = all graphs × samplers).
    pub jobs: Vec<Params>,
    /// `[custom.X]` sections in file order.
    pub customs: Vec<Params>,
}

impl Scenario {
    /// Looks up a graph section by name (reporters use this for headings).
    pub fn graph(&self, name: &str) -> Option<&Params> {
        self.graphs.iter().find(|p| p.name == name)
    }

    /// A resolved integer param of a named graph section.
    pub fn graph_usize(&self, graph: &str, key: &str) -> Option<usize> {
        let p = self.graph(graph)?;
        let (v, l) = p.get(key)?;
        v.as_usize(l, key).ok()
    }

    /// Looks up a custom section by name.
    pub fn custom(&self, name: &str) -> Option<&Params> {
        self.customs.iter().find(|p| p.name == name)
    }

    /// Looks up a sampler section by name.
    pub fn sampler(&self, name: &str) -> Option<&Params> {
        self.samplers.iter().find(|p| p.name == name)
    }
}

/// Schema entry: whether a list value is plain data (never a sweep).
#[derive(Clone, Copy, PartialEq)]
enum KeyKind {
    /// Scalar position: a list here means a sweep.
    Scalar,
    /// List-valued data (`sizes`, `targets`, `graph`, `sampler` refs).
    DataList,
}

const SCENARIO_KEYS: &[(&str, KeyKind)] = &[("name", KeyKind::Scalar), ("seed", KeyKind::Scalar)];

const PLANTED_KEYS: &[(&str, KeyKind)] = &[
    ("generator", KeyKind::Scalar),
    ("k", KeyKind::Scalar),
    ("alpha", KeyKind::Scalar),
    ("scale_div", KeyKind::Scalar),
    ("scale_mul", KeyKind::Scalar),
    ("seed_add", KeyKind::Scalar),
    ("seed_xor", KeyKind::Scalar),
];

const STANDIN_KEYS: &[(&str, KeyKind)] = &[
    ("generator", KeyKind::Scalar),
    ("kind", KeyKind::Scalar),
    ("scale_div", KeyKind::Scalar),
    ("scale_mul", KeyKind::Scalar),
    ("top_k", KeyKind::Scalar),
    ("spectral", KeyKind::Scalar),
    ("seed_add", KeyKind::Scalar),
    ("seed_xor", KeyKind::Scalar),
];

const FILE_KEYS: &[(&str, KeyKind)] = &[
    ("generator", KeyKind::Scalar),
    ("file", KeyKind::Scalar),
    ("top_k", KeyKind::Scalar),
    ("spectral", KeyKind::Scalar),
    ("seed_add", KeyKind::Scalar),
    ("seed_xor", KeyKind::Scalar),
];

const FACEBOOK_KEYS: &[(&str, KeyKind)] = &[
    ("generator", KeyKind::Scalar),
    ("preset", KeyKind::Scalar),
    ("num_users", KeyKind::Scalar),
    ("num_regions", KeyKind::Scalar),
    ("num_countries", KeyKind::Scalar),
    ("num_colleges", KeyKind::Scalar),
    ("college_fraction", KeyKind::Scalar),
    ("college_fraction_min", KeyKind::Scalar),
    ("region_declared_fraction", KeyKind::Scalar),
    ("mean_degree", KeyKind::Scalar),
    ("gamma", KeyKind::Scalar),
    ("region_homophily", KeyKind::Scalar),
    ("college_homophily", KeyKind::Scalar),
    ("zipf_exponent", KeyKind::Scalar),
    ("crawls", KeyKind::Scalar),
    ("walks09", KeyKind::Scalar),
    ("per_walk09", KeyKind::Scalar),
    ("walks10", KeyKind::Scalar),
    ("per_walk10", KeyKind::Scalar),
    ("seed_add", KeyKind::Scalar),
    ("seed_xor", KeyKind::Scalar),
];

const SAMPLER_KEYS: &[(&str, KeyKind)] = &[
    ("kind", KeyKind::Scalar),
    ("burn_in", KeyKind::Scalar),
    ("burn_in_div", KeyKind::Scalar),
    ("thinning", KeyKind::Scalar),
];

const EXPERIMENT_KEYS: &[(&str, KeyKind)] = &[
    ("sizes", KeyKind::DataList),
    ("replications", KeyKind::Scalar),
    ("design", KeyKind::Scalar),
    ("targets", KeyKind::DataList),
    ("max_weight_targets", KeyKind::Scalar),
    ("threads", KeyKind::Scalar),
];

const JOB_KEYS: &[(&str, KeyKind)] = &[
    ("graph", KeyKind::DataList),
    ("sampler", KeyKind::DataList),
    ("targets", KeyKind::DataList),
    ("design", KeyKind::Scalar),
    ("sizes", KeyKind::DataList),
    ("replications", KeyKind::Scalar),
    ("max_weight_targets", KeyKind::Scalar),
];

/// Keys every `[custom.X]` section accepts besides its stage's own.
const CUSTOM_BASE_KEYS: &[&str] = &["stage", "uses"];

fn check_keys(
    section: &Section,
    allowed: &[(&str, KeyKind)],
    context: &str,
) -> Result<(), EngineError> {
    for e in &section.entries {
        if !allowed.iter().any(|(k, _)| *k == e.key) {
            let known: Vec<&str> = allowed.iter().map(|(k, _)| *k).collect();
            return Err(EngineError::at(
                e.line,
                format!(
                    "unknown key `{}` in {context} (known keys: {})",
                    e.key,
                    known.join(", ")
                ),
            ));
        }
    }
    Ok(())
}

/// Whether a key's list value is a sweep (scalar position) for the given
/// section kind, used by the planner.
pub(crate) fn is_sweep_key(kind: &str, key: &str) -> bool {
    let table: &[(&str, KeyKind)] = match kind {
        "graph" => {
            // The union of all generator schemas; list-typed keys are the
            // same across generators (none).
            PLANTED_KEYS
        }
        "sampler" => SAMPLER_KEYS,
        "custom" => return !CUSTOM_BASE_KEYS.contains(&key),
        "job" => JOB_KEYS,
        _ => return false,
    };
    table
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, t)| *t == KeyKind::Scalar)
        .unwrap_or(true)
}

fn resolve_section(section: &Section, scale: Scale) -> Result<Params, EngineError> {
    let entries = section
        .entries
        .iter()
        .map(|e| Ok((e.key.clone(), e.value.resolve(scale, e.line)?, e.line)))
        .collect::<Result<Vec<_>, EngineError>>()?;
    Ok(Params {
        name: section.name.clone(),
        line: section.line,
        entries,
    })
}

/// Resolves a parsed document into a typed scenario for one run scale,
/// validating every section and key.
pub fn resolve_scenario(
    doc: &ScnDoc,
    scale: Scale,
    seed_override: Option<u64>,
) -> Result<Scenario, EngineError> {
    for s in &doc.sections {
        match s.kind.as_str() {
            "scenario" | "graph" | "sampler" | "experiment" | "job" | "custom" => {}
            other => {
                return Err(EngineError::at(
                    s.line,
                    format!(
                        "unknown section kind [{other}] (known: scenario, graph, sampler, experiment, job, custom)"
                    ),
                ))
            }
        }
    }

    let meta = doc
        .unique_section("scenario")?
        .ok_or_else(|| EngineError::msg("scenario file has no [scenario] section"))?;
    check_keys(meta, SCENARIO_KEYS, "[scenario]")?;
    let meta_params = resolve_section(meta, scale)?;
    let (name_v, name_l) = meta_params.required("name")?;
    let name = name_v.as_str(name_l, "name")?.to_string();
    let seed = match seed_override {
        Some(s) => s,
        None => meta_params.u64_or("seed", 0x2012_5EED)?,
    };

    let mut graphs = Vec::new();
    for s in doc.sections_of("graph") {
        if s.name.is_empty() && doc.sections_of("graph").count() > 1 {
            return Err(EngineError::at(
                s.line,
                "multiple [graph] sections must be named ([graph.NAME])",
            ));
        }
        let gen = s
            .get("generator")
            .ok_or_else(|| EngineError::at(s.line, "graph section is missing `generator`"))?;
        // The generator choice cannot itself be swept or scale-dependent:
        // it selects the schema.
        let gen_name = match &gen.value {
            Value::Str(g) => g.as_str(),
            other => {
                return Err(EngineError::at(
                    gen.line,
                    format!("generator must be a plain string, got {other}"),
                ))
            }
        };
        let schema = match gen_name {
            "planted" => PLANTED_KEYS,
            "standin" => STANDIN_KEYS,
            "facebook" => FACEBOOK_KEYS,
            "file" => FILE_KEYS,
            other => {
                return Err(EngineError::at(
                    gen.line,
                    format!(
                        "unknown generator {other:?} (known: planted, standin, facebook, file)"
                    ),
                ))
            }
        };
        check_keys(s, schema, &format!("[graph.{}] ({gen_name})", s.name))?;
        let mut p = resolve_section(s, scale)?;
        if p.name.is_empty() {
            p.name = "g".into();
        }
        graphs.push(p);
    }

    let mut samplers = Vec::new();
    for s in doc.sections_of("sampler") {
        if s.name.is_empty() && doc.sections_of("sampler").count() > 1 {
            return Err(EngineError::at(
                s.line,
                "multiple [sampler] sections must be named ([sampler.NAME])",
            ));
        }
        check_keys(s, SAMPLER_KEYS, &format!("[sampler.{}]", s.name))?;
        let mut p = resolve_section(s, scale)?;
        if p.name.is_empty() {
            p.name = "s".into();
        }
        samplers.push(p);
    }
    if samplers.is_empty() && !graphs.is_empty() {
        // Default sampler: uniform independence.
        samplers.push(Params {
            name: "uis".into(),
            line: 0,
            entries: vec![("kind".into(), Value::Str("uis".into()), 0)],
        });
    }

    let experiment = match doc.unique_section("experiment")? {
        Some(s) => {
            check_keys(s, EXPERIMENT_KEYS, "[experiment]")?;
            resolve_section(s, scale)?
        }
        None => Params {
            name: String::new(),
            line: 0,
            entries: Vec::new(),
        },
    };

    let mut jobs = Vec::new();
    for s in doc.sections_of("job") {
        check_keys(s, JOB_KEYS, &format!("[job.{}]", s.name))?;
        let mut p = resolve_section(s, scale)?;
        if p.name.is_empty() {
            p.name = "run".into();
        }
        jobs.push(p);
    }

    let mut customs = Vec::new();
    for s in doc.sections_of("custom") {
        let stage = s
            .get("stage")
            .ok_or_else(|| EngineError::at(s.line, "custom section is missing `stage`"))?;
        let stage_name = match &stage.value {
            Value::Str(g) => g.as_str(),
            other => {
                return Err(EngineError::at(
                    stage.line,
                    format!("stage must be a plain string, got {other}"),
                ))
            }
        };
        let extra = crate::stages::stage_param_keys(stage_name).ok_or_else(|| {
            EngineError::at(
                stage.line,
                format!(
                    "unknown stage {stage_name:?} (known: {})",
                    crate::stages::stage_names().join(", ")
                ),
            )
        })?;
        for e in &s.entries {
            if !CUSTOM_BASE_KEYS.contains(&e.key.as_str()) && !extra.contains(&e.key.as_str()) {
                return Err(EngineError::at(
                    e.line,
                    format!(
                        "unknown key `{}` for stage {stage_name:?} (known: {}, {})",
                        e.key,
                        CUSTOM_BASE_KEYS.join(", "),
                        extra.join(", ")
                    ),
                ));
            }
        }
        let mut p = resolve_section(s, scale)?;
        if p.name.is_empty() {
            p.name = stage_name.to_string();
        }
        customs.push(p);
    }

    if graphs.is_empty() && customs.is_empty() {
        return Err(EngineError::msg(
            "scenario defines no [graph] sections and no [custom] stages; nothing to run",
        ));
    }

    Ok(Scenario {
        name,
        seed,
        graphs,
        samplers,
        experiment,
        jobs,
        customs,
    })
}
