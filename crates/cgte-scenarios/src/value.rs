//! Scenario values: the scalar/list/function data model of `.scn` files.

use crate::{EngineError, Scale};
use std::fmt;

/// A parsed `.scn` value. Functions (`scale(...)`, `logsizes(...)`) stay
/// symbolic until [`Value::resolve`] is called with the run scale.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A quoted or bare-word string.
    Str(String),
    /// An integer (decimal, hex `0x…`, underscores allowed).
    Int(i64),
    /// A float.
    Float(f64),
    /// `true` / `false`.
    Bool(bool),
    /// `[a, b, c]` — a sweep in scalar position, plain data in list
    /// position (`sizes`, `targets`).
    List(Vec<Value>),
    /// `name(arg, …)` — resolved at scale-resolution time.
    Func(String, Vec<Value>),
}

impl Value {
    /// Resolves `scale(...)` / `logsizes(...)` calls recursively, leaving
    /// only scalars and lists.
    pub fn resolve(&self, scale: Scale, line: usize) -> Result<Value, EngineError> {
        match self {
            Value::Func(name, args) => match name.as_str() {
                "scale" => {
                    if args.len() != 3 && args.len() != 4 {
                        return Err(EngineError::at(
                            line,
                            format!(
                                "scale() takes 3 or 4 arguments (quick, default, full[, huge]), got {}",
                                args.len()
                            ),
                        ));
                    }
                    let idx = match scale {
                        Scale::Quick => 0,
                        Scale::Default => 1,
                        Scale::Full => 2,
                        // With no explicit 4th argument, huge runs reuse
                        // the paper-scale value.
                        Scale::Huge => 3.min(args.len() - 1),
                    };
                    args[idx].resolve(scale, line)
                }
                "logsizes" => {
                    let args: Vec<Value> = args
                        .iter()
                        .map(|a| a.resolve(scale, line))
                        .collect::<Result<_, _>>()?;
                    if args.len() != 3 {
                        return Err(EngineError::at(
                            line,
                            format!(
                                "logsizes() takes 3 arguments (lo, hi, points), got {}",
                                args.len()
                            ),
                        ));
                    }
                    let lo = args[0].as_usize(line, "logsizes lo")?;
                    let hi = args[1].as_usize(line, "logsizes hi")?;
                    let points = args[2].as_usize(line, "logsizes points")?;
                    if lo < 1 || hi < lo || points < 2 {
                        return Err(EngineError::at(
                            line,
                            format!("logsizes({lo}, {hi}, {points}): need 1 <= lo <= hi and points >= 2"),
                        ));
                    }
                    Ok(Value::List(
                        crate::report::log_sizes(lo, hi, points)
                            .into_iter()
                            .map(|s| Value::Int(s as i64))
                            .collect(),
                    ))
                }
                other => Err(EngineError::at(
                    line,
                    format!("unknown function {other:?} (supported: scale, logsizes)"),
                )),
            },
            Value::List(items) => Ok(Value::List(
                items
                    .iter()
                    .map(|v| v.resolve(scale, line))
                    .collect::<Result<_, _>>()?,
            )),
            other => Ok(other.clone()),
        }
    }

    /// Extracts an integer, accepting `Int` only.
    pub fn as_i64(&self, line: usize, what: &str) -> Result<i64, EngineError> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(EngineError::at(
                line,
                format!("{what}: expected an integer, got {other}"),
            )),
        }
    }

    /// Extracts a non-negative integer as `usize`.
    pub fn as_usize(&self, line: usize, what: &str) -> Result<usize, EngineError> {
        let i = self.as_i64(line, what)?;
        usize::try_from(i).map_err(|_| {
            EngineError::at(
                line,
                format!("{what}: expected a non-negative integer, got {i}"),
            )
        })
    }

    /// Extracts a `u64` (seeds and seed modifiers).
    pub fn as_u64(&self, line: usize, what: &str) -> Result<u64, EngineError> {
        let i = self.as_i64(line, what)?;
        u64::try_from(i).map_err(|_| {
            EngineError::at(
                line,
                format!("{what}: expected a non-negative integer, got {i}"),
            )
        })
    }

    /// Extracts a float, accepting `Int` as well.
    pub fn as_f64(&self, line: usize, what: &str) -> Result<f64, EngineError> {
        match self {
            Value::Float(x) => Ok(*x),
            Value::Int(i) => Ok(*i as f64),
            other => Err(EngineError::at(
                line,
                format!("{what}: expected a number, got {other}"),
            )),
        }
    }

    /// Extracts a string.
    pub fn as_str(&self, line: usize, what: &str) -> Result<&str, EngineError> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(EngineError::at(
                line,
                format!("{what}: expected a string, got {other}"),
            )),
        }
    }

    /// Extracts a bool.
    pub fn as_bool(&self, line: usize, what: &str) -> Result<bool, EngineError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(EngineError::at(
                line,
                format!("{what}: expected true/false, got {other}"),
            )),
        }
    }

    /// Extracts a list of `usize` (e.g. `sizes`).
    pub fn as_usize_list(&self, line: usize, what: &str) -> Result<Vec<usize>, EngineError> {
        match self {
            Value::List(items) => items.iter().map(|v| v.as_usize(line, what)).collect(),
            other => Err(EngineError::at(
                line,
                format!("{what}: expected a list of integers, got {other}"),
            )),
        }
    }

    /// Extracts a list of strings (e.g. `targets`).
    pub fn as_str_list(&self, line: usize, what: &str) -> Result<Vec<String>, EngineError> {
        match self {
            Value::List(items) => items
                .iter()
                .map(|v| v.as_str(line, what).map(String::from))
                .collect(),
            Value::Str(s) => Ok(vec![s.clone()]),
            other => Err(EngineError::at(
                line,
                format!("{what}: expected a list of strings, got {other}"),
            )),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Func(name, args) => {
                write!(f, "{name}(")?;
                for (i, v) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
        }
    }
}
