//! A1 (paper footnote 4): the model-based star size estimator, ported
//! from the `ablation_model_based` binary. One stage invocation evaluates
//! one sampler on the shared Epinions stand-in and renders its complete
//! table.

use super::StageCtx;
use crate::report::{fmt_nrmse, log_sizes};
use crate::runner::{JobOutput, ReportSection};
use crate::{EngineError, Scale};
use cgte_core::category_size::{induced_sizes, star_sizes, StarSizeOptions};
use cgte_eval::{median, Table};
use cgte_sampling::{AnySampler, NodeSampler, RandomWalk, StarSample, UniformIndependence};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Evaluates induced / plug-in star / model-based star sizes for one
/// sampler; `sampler` parameter is `"uis"` or `"rw"`.
pub fn model_based(ctx: &StageCtx<'_>) -> Result<JobOutput, EngineError> {
    let built = ctx.graph()?;
    let g = &built.graph;
    let p = built.partition();
    let reps = ctx.usize_param("reps", 40)?;
    let sizes = match ctx.scale {
        Scale::Quick => log_sizes(100, 1000, 3),
        Scale::Default => log_sizes(200, 20_000, 5),
        Scale::Full | Scale::Huge => log_sizes(1000, 100_000, 5),
    };
    let (sampler, label) = match ctx.str_param("sampler")? {
        "uis" => (AnySampler::Uis(UniformIndependence), "UIS"),
        "rw" => (AnySampler::Rw(RandomWalk::new().burn_in(2000)), "RW"),
        other => {
            return Err(EngineError::msg(format!(
                "unknown A1 sampler {other:?} (known: uis, rw)"
            )))
        }
    };

    let truth: Vec<f64> = p.sizes().iter().map(|&s| s as f64).collect();
    let population = g.num_nodes() as f64;
    let num_c = p.num_categories();

    let mut t = Table::new(
        ["|S|", "induced", "star(plug-in k̂_A)", "star(k̂_A = k̂_V)"]
            .map(String::from)
            .to_vec(),
    );
    // sum of squared errors [estimator][size][category]
    let mut errs = vec![vec![vec![0.0f64; num_c]; sizes.len()]; 3];
    for rep in 0..reps {
        let mut rng = StdRng::seed_from_u64(ctx.seed + 1000 + rep as u64);
        let nodes = sampler.sample(g, *sizes.last().unwrap(), &mut rng);
        for (si, &s) in sizes.iter().enumerate() {
            let star = if label == "UIS" {
                StarSample::observe(g, p, &nodes[..s])
            } else {
                StarSample::observe_sampler(g, p, &nodes[..s], &sampler)
            };
            let ind = induced_sizes(&star, population).unwrap_or_else(|| vec![0.0; num_c]);
            let plug = star_sizes(&star, population, &StarSizeOptions::default());
            let model = star_sizes(
                &star,
                population,
                &StarSizeOptions {
                    model_based_mean_degree: true,
                },
            );
            for c in 0..num_c {
                errs[0][si][c] += (ind[c] - truth[c]).powi(2);
                errs[1][si][c] += (plug[c].unwrap_or(0.0) - truth[c]).powi(2);
                errs[2][si][c] += (model[c].unwrap_or(0.0) - truth[c]).powi(2);
            }
        }
    }
    for (si, &s) in sizes.iter().enumerate() {
        let mut row = vec![s.to_string()];
        for e in &errs {
            let per_cat: Vec<f64> = (0..num_c)
                .filter(|&c| truth[c] > 0.0)
                .map(|c| (e[si][c] / reps as f64).sqrt() / truth[c])
                .collect();
            row.push(fmt_nrmse(median(&per_cat).unwrap_or(f64::NAN)));
        }
        t.row(row);
    }
    Ok(JobOutput::Sections(vec![ReportSection::Table {
        name: format!("ablation_model_based_{}", label.to_lowercase()),
        heading: format!(
            "A1 ({label}): median NRMSE(|Â|) across {num_c} categories, Epinions stand-in"
        ),
        table: t,
    }]))
}
