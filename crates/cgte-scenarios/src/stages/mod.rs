//! Custom stage registry.
//!
//! Not every figure fits the declarative experiment-job model: the
//! Facebook-crawl figures (fig5–fig7, table2) evaluate pre-drawn crawl
//! datasets with bespoke protocols, and two ablations predate
//! `run_experiment`. Those live here as **stages**: named, parameterized
//! job bodies that scenarios invoke through `[custom.X]` sections. Stages
//! draw their inputs from the shared resource cache (`uses = "..."`), so a
//! suite run builds each simulation exactly once no matter how many stages
//! consume it.

mod ablation;
mod facebook;

use crate::cache::Resource;
use crate::runner::JobOutput;
use crate::value::Value;
use crate::{EngineError, Scale};

/// Execution context handed to a stage.
pub struct StageCtx<'a> {
    /// Resolved stage parameters (sweeps already applied).
    pub params: &'a [(String, Value)],
    /// The resource named by `uses`, if any.
    pub resource: Option<Resource>,
    /// Scenario base seed.
    pub seed: u64,
    /// Run scale (stages that predate the engine key sizes off it).
    pub scale: Scale,
}

impl StageCtx<'_> {
    /// A parameter value by key.
    pub fn param(&self, key: &str) -> Option<&Value> {
        self.params.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// An integer parameter with a default.
    pub fn usize_param(&self, key: &str, default: usize) -> Result<usize, EngineError> {
        match self.param(key) {
            Some(v) => v.as_usize(0, key),
            None => Ok(default),
        }
    }

    /// A float parameter with a default.
    pub fn f64_param(&self, key: &str, default: f64) -> Result<f64, EngineError> {
        match self.param(key) {
            Some(v) => v.as_f64(0, key),
            None => Ok(default),
        }
    }

    /// A required string parameter.
    pub fn str_param(&self, key: &str) -> Result<&str, EngineError> {
        self.param(key)
            .ok_or_else(|| EngineError::msg(format!("stage is missing parameter `{key}`")))?
            .as_str(0, key)
    }

    /// The stage's graph resource.
    pub fn graph(&self) -> Result<&std::sync::Arc<crate::cache::BuiltGraph>, EngineError> {
        self.resource
            .as_ref()
            .ok_or_else(|| EngineError::msg("stage needs `uses = \"<graph>\"`"))?
            .as_graph()
    }

    /// The stage's Facebook simulation resource.
    pub fn facebook(&self) -> Result<&std::sync::Arc<crate::cache::FacebookBundle>, EngineError> {
        self.resource
            .as_ref()
            .ok_or_else(|| EngineError::msg("stage needs `uses = \"<facebook sim>\"`"))?
            .as_facebook()
    }
}

/// `(name, extra parameter keys)` for every registered stage.
const STAGES: &[(&str, &[&str])] = &[
    ("graph-stats", &[]),
    ("fig5-2009", &[]),
    ("fig5-2010", &[]),
    ("fig6-eval", &["crawl", "top"]),
    ("fig7-countries", &[]),
    ("fig7-regions", &[]),
    ("fig7-colleges", &[]),
    ("table2", &[]),
    ("ablation-swrw", &["beta", "reps"]),
    ("ablation-model-based", &["sampler", "reps"]),
];

/// All registered stage names.
pub fn stage_names() -> Vec<&'static str> {
    STAGES.iter().map(|(n, _)| *n).collect()
}

/// The extra parameter keys a stage accepts (`None` = unknown stage).
pub fn stage_param_keys(name: &str) -> Option<&'static [&'static str]> {
    STAGES.iter().find(|(n, _)| *n == name).map(|(_, k)| *k)
}

/// Dispatches a stage by name.
pub fn run_stage(name: &str, ctx: &StageCtx<'_>) -> Result<JobOutput, EngineError> {
    match name {
        "graph-stats" => graph_stats(ctx),
        "fig5-2009" => facebook::fig5_2009(ctx),
        "fig5-2010" => facebook::fig5_2010(ctx),
        "fig6-eval" => facebook::fig6_eval(ctx),
        "fig7-countries" => facebook::fig7_countries(ctx),
        "fig7-regions" => facebook::fig7_regions(ctx),
        "fig7-colleges" => facebook::fig7_colleges(ctx),
        "table2" => facebook::table2(ctx),
        "ablation-swrw" => facebook::ablation_swrw(ctx),
        "ablation-model-based" => ablation::model_based(ctx),
        other => Err(EngineError::msg(format!("unknown stage {other:?}"))),
    }
}

/// Emits a graph's Table-1 statistics as raw values for a reporter
/// (formatted exactly as the legacy `table1` binary formatted its cells).
fn graph_stats(ctx: &StageCtx<'_>) -> Result<JobOutput, EngineError> {
    use cgte_graph::algorithms::DegreeStats;
    let built = ctx.graph()?;
    let g = &built.graph;
    let stats = DegreeStats::of(g);
    Ok(JobOutput::Sections(vec![
        crate::runner::ReportSection::Values(vec![
            ("nodes".into(), g.num_nodes().to_string()),
            ("edges".into(), g.num_edges().to_string()),
            ("mean_degree".into(), format!("{:.1}", g.mean_degree())),
            ("max_degree".into(), stats.max.to_string()),
            ("degree_cv".into(), format!("{:.2}", stats.cv)),
        ]),
    ]))
}
