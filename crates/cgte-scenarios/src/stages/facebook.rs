//! Stages over the Facebook-like crawl simulation (fig5–fig7, table2, and
//! the S-WRW stratification ablation). The evaluation bodies are ported
//! verbatim from the original figure binaries so that the refactored shims
//! print byte-identical tables; what changed is the input path — every
//! stage reads the simulation/crawl bundle from the shared cache instead
//! of regenerating it.

use super::StageCtx;
use crate::report::log_sizes;
use crate::runner::{JobOutput, NamedSeries, ReportSection};
use crate::{EngineError, Scale};
use cgte_core::category_size::{star_sizes, StarSizeOptions};
use cgte_core::edge_weight::{induced_weights_all, star_weights_all};
use cgte_core::{CategoryGraphEstimator, Design, SizeMethod};
use cgte_datasets::{CrawlDataset, CrawlType, FacebookSim};
use cgte_eval::{median, Table};
use cgte_graph::{CategoryGraph, CategoryId, CategoryMatrix, NodeId, Partition};
use cgte_sampling::{NodeSampler, StarSample, Swrw};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Rank positions reported in fig5's printed tables.
fn ranks(n: usize) -> Vec<usize> {
    [1usize, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 5000]
        .into_iter()
        .filter(|&r| r <= n)
        .collect()
}

fn fig5_panel(
    crawls: &[CrawlDataset],
    partition: &Partition,
    n_categories: usize,
    rank_label: &str,
    with_median: bool,
) -> Table {
    let mut per_crawl: Vec<(String, Vec<usize>)> = Vec::new();
    for ds in crawls {
        let mut counts = ds.samples_per_category(partition);
        counts.truncate(n_categories); // drop the undeclared pseudo-category
        counts.sort_unstable_by(|a, b| b.cmp(a));
        per_crawl.push((ds.name.clone(), counts));
    }
    let mut headers = vec![rank_label.to_string()];
    headers.extend(per_crawl.iter().map(|(n, _)| n.clone()));
    let mut t = Table::new(headers);
    for r in ranks(n_categories) {
        let mut row = vec![r.to_string()];
        for (_, counts) in &per_crawl {
            row.push(counts[r - 1].to_string());
        }
        t.row(row);
    }
    if with_median {
        let mut row = vec!["median".to_string()];
        for (_, counts) in &per_crawl {
            row.push(counts[counts.len() / 2].to_string());
        }
        t.row(row);
    }
    t
}

/// Fig. 5 (top): samples per regional category, 2009 crawls.
pub fn fig5_2009(ctx: &StageCtx<'_>) -> Result<JobOutput, EngineError> {
    let bundle = ctx.facebook()?;
    let t = fig5_panel(
        &bundle.c09,
        &bundle.sim.regions,
        bundle.sim.config().num_regions,
        "region rank",
        false,
    );
    Ok(JobOutput::Sections(vec![ReportSection::Table {
        name: "fig5_2009".into(),
        heading: "Fig. 5 (top): #samples per regional category, 2009 crawls".into(),
        table: t,
    }]))
}

/// Fig. 5 (bottom): samples per college, 2010 crawls.
pub fn fig5_2010(ctx: &StageCtx<'_>) -> Result<JobOutput, EngineError> {
    let bundle = ctx.facebook()?;
    let t = fig5_panel(
        &bundle.c10,
        &bundle.sim.colleges,
        bundle.sim.config().num_colleges,
        "college rank",
        true,
    );
    Ok(JobOutput::Sections(vec![ReportSection::Table {
        name: "fig5_2010".into(),
        heading: "Fig. 5 (bottom): #samples per college, 2010 crawls".into(),
        table: t,
    }]))
}

// ---------------------------------------------------------------------------
// fig6: per-crawl estimator evaluation

type Pair = (CategoryId, CategoryId);

/// Per-walk, per-|S| estimates for one crawl dataset.
struct CrawlEstimates {
    /// `sizes_ind[s][walk][cat]`
    sizes_ind: Vec<Vec<Vec<f64>>>,
    sizes_star: Vec<Vec<Vec<f64>>>,
    /// `weights_ind[s][walk][pair]` aligned with the tracked pair list.
    weights_ind: Vec<Vec<Vec<f64>>>,
    weights_star: Vec<Vec<Vec<f64>>>,
}

fn evaluate_crawl(
    sim: &FacebookSim,
    ds: &CrawlDataset,
    p: &Partition,
    pairs: &[Pair],
    sizes: &[usize],
) -> CrawlEstimates {
    use cgte_core::category_size::induced_sizes;
    let g = &sim.graph;
    let population = g.num_nodes() as f64;
    let num_c = p.num_categories();
    let uniform = matches!(ds.crawl, CrawlType::Uis | CrawlType::Mhrw);
    let sampler = sim.sampler_for(ds.crawl);
    let opts = StarSizeOptions::default();
    let mut out = CrawlEstimates {
        sizes_ind: vec![Vec::new(); sizes.len()],
        sizes_star: vec![Vec::new(); sizes.len()],
        weights_ind: vec![Vec::new(); sizes.len()],
        weights_star: vec![Vec::new(); sizes.len()],
    };
    for walk in ds.walks.walks() {
        for (si, &s) in sizes.iter().enumerate() {
            let prefix = &walk[..s.min(walk.len())];
            let star = if uniform {
                StarSample::observe(g, p, prefix)
            } else {
                StarSample::observe_sampler(g, p, prefix, &sampler)
            };
            let ind = star.to_induced(g, p);
            let s_ind = induced_sizes(&ind, population).unwrap_or_else(|| vec![0.0; num_c]);
            let s_star_opt = star_sizes(&star, population, &opts);
            let plug: Vec<f64> = s_star_opt
                .iter()
                .zip(&s_ind)
                .map(|(st, &i)| st.unwrap_or(i))
                .collect();
            let s_star: Vec<f64> = s_star_opt.into_iter().map(|x| x.unwrap_or(0.0)).collect();
            let w_ind = induced_weights_all(&ind);
            let w_star = star_weights_all(&star, &plug);
            out.sizes_ind[si].push(s_ind);
            out.sizes_star[si].push(s_star);
            out.weights_ind[si].push(pairs.iter().map(|&(a, b)| w_ind.get(a, b)).collect());
            out.weights_star[si].push(pairs.iter().map(|&(a, b)| w_star.get(a, b)).collect());
        }
    }
    out
}

/// Median-across-targets NRMSE for one estimate tensor at one |S| index;
/// `paper_style` replaces the truth with the all-walk mean at the largest
/// |S| (the paper's §7.2 protocol for unknown ground truth).
fn median_nrmse(
    per_size: &[Vec<Vec<f64>>],
    si: usize,
    targets: &[usize],
    truth: &[f64],
    paper_style: bool,
) -> f64 {
    let last = per_size.len() - 1;
    let vals: Vec<f64> = targets
        .iter()
        .filter_map(|&t| {
            let tr = if paper_style {
                let walks = &per_size[last];
                walks.iter().map(|w| w[t]).sum::<f64>() / walks.len() as f64
            } else {
                truth[t]
            };
            if tr == 0.0 || !tr.is_finite() {
                return None;
            }
            let ests: Vec<f64> = per_size[si].iter().map(|w| w[t]).collect();
            let mse = ests.iter().map(|e| (e - tr).powi(2)).sum::<f64>() / ests.len() as f64;
            Some(mse.sqrt() / tr.abs())
        })
        .filter(|x| x.is_finite())
        .collect();
    median(&vals).unwrap_or(f64::NAN)
}

/// Evaluates one crawl dataset for fig6: median-NRMSE columns per
/// (panel, truth-style, estimator), plus the evaluated sizes and the
/// tracked pair count as metadata columns.
pub fn fig6_eval(ctx: &StageCtx<'_>) -> Result<JobOutput, EngineError> {
    let bundle = ctx.facebook()?;
    let sim = &bundle.sim;
    let crawl = ctx.str_param("crawl")?;
    let top = ctx.usize_param("top", 100)?;
    let (_, p09, _, p10) = bundle
        .crawl_params
        .ok_or_else(|| EngineError::msg("fig6-eval needs a simulation with crawls = true"))?;

    let (ds, is09) = bundle
        .c09
        .iter()
        .find(|d| d.name == crawl)
        .map(|d| (d, true))
        .or_else(|| {
            bundle
                .c10
                .iter()
                .find(|d| d.name == crawl)
                .map(|d| (d, false))
        })
        .ok_or_else(|| EngineError::msg(format!("unknown crawl dataset {crawl:?}")))?;

    let (partition, exact, n_categories, pair_cap) = if is09 {
        (
            &sim.regions,
            bundle.exact_regions(),
            sim.config().num_regions,
            15usize,
        )
    } else {
        (
            &sim.colleges,
            bundle.exact_colleges(),
            sim.config().num_colleges,
            12usize,
        )
    };
    let per_walk = if is09 { p09 } else { p10 };
    let sizes = log_sizes(per_walk / 10, per_walk, 4);

    // Targets: top categories by true size; weight pairs among the first
    // `pair_cap` categories (sizes are Zipf-ranked).
    let top_targets: Vec<usize> = (0..top.min(n_categories)).collect();
    let mut pairs: Vec<Pair> = Vec::new();
    for a in 0..pair_cap.min(n_categories) as u32 {
        for b in (a + 1)..pair_cap.min(n_categories) as u32 {
            if exact.weight(a, b) > 0.0 {
                pairs.push((a, b));
            }
        }
    }
    let truth_sizes: Vec<f64> = (0..partition.num_categories())
        .map(|c| partition.category_size(c as u32) as f64)
        .collect();
    let truth_pairs: Vec<f64> = pairs.iter().map(|&(a, b)| exact.weight(a, b)).collect();

    let est = evaluate_crawl(sim, ds, partition, &pairs, &sizes);
    let pair_idx: Vec<usize> = (0..pairs.len()).collect();

    let mut cols = vec![
        NamedSeries {
            label: "sizes".into(),
            values: sizes.iter().map(|&s| s as f64).collect(),
        },
        NamedSeries {
            label: "npairs".into(),
            values: vec![pairs.len() as f64],
        },
    ];
    for (panel, tensor_ind, tensor_star, targets, truth) in [
        (
            "size",
            &est.sizes_ind,
            &est.sizes_star,
            &top_targets,
            &truth_sizes,
        ),
        (
            "weight",
            &est.weights_ind,
            &est.weights_star,
            &pair_idx,
            &truth_pairs,
        ),
    ] {
        for (style, paper) in [("true", false), ("paper", true)] {
            for (est_name, tensor) in [("induced", tensor_ind), ("star", tensor_star)] {
                cols.push(NamedSeries {
                    label: format!("{panel}/{style}/{est_name}"),
                    values: (0..sizes.len())
                        .map(|si| median_nrmse(tensor, si, targets, truth, paper))
                        .collect(),
                });
            }
        }
    }
    Ok(JobOutput::Columns(cols))
}

// ---------------------------------------------------------------------------
// fig7: estimated category graph exports

/// Averages several estimated category graphs edge-wise and size-wise
/// (§7.3.1: "for every edge, we take the average of the three estimates").
fn average_graphs(graphs: &[CategoryGraph]) -> CategoryGraph {
    assert!(!graphs.is_empty());
    let num_c = graphs[0].num_categories();
    let mut sizes = vec![0.0; num_c];
    for g in graphs {
        for (c, size) in sizes.iter_mut().enumerate() {
            *size += g.size(c as CategoryId) / graphs.len() as f64;
        }
    }
    let mut weights = CategoryMatrix::zeros(num_c);
    for g in graphs {
        for e in g.edges() {
            weights.add(e.a, e.b, e.weight / graphs.len() as f64);
        }
    }
    CategoryGraph::from_weights(sizes, weights)
}

/// Estimates one category graph from every walk of a crawl combined.
fn estimate_from_crawl(
    sim: &FacebookSim,
    ds: &CrawlDataset,
    p: &Partition,
    size_method: SizeMethod,
) -> CategoryGraph {
    let nodes = ds.walks.combined();
    let uniform = matches!(ds.crawl, CrawlType::Uis | CrawlType::Mhrw);
    let star = if uniform {
        StarSample::observe(&sim.graph, p, &nodes)
    } else {
        StarSample::observe_sampler(&sim.graph, p, &nodes, &sim.sampler_for(ds.crawl))
    };
    CategoryGraphEstimator::new(if uniform {
        Design::Uniform
    } else {
        Design::Weighted
    })
    .size_method(size_method)
    .estimate_star(&star, sim.graph.num_nodes() as f64)
}

/// Renders one fig7 export exactly like the legacy `export()` helper: the
/// heading + strongest-links report on stdout, the DOT/JSON/GraphML/CSV
/// dumps as file sections.
fn export_sections(
    name: &str,
    heading: &str,
    cg: &CategoryGraph,
    labels: Vec<String>,
) -> Vec<ReportSection> {
    let opts = cgte_viz::ExportOptions {
        labels,
        top_k: 200,
        ..Default::default()
    };
    let mut sections = vec![ReportSection::Text(format!(
        "\n## {heading}\n\n{}",
        cgte_viz::top_edges_report(cg, &opts, 15)
    ))];
    for (ext, content) in [
        ("dot", cgte_viz::to_dot(cg, &opts)),
        ("json", cgte_viz::to_json(cg, &opts)),
        ("graphml", cgte_viz::to_graphml(cg, &opts)),
        ("csv", cgte_viz::to_csv_edges(cg, &opts)),
    ] {
        sections.push(ReportSection::File {
            name: name.to_string(),
            ext: ext.to_string(),
            content,
        });
    }
    sections
}

/// Fig. 7(a): country-to-country graph averaged over the 2009 crawls,
/// plus the top-10 sanity line.
pub fn fig7_countries(ctx: &StageCtx<'_>) -> Result<JobOutput, EngineError> {
    let bundle = ctx.facebook()?;
    let sim = &bundle.sim;
    let countries = sim.countries();
    let nc = sim.config().num_countries;
    let estimates: Vec<CategoryGraph> = bundle
        .c09
        .iter()
        .map(|ds| estimate_from_crawl(sim, ds, &countries, SizeMethod::Induced))
        .collect();
    let avg = average_graphs(&estimates);
    let mut labels: Vec<String> = (0..nc).map(|c| format!("country-{c:02}")).collect();
    labels.push("undeclared".into());
    let mut sections = export_sections(
        "fig7a_countries",
        "Fig. 7(a): country-to-country friendship graph (avg of UIS/MHRW/RW estimates)",
        &avg,
        labels,
    );
    // Sanity line: compare against the exact country graph.
    let exact = CategoryGraph::exact(&sim.graph, &countries);
    let top_est: Vec<_> = avg
        .edges_by_weight()
        .into_iter()
        .take(10)
        .map(|e| (e.a, e.b))
        .collect();
    let top_true: Vec<_> = exact
        .edges_by_weight()
        .into_iter()
        .take(10)
        .map(|e| (e.a, e.b))
        .collect();
    let overlap = top_est.iter().filter(|p| top_true.contains(p)).count();
    sections.push(ReportSection::Text(format!(
        "\nsanity: {overlap}/10 of the estimated top-10 country links are in the true top-10\n"
    )));
    Ok(JobOutput::Sections(sections))
}

/// Fig. 7(b): the intra-country region graph of the largest country.
pub fn fig7_regions(ctx: &StageCtx<'_>) -> Result<JobOutput, EngineError> {
    let bundle = ctx.facebook()?;
    let sim = &bundle.sim;
    let n_regions = sim.config().num_regions;
    let big_country: CategoryId = 0;
    let mut map: Vec<CategoryId> = Vec::with_capacity(n_regions + 1);
    let mut kept = 0u32;
    for r in 0..n_regions {
        if sim.region_to_country[r] == big_country {
            map.push(kept);
            kept += 1;
        } else {
            map.push(u32::MAX); // placeholder, fixed below
        }
    }
    map.push(u32::MAX);
    let elsewhere = kept;
    for m in map.iter_mut() {
        if *m == u32::MAX {
            *m = elsewhere;
        }
    }
    let na_partition = sim
        .regions
        .merge(&map, (kept + 1) as usize)
        .expect("valid merge map");
    let estimates: Vec<CategoryGraph> = bundle
        .c09
        .iter()
        .map(|ds| estimate_from_crawl(sim, ds, &na_partition, SizeMethod::Induced))
        .collect();
    let avg = average_graphs(&estimates);
    let mut labels: Vec<String> = (0..kept).map(|r| format!("region-{r:02}")).collect();
    labels.push("elsewhere".into());
    Ok(JobOutput::Sections(export_sections(
        "fig7b_regions",
        &format!(
            "Fig. 7(b): intra-country region graph ({kept} regions of country-00 + elsewhere)"
        ),
        &avg,
        labels,
    )))
}

/// Fig. 7(c): the college-to-college graph from the S-WRW 2010 crawl.
pub fn fig7_colleges(ctx: &StageCtx<'_>) -> Result<JobOutput, EngineError> {
    let bundle = ctx.facebook()?;
    let sim = &bundle.sim;
    let swrw10 = bundle
        .c10
        .iter()
        .find(|d| d.crawl == CrawlType::Swrw)
        .ok_or_else(|| EngineError::msg("no S-WRW dataset in the 2010 crawls"))?;
    let cg = estimate_from_crawl(
        sim,
        swrw10,
        &sim.colleges,
        SizeMethod::Star(StarSizeOptions::default()),
    );
    let ncol = sim.config().num_colleges;
    let mut labels: Vec<String> = (0..ncol).map(|c| format!("college-{c:03}")).collect();
    labels.push("no-college".into());
    Ok(JobOutput::Sections(export_sections(
        "fig7c_colleges",
        "Fig. 7(c): college-to-college friendship graph (S-WRW10, star sizes)",
        &cg,
        labels,
    )))
}

// ---------------------------------------------------------------------------
// table2

/// Table 2: crawl dataset statistics.
pub fn table2(ctx: &StageCtx<'_>) -> Result<JobOutput, EngineError> {
    let bundle = ctx.facebook()?;
    let sim = &bundle.sim;
    let n_regions = sim.config().num_regions;
    let n_colleges = sim.config().num_colleges;
    let region_pop: u64 = (0..n_regions as u32)
        .map(|r| sim.regions.category_size(r))
        .sum();
    let college_pop: u64 = (0..n_colleges as u32)
        .map(|c| sim.colleges.category_size(c))
        .sum();
    let n = sim.graph.num_nodes() as f64;

    let mut t = Table::new(
        [
            "Dataset",
            "Studied categories",
            "Crawl type",
            "% categ. samples",
            "# total samples",
        ]
        .map(String::from)
        .to_vec(),
    );
    for ds in &bundle.c09 {
        let frac = ds.studied_fraction(&sim.regions, |c| (c as usize) < n_regions);
        t.row(vec![
            "2009".into(),
            format!(
                "Regional ({n_regions}) — {:.0}% of population",
                100.0 * region_pop as f64 / n
            ),
            ds.name.clone(),
            format!("{:.0}%", 100.0 * frac),
            format!("{}x{}", ds.walks.num_walks(), ds.walks.walk(0).len()),
        ]);
    }
    for ds in &bundle.c10 {
        let frac = ds.studied_fraction(&sim.colleges, |c| (c as usize) < n_colleges);
        t.row(vec![
            "2010".into(),
            format!(
                "Colleges ({n_colleges}) — {:.1}% of population",
                100.0 * college_pop as f64 / n
            ),
            ds.name.clone(),
            format!("{:.0}%", 100.0 * frac),
            format!("{}x{}", ds.walks.num_walks(), ds.walks.walk(0).len()),
        ]);
    }
    Ok(JobOutput::Sections(vec![ReportSection::Table {
        name: "table2".into(),
        heading: "Table 2: Facebook crawl datasets (simulated)".into(),
        table: t,
    }]))
}

// ---------------------------------------------------------------------------
// A3: S-WRW stratification ablation

/// One β column of the A3 sweep: median college-size NRMSE (star sizes)
/// under `γ_C = vol(C)^(−β)` stratification.
pub fn ablation_swrw(ctx: &StageCtx<'_>) -> Result<JobOutput, EngineError> {
    let bundle = ctx.facebook()?;
    let sim = &bundle.sim;
    let beta = ctx.f64_param("beta", 1.0)?;
    let reps = ctx.usize_param("reps", 10)?;
    let sample_sizes = match ctx.scale {
        Scale::Quick => log_sizes(300, 1500, 2),
        _ => log_sizes(1000, 20_000, 3),
    };
    let p = &sim.colleges;
    let n_colleges = sim.config().num_colleges;
    let population = sim.graph.num_nodes() as f64;
    let truth: Vec<f64> = p.sizes().iter().map(|&s| s as f64).collect();

    // Per-category volumes, for γ_C = vol(C)^(-β).
    let mut vol = vec![0f64; p.num_categories()];
    for v in 0..sim.graph.num_nodes() {
        vol[p.category_of(v as NodeId) as usize] += sim.graph.degree(v as NodeId) as f64;
    }
    let colleges: Vec<usize> = (0..n_colleges).collect();
    let gamma: Vec<f64> = vol
        .iter()
        .map(|&x| if x > 0.0 { x.powf(-beta) } else { 0.0 })
        .collect();
    let swrw = Swrw::new(p, gamma)
        .ok_or_else(|| EngineError::msg("invalid S-WRW weights"))?
        .burn_in(1000);
    let mut col = Vec::new();
    for &s in &sample_sizes {
        let mut errs = vec![0.0f64; p.num_categories()];
        for rep in 0..reps {
            let mut rng = StdRng::seed_from_u64(ctx.seed + 31 + rep as u64);
            let nodes = swrw.sample(&sim.graph, s, &mut rng);
            let star = StarSample::observe_sampler(&sim.graph, p, &nodes, &swrw);
            let est = star_sizes(&star, population, &StarSizeOptions::default());
            for &c in &colleges {
                errs[c] += (est[c].unwrap_or(0.0) - truth[c]).powi(2);
            }
        }
        let per_cat: Vec<f64> = colleges
            .iter()
            .filter(|&&c| truth[c] > 0.0)
            .map(|&c| (errs[c] / reps as f64).sqrt() / truth[c])
            .collect();
        col.push(median(&per_cat).unwrap_or(f64::NAN));
    }
    Ok(JobOutput::Columns(vec![
        NamedSeries {
            label: "ncolleges".into(),
            values: vec![n_colleges as f64],
        },
        NamedSeries {
            label: format!("β={beta}"),
            values: col,
        },
    ]))
}
