//! The parallel job scheduler: topological ordering over the plan's
//! dependency DAG, `--threads`-bounded workers fed through `crossbeam`
//! channels, streamed progress, and artifact/manifest updates after every
//! completion (so an interrupted run can `--resume`).

use crate::artifact::RunDir;
use crate::cache::ResourceCache;
use crate::plan::{JobKind, Plan};
use crate::runner::{execute_job, JobOutput};
use crate::{EngineError, RunOptions};
use crossbeam::channel;
use std::collections::BTreeMap;
use std::time::Instant;

/// Runs every job of the plan, in dependency order, on a pool of worker
/// threads. Returns the outputs keyed by job id.
///
/// With `opts.out_dir` set, every completed job is persisted (CSV + JSON)
/// and recorded in the run manifest; with `opts.resume` additionally set,
/// jobs already recorded as complete are loaded from their artifacts
/// instead of re-executed.
pub fn run_plan(
    plan: &Plan,
    cache: &ResourceCache,
    opts: &RunOptions,
    source: &str,
) -> Result<BTreeMap<String, JobOutput>, EngineError> {
    let n = plan.jobs.len();
    let mut outputs: BTreeMap<String, JobOutput> = BTreeMap::new();

    // Resume: load completed outputs from the run directory.
    let mut run_dir = match &opts.out_dir {
        Some(dir) => Some(RunDir::open(dir, &plan.scenario.name, source, opts)?),
        None => None,
    };
    let mut completed: Vec<bool> = vec![false; n];
    if opts.resume {
        if let Some(rd) = &run_dir {
            for (i, job) in plan.jobs.iter().enumerate() {
                if matches!(job.kind, JobKind::Build { .. }) {
                    continue; // build jobs are cheap state, always re-runnable
                }
                if let Some(out) = rd.load_completed(&job.id)? {
                    outputs.insert(job.id.clone(), out);
                    completed[i] = true;
                }
            }
        }
    }

    // A build job is unnecessary when every dependent is already complete.
    for (i, job) in plan.jobs.iter().enumerate() {
        if matches!(job.kind, JobKind::Build { .. }) {
            let needed = plan
                .jobs
                .iter()
                .enumerate()
                .any(|(j, other)| other.deps.contains(&i) && !completed[j]);
            if !needed && plan.jobs.iter().any(|o| o.deps.contains(&i)) {
                completed[i] = true;
            }
        }
    }

    // Dependency bookkeeping.
    let mut indegree: Vec<usize> = plan
        .jobs
        .iter()
        .map(|j| j.deps.iter().filter(|&&d| !completed[d]).count())
        .collect();
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, job) in plan.jobs.iter().enumerate() {
        for &d in &job.deps {
            if d >= n {
                return Err(EngineError::msg(format!(
                    "job {} depends on out-of-range job index {d}",
                    job.id
                )));
            }
            dependents[d].push(i);
        }
    }

    let total_runnable = completed.iter().filter(|&&c| !c).count();
    let workers = if opts.threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        opts.threads
    }
    .min(total_runnable.max(1));

    if !opts.quiet && total_runnable > 0 {
        eprintln!(
            "{}: scheduling {total_runnable} job(s) on {workers} worker(s){}",
            plan.scenario.name,
            if n - total_runnable > 0 {
                format!(" ({} resumed)", n - total_runnable)
            } else {
                String::new()
            }
        );
    }

    // The run span is the parent of every job span; its id crosses the
    // worker-pool boundary explicitly (TLS span context does not follow
    // work onto other threads).
    let mut run_span = cgte_obs::span(cgte_obs::LEVEL_COARSE, "scenario.run");
    run_span.field_str("scenario", &plan.scenario.name);
    run_span.field_u64("jobs", n as u64);
    run_span.field_u64("workers", workers as u64);
    let run_span_id = run_span.id();

    let (ready_tx, ready_rx) = channel::unbounded::<(usize, Instant)>();
    let (done_tx, done_rx) = channel::unbounded::<(usize, Result<JobOutput, EngineError>, u128)>();

    let mut dispatched = 0usize;
    for i in 0..n {
        if !completed[i] && indegree[i] == 0 {
            ready_tx
                .send((i, Instant::now()))
                .expect("ready channel open");
            dispatched += 1;
        }
    }

    let mut first_error: Option<EngineError> = None;
    let mut finished = 0usize;

    crossbeam::scope(|scope| {
        for _ in 0..workers {
            let ready_rx = ready_rx.clone();
            let done_tx = done_tx.clone();
            scope.spawn(move |_| {
                while let Ok((i, enqueued)) = ready_rx.recv() {
                    let start = Instant::now();
                    let result = {
                        let mut span = cgte_obs::span_with_parent(
                            cgte_obs::LEVEL_COARSE,
                            "scenario.job",
                            run_span_id,
                        );
                        span.field_str("job", &plan.jobs[i].id);
                        span.field_str(
                            "kind",
                            if matches!(plan.jobs[i].kind, JobKind::Build { .. }) {
                                "build"
                            } else {
                                "run"
                            },
                        );
                        span.field_u64("queue_us", enqueued.elapsed().as_micros() as u64);
                        execute_job(&plan.jobs[i], plan, cache, opts)
                    };
                    let ms = start.elapsed().as_millis();
                    if done_tx.send((i, result, ms)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(done_tx);

        let mut in_flight = dispatched;
        while finished < total_runnable {
            if in_flight == 0 {
                // No runnable work left but jobs remain: the scenario's
                // dependency graph has a cycle (or an upstream failure
                // stranded dependents).
                if first_error.is_none() {
                    first_error = Some(EngineError::msg(
                        "scheduler stalled: dependency cycle in the job graph",
                    ));
                }
                break;
            }
            let Ok((i, result, ms)) = done_rx.recv() else {
                break;
            };
            in_flight -= 1;
            finished += 1;
            match result {
                Ok(out) => {
                    let job = &plan.jobs[i];
                    if !opts.quiet {
                        let stats = cache.stats();
                        eprintln!(
                            "[{finished}/{total_runnable}] {} ({ms} ms, cache {}b/{}l/{}h)",
                            job.id, stats.builds, stats.loads, stats.hits
                        );
                    }
                    if let Some(rd) = &mut run_dir {
                        if !matches!(job.kind, JobKind::Build { .. }) {
                            if let Err(e) = rd.record(&job.id, &out) {
                                if first_error.is_none() {
                                    first_error = Some(e);
                                }
                            }
                        }
                    }
                    outputs.insert(job.id.clone(), out);
                    completed[i] = true;
                    for &dep in &dependents[i] {
                        indegree[dep] -= 1;
                        if indegree[dep] == 0
                            && !completed[dep]
                            && first_error.is_none()
                            && ready_tx.send((dep, Instant::now())).is_ok()
                        {
                            in_flight += 1;
                        }
                    }
                }
                Err(e) => {
                    if !opts.quiet {
                        eprintln!(
                            "[{finished}/{total_runnable}] {} FAILED: {e}",
                            plan.jobs[i].id
                        );
                    }
                    if first_error.is_none() {
                        first_error = Some(EngineError::msg(format!(
                            "job {} failed: {e}",
                            plan.jobs[i].id
                        )));
                    }
                }
            }
        }
        drop(ready_tx);
    })
    .map_err(|_| EngineError::msg("scheduler worker panicked"))?;

    match first_error {
        Some(e) => Err(e),
        None => Ok(outputs),
    }
}
