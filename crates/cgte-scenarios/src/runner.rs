//! Job execution: the bridge from the declarative plan to the evaluation
//! harness, plus the serializable job-output model.

use crate::cache::{BuiltGraph, ResourceCache};
use crate::plan::{BurnIn, DesignChoice, Job, JobKind, Plan, ResolvedSampler, SamplerKind};
use crate::{EngineError, RunOptions};
use cgte_core::Design;
use cgte_eval::{run_experiment, EstimatorKind, ExperimentConfig, Table, Target};
use cgte_sampling::{AnySampler, MetropolisHastingsWalk, RandomWalk, Swrw, UniformIndependence};

/// Summary statistics of the graph a job ran on (reporters use these for
/// headings without re-touching the graph on `--resume`).
#[derive(Debug, Clone, PartialEq)]
pub struct GraphInfo {
    /// Node count.
    pub nodes: usize,
    /// Edge count.
    pub edges: usize,
    /// Mean degree.
    pub mean_degree: f64,
    /// Partition category count.
    pub num_categories: usize,
}

/// The serialized form of an [`cgte_eval::ExperimentResult`].
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// Evaluated sample sizes.
    pub sizes: Vec<usize>,
    /// `(estimator, target, truth, NRMSE series)` per tracked combination.
    pub entries: Vec<(EstimatorKind, Target, f64, Vec<f64>)>,
    /// Statistics of the underlying graph.
    pub graph: GraphInfo,
}

impl ExperimentOutput {
    /// Rebuilds the full result type for reporter post-processing.
    pub fn to_result(&self) -> cgte_eval::ExperimentResult {
        cgte_eval::ExperimentResult::from_parts(self.sizes.clone(), self.entries.iter().cloned())
    }
}

/// One labelled numeric series (custom stages that produce table columns).
#[derive(Debug, Clone, PartialEq)]
pub struct NamedSeries {
    /// Column label.
    pub label: String,
    /// Values.
    pub values: Vec<f64>,
}

/// A renderable piece of a custom stage's report.
#[derive(Debug, Clone)]
pub enum ReportSection {
    /// A named, headed table (rendered exactly like the legacy binaries).
    Table {
        /// CSV artifact base name.
        name: String,
        /// Printed heading.
        heading: String,
        /// The table.
        table: Table,
    },
    /// A verbatim stdout block (printed with a single trailing newline).
    Text(String),
    /// A file exported next to the CSVs (fig7's DOT/JSON/GraphML dumps).
    File {
        /// Base name.
        name: String,
        /// Extension.
        ext: String,
        /// Contents.
        content: String,
    },
    /// Raw key/value pairs consumed by a reporter (never printed).
    Values(Vec<(String, String)>),
}

/// What a finished job hands to reporters and the artifact layer.
#[derive(Debug, Clone)]
pub enum JobOutput {
    /// Build jobs produce no output (their effect is the warm cache).
    None,
    /// A full NRMSE experiment.
    Experiment(ExperimentOutput),
    /// Labelled numeric columns.
    Columns(Vec<NamedSeries>),
    /// Pre-rendered report sections.
    Sections(Vec<ReportSection>),
}

/// Resolves the symbolic target specs of a job against a built graph.
///
/// Supported forms: `size:all`, `size:last`, `size:last-N`, `size:N`,
/// `weight:all`, `weight:spectrum`, `weight:qNN`, `weight:A-B`.
pub fn resolve_targets(
    specs: &[String],
    built: &BuiltGraph,
    max_weight_targets: usize,
) -> Result<Vec<Target>, EngineError> {
    let ncat = built.partition().num_categories() as u32;
    let mut out = Vec::new();
    for spec in specs {
        let (kind, arg) = spec.split_once(':').ok_or_else(|| {
            EngineError::msg(format!("malformed target {spec:?} (expected kind:arg)"))
        })?;
        match kind {
            "size" => {
                if arg == "all" {
                    out.extend((0..ncat).map(Target::Size));
                } else if arg == "last" {
                    out.push(Target::Size(ncat.saturating_sub(1)));
                } else if let Some(n) = arg.strip_prefix("last-") {
                    let n: u32 = n
                        .parse()
                        .map_err(|_| EngineError::msg(format!("malformed target {spec:?}")))?;
                    out.push(Target::Size(ncat.saturating_sub(1).saturating_sub(n)));
                } else {
                    let c: u32 = arg
                        .parse()
                        .map_err(|_| EngineError::msg(format!("malformed target {spec:?}")))?;
                    out.push(Target::Size(c));
                }
            }
            "weight" => {
                let exact = built.exact();
                if arg == "all" {
                    for a in 0..ncat {
                        for b in (a + 1)..ncat {
                            if exact.weight(a, b) > 0.0 {
                                out.push(Target::Weight(a, b));
                            }
                        }
                    }
                } else if arg == "spectrum" {
                    let mut edges = exact.edges_by_weight();
                    edges.retain(|e| e.weight > 0.0);
                    if !edges.is_empty() {
                        let cap = if max_weight_targets == 0 {
                            edges.len()
                        } else {
                            max_weight_targets
                        };
                        let stride = (edges.len() / cap).max(1);
                        out.extend(
                            edges
                                .iter()
                                .step_by(stride)
                                .take(cap)
                                .map(|e| Target::Weight(e.a, e.b)),
                        );
                    }
                } else if let Some(q) = arg.strip_prefix('q') {
                    let q: f64 = q
                        .parse()
                        .map_err(|_| EngineError::msg(format!("malformed target {spec:?}")))?;
                    let e = exact
                        .weight_quantile_edge(q / 100.0)
                        .ok_or_else(|| EngineError::msg("graph has no category edges"))?;
                    out.push(Target::Weight(e.a, e.b));
                } else {
                    let (a, b) = arg
                        .split_once('-')
                        .ok_or_else(|| EngineError::msg(format!("malformed target {spec:?}")))?;
                    let a: u32 = a
                        .parse()
                        .map_err(|_| EngineError::msg(format!("malformed target {spec:?}")))?;
                    let b: u32 = b
                        .parse()
                        .map_err(|_| EngineError::msg(format!("malformed target {spec:?}")))?;
                    out.push(Target::Weight(a, b));
                }
            }
            other => {
                return Err(EngineError::msg(format!(
                    "unknown target kind {other:?} in {spec:?} (known: size, weight)"
                )))
            }
        }
    }
    Ok(out)
}

/// Builds the concrete sampler for a job (burn-in resolved against the
/// largest sample size, as the figure binaries did).
pub fn build_sampler(
    s: &ResolvedSampler,
    built: &BuiltGraph,
    max_size: usize,
) -> Result<AnySampler, EngineError> {
    let burn = match s.burn_in {
        BurnIn::Fixed(b) => b,
        BurnIn::Div(d) => max_size / d.max(1),
    };
    Ok(match s.kind {
        SamplerKind::Uis => AnySampler::Uis(UniformIndependence),
        SamplerKind::Rw => AnySampler::Rw(RandomWalk::new().burn_in(burn).thinning(s.thinning)),
        SamplerKind::Mhrw => AnySampler::Mhrw(
            MetropolisHastingsWalk::new()
                .burn_in(burn)
                .thinning(s.thinning),
        ),
        SamplerKind::Swrw => AnySampler::Swrw(
            Swrw::equal_category_target(&built.graph, built.partition())
                .ok_or_else(|| EngineError::msg("cannot build S-WRW (empty partition?)"))?
                .burn_in(burn)
                .thinning(s.thinning),
        ),
    })
}

/// Executes one job against the shared cache.
pub fn execute_job(
    job: &Job,
    plan: &Plan,
    cache: &ResourceCache,
    opts: &RunOptions,
) -> Result<JobOutput, EngineError> {
    match &job.kind {
        JobKind::Build { key } => {
            let spec = plan
                .graphs
                .get(key)
                .ok_or_else(|| EngineError::msg(format!("unknown graph key {key:?}")))?;
            cache.resource_threads(spec, opts.threads)?;
            Ok(JobOutput::None)
        }
        JobKind::Experiment {
            graph_key,
            sampler,
            exp,
        } => {
            let spec = plan
                .graphs
                .get(graph_key)
                .ok_or_else(|| EngineError::msg(format!("unknown graph key {graph_key:?}")))?;
            let built = cache.resource_threads(spec, opts.threads)?;
            let built = built.as_graph()?;
            let targets = resolve_targets(&exp.targets, built, exp.max_weight_targets)?;
            if targets.is_empty() {
                return Err(EngineError::msg(format!(
                    "job {} resolves to zero targets",
                    job.id
                )));
            }
            let max_size = *exp
                .sizes
                .iter()
                .max()
                .ok_or_else(|| EngineError::msg(format!("job {} has no sizes", job.id)))?;
            let any = build_sampler(sampler, built, max_size)?;
            let design = match exp.design {
                DesignChoice::Uniform => Design::Uniform,
                DesignChoice::Weighted => Design::Weighted,
                DesignChoice::Auto => match sampler.kind {
                    SamplerKind::Uis => Design::Uniform,
                    _ => Design::Weighted,
                },
            };
            let threads = if exp.threads == 0 {
                opts.threads
            } else {
                exp.threads
            };
            let cfg = ExperimentConfig::new(exp.sizes.clone(), exp.replications)
                .seed(exp.seed)
                .design(design)
                .threads(threads);
            let res = run_experiment(&built.graph, built.partition(), &any, &targets, &cfg);
            Ok(JobOutput::Experiment(ExperimentOutput {
                sizes: exp.sizes.clone(),
                entries: res.entries(),
                graph: GraphInfo {
                    nodes: built.graph.num_nodes(),
                    edges: built.graph.num_edges(),
                    mean_degree: built.graph.mean_degree(),
                    num_categories: built.partition().num_categories(),
                },
            }))
        }
        JobKind::Custom {
            stage,
            params,
            uses,
            seed,
        } => {
            let resource = match uses {
                Some(key) => {
                    let spec = plan
                        .graphs
                        .get(key)
                        .ok_or_else(|| EngineError::msg(format!("unknown graph key {key:?}")))?;
                    Some(cache.resource_threads(spec, opts.threads)?)
                }
                None => None,
            };
            crate::stages::run_stage(
                stage,
                &crate::stages::StageCtx {
                    params,
                    resource,
                    seed: *seed,
                    scale: opts.scale,
                },
            )
        }
    }
}
