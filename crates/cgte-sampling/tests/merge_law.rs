//! Property tests for the mergeable observation core.
//!
//! The law under test: `observe(a); merge(observe(b)) ≡ observe(a ++ b)`
//! **bit-exactly** — for both accumulators (star + induced), both designs
//! (uniform + degree-weighted), arbitrary split points, and snapshots of
//! every estimator family. Plus the algebraic side conditions: empty-shard
//! identity on both sides, merge associativity (bit-exact — every
//! association replays the same push sequence), commutativity only up to
//! floating-point reordering (checked approximately, documented as such),
//! and range-chunked `NeighborCategoryIndex` builds recombining to the
//! monolithic index.

use cgte_core::{estimate_stream, StarSizeOptions};
use cgte_graph::generators::{planted_partition, PlantedConfig};
use cgte_graph::{Graph, NodeId, Partition};
use cgte_sampling::{
    DesignKind, NeighborCategoryIndex, NodeSampler, ObservationContext, ObservationStream,
    RandomWalk, UniformIndependence,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small planted graph: three unbalanced categories, dense enough that
/// induced pairs actually occur in short samples.
fn fixture(seed: u64) -> (Graph, Partition) {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = PlantedConfig {
        category_sizes: vec![12, 20, 32],
        k: 5,
        alpha: 0.4,
    };
    let pg = planted_partition(&cfg, &mut rng).unwrap();
    (pg.graph, pg.partition)
}

/// Draws a revisiting node sequence (a walk revisits; that is the hard
/// case for the induced accumulator's per-node running masses).
fn draw(g: &Graph, n: usize, seed: u64, walk: bool) -> Vec<NodeId> {
    let mut rng = StdRng::seed_from_u64(seed);
    if walk {
        RandomWalk::new().sample(g, n, &mut rng)
    } else {
        UniformIndependence.sample(g, n, &mut rng)
    }
}

fn weights_for(g: &Graph, nodes: &[NodeId], design: DesignKind) -> Vec<f64> {
    match design {
        DesignKind::Uniform => vec![1.0; nodes.len()],
        DesignKind::Weighted => nodes.iter().map(|&v| g.degree(v) as f64).collect(),
    }
}

/// The merge law proper, checked field-for-field (PartialEq on the
/// accumulators covers every sufficient statistic and the log) and on the
/// full estimator snapshot.
fn check_merge_law(g: &Graph, p: &Partition, nodes: &[NodeId], design: DesignKind, split: usize) {
    let ctx = ObservationContext::new(g, p);
    let w = weights_for(g, nodes, design);
    let c = p.num_categories();

    let mut whole = ObservationStream::new(c);
    whole.ingest(&ctx, nodes, &w);

    let mut left = ObservationStream::new(c);
    left.ingest(&ctx, &nodes[..split], &w[..split]);
    let mut right = ObservationStream::new(c);
    right.ingest(&ctx, &nodes[split..], &w[split..]);

    left.merge(&ctx, &right);
    assert_eq!(left, whole, "merge law violated at split {split}");

    // Snapshots of the merged and sequential state are bit-identical for
    // every estimator family.
    let pop = g.num_nodes() as f64;
    let opts = StarSizeOptions::default();
    let a = estimate_stream(&left, pop, &opts);
    let b = estimate_stream(&whole, pop, &opts);
    assert_eq!(a, b, "snapshot after merge differs at split {split}");
}

proptest! {
    #[test]
    fn merge_equals_sequential_for_all_designs_and_splits(
        seed in 0u64..64,
        n in 1usize..60,
        frac in 0u32..=4,
        walk in any::<bool>(),
        weighted in any::<bool>(),
    ) {
        let (g, p) = fixture(7);
        let nodes = draw(&g, n, seed, walk);
        let split = (n * frac as usize) / 4; // 0, ¼, ½, ¾, all
        let design = if weighted { DesignKind::Weighted } else { DesignKind::Uniform };
        check_merge_law(&g, &p, &nodes, design, split);
    }

    #[test]
    fn empty_shard_is_an_identity(seed in 0u64..32, n in 1usize..40) {
        let (g, p) = fixture(9);
        let ctx = ObservationContext::new(&g, &p);
        let nodes = draw(&g, n, seed, true);
        let w = weights_for(&g, &nodes, DesignKind::Weighted);
        let c = p.num_categories();

        let mut s = ObservationStream::new(c);
        s.ingest(&ctx, &nodes, &w);
        let empty = ObservationStream::new(c);

        // Right identity: s ⊕ ∅ = s.
        let mut right = s.clone();
        right.merge(&ctx, &empty);
        prop_assert_eq!(&right, &s);

        // Left identity: ∅ ⊕ s = s.
        let mut left = ObservationStream::new(c);
        left.merge(&ctx, &s);
        prop_assert_eq!(&left, &s);
    }

    #[test]
    fn merge_is_associative_bit_exactly(
        seed in 0u64..32,
        n in 3usize..45,
    ) {
        let (g, p) = fixture(11);
        let ctx = ObservationContext::new(&g, &p);
        let nodes = draw(&g, n, seed, true);
        let w = weights_for(&g, &nodes, DesignKind::Weighted);
        let c = p.num_categories();
        let (i, j) = (n / 3, 2 * n / 3);

        let mk = |range: std::ops::Range<usize>| {
            let mut s = ObservationStream::new(c);
            s.ingest(&ctx, &nodes[range.clone()], &w[range]);
            s
        };
        let (a, b, d) = (mk(0..i), mk(i..j), mk(j..n));

        // (a ⊕ b) ⊕ d
        let mut ab = a.clone();
        ab.merge(&ctx, &b);
        ab.merge(&ctx, &d);
        // a ⊕ (b ⊕ d)
        let mut bd = b.clone();
        bd.merge(&ctx, &d);
        let mut a_bd = a.clone();
        a_bd.merge(&ctx, &bd);

        prop_assert_eq!(&ab, &a_bd, "associativity");

        // Both equal the sequential observation of the whole sequence.
        let mut whole = ObservationStream::new(c);
        whole.ingest(&ctx, &nodes, &w);
        prop_assert_eq!(&ab, &whole);
    }

    #[test]
    fn merge_commutes_up_to_float_reordering(seed in 0u64..16, n in 2usize..40) {
        // Commutativity holds for the *statistics* only up to FP
        // reassociation (the logs genuinely differ in order, so bit
        // equality is not expected and not claimed).
        let (g, p) = fixture(13);
        let ctx = ObservationContext::new(&g, &p);
        let nodes = draw(&g, n, seed, true);
        let w = weights_for(&g, &nodes, DesignKind::Weighted);
        let c = p.num_categories();
        let split = n / 2;

        let mk = |range: std::ops::Range<usize>| {
            let mut s = ObservationStream::new(c);
            s.ingest(&ctx, &nodes[range.clone()], &w[range]);
            s
        };
        let (a, b) = (mk(0..split), mk(split..n));
        let mut ab = a.clone();
        ab.merge(&ctx, &b);
        let mut ba = b.clone();
        ba.merge(&ctx, &a);

        prop_assert_eq!(ab.len(), ba.len());
        let (sa, sb) = (ab.star(), ba.star());
        prop_assert!((sa.inverse_mass() - sb.inverse_mass()).abs() <= 1e-9 * sa.inverse_mass().abs().max(1.0));
        prop_assert!((sa.degree_mass() - sb.degree_mass()).abs() <= 1e-9 * sa.degree_mass().abs().max(1.0));
        for (x, y) in sa.neighbor_mass().iter().zip(sb.neighbor_mass()) {
            prop_assert!((x - y).abs() <= 1e-9 * x.abs().max(1.0));
        }
        let (ia, ib) = (ab.induced(), ba.induced());
        for (x, y) in ia.per_category_mass().iter().zip(ib.per_category_mass()) {
            prop_assert!((x - y).abs() <= 1e-9 * x.abs().max(1.0));
        }
        // Cross-shard pair discovery is order-independent as a set, so the
        // weight numerators agree up to reordering too.
        for a_cat in 0..c as u32 {
            for b_cat in (a_cat + 1)..c as u32 {
                let x = ia.weight_numerators().get(a_cat, b_cat);
                let y = ib.weight_numerators().get(a_cat, b_cat);
                prop_assert!((x - y).abs() <= 1e-9 * x.abs().max(1.0));
            }
        }
    }

    #[test]
    fn chunked_index_builds_merge_to_the_monolith(
        chunks in 1usize..6,
        seed in 0u64..8,
    ) {
        let (g, p) = fixture(17 + seed);
        let serial = NeighborCategoryIndex::build(&g, &p);
        let n = g.num_nodes() as NodeId;
        let per = n.div_ceil(chunks as NodeId).max(1);
        let mut merged: Option<NeighborCategoryIndex> = None;
        let mut lo = 0;
        while lo < n {
            let hi = (lo + per).min(n);
            let shard = NeighborCategoryIndex::build_range(&g, &p, lo, hi);
            match &mut merged {
                None => merged = Some(shard),
                Some(m) => m.merge(&shard),
            }
            lo = hi;
        }
        prop_assert_eq!(merged.unwrap(), serial);
    }
}

/// The cross-shard edge case stated plainly: an edge whose endpoints live
/// in different shards is invisible to both shards alone, and merge must
/// recover exactly its sequential contribution.
#[test]
fn merge_recovers_cross_shard_induced_pairs() {
    use cgte_graph::GraphBuilder;
    let g = GraphBuilder::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
    let p = Partition::from_assignments(vec![0, 0, 1, 1], 2).unwrap();
    let ctx = ObservationContext::new(&g, &p);

    // Shard A sees node 1, shard B sees node 2; the 1–2 edge crosses.
    let mut a = ObservationStream::new(2);
    a.ingest_uniform(&ctx, &[1]);
    let mut b = ObservationStream::new(2);
    b.ingest_uniform(&ctx, &[2]);
    assert!(a.induced().weight_numerators().is_zero());
    assert!(b.induced().weight_numerators().is_zero());

    a.merge(&ctx, &b);
    let mut whole = ObservationStream::new(2);
    whole.ingest_uniform(&ctx, &[1, 2]);
    assert_eq!(a, whole);
    assert!(a.induced().weight_numerators().get(0, 1) > 0.0);
}
