//! Property tests of the `.cgtes` snapshot layer: across samplers,
//! designs, split points and seeds, `snapshot → restore → continue`
//! must be **bit-identical** (accumulator state and push log both) to a
//! stream that was never interrupted — and corrupted or truncated bytes
//! must fail with a typed error, never a panic or a silently wrong
//! stream.

use cgte_graph::generators::{planted_partition, PlantedConfig};
use cgte_graph::store::Container;
use cgte_graph::{Graph, Partition};
use cgte_sampling::snapshot::{
    read_snapshot, stream_from_container, stream_sections, write_snapshot,
};
use cgte_sampling::{
    AnySampler, DesignKind, MetropolisHastingsWalk, NodeSampler, ObservationContext,
    ObservationStream, RandomWalk, UniformIndependence,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fixture(seed: u64) -> (Graph, Partition) {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = PlantedConfig {
        category_sizes: vec![30, 50, 70],
        k: 5,
        alpha: 0.4,
    };
    let pg = planted_partition(&cfg, &mut rng).unwrap();
    (pg.graph, pg.partition)
}

fn snapshot_bytes(stream: &ObservationStream) -> Vec<u8> {
    let mut c = Container::new();
    for s in stream_sections(stream) {
        c.push(s);
    }
    let mut buf = Vec::new();
    write_snapshot(&mut buf, &c).unwrap();
    buf
}

fn restore(bytes: &[u8], ctx: &ObservationContext<'_>) -> ObservationStream {
    stream_from_container(&read_snapshot(bytes).unwrap(), ctx).unwrap()
}

/// The core property, quantified over sampler × design × split point ×
/// seed: a restored-then-continued stream equals the uninterrupted one
/// (`ObservationStream: PartialEq` compares both accumulators and the
/// full push log, so this pins star *and* induced state bit-for-bit —
/// design weights included, via `f64` equality).
#[test]
fn interrupted_equals_uninterrupted_across_designs_and_samplers() {
    let (g, p) = fixture(11);
    let ctx = ObservationContext::new(&g, &p);
    let samplers: [(&str, AnySampler); 3] = [
        ("uis", AnySampler::Uis(UniformIndependence)),
        ("rw", AnySampler::Rw(RandomWalk::new().burn_in(10))),
        (
            "mhrw",
            AnySampler::Mhrw(MetropolisHastingsWalk::new().thinning(2)),
        ),
    ];
    for (name, sampler) in &samplers {
        for design in [DesignKind::Uniform, DesignKind::Weighted] {
            for case_seed in 0..6u64 {
                let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ case_seed);
                let nodes = sampler.sample(&g, 120, &mut rng);
                // Deterministic, case-varying split point.
                let split = (7 + 29 * case_seed as usize) % nodes.len();

                let mut uninterrupted = ObservationStream::new(p.num_categories());
                uninterrupted.ingest_sampler(&ctx, &nodes, sampler, design);

                let mut before = ObservationStream::new(p.num_categories());
                before.ingest_sampler(&ctx, &nodes[..split], sampler, design);
                let mut resumed = restore(&snapshot_bytes(&before), &ctx);
                resumed.ingest_sampler(&ctx, &nodes[split..], sampler, design);

                assert_eq!(
                    resumed, uninterrupted,
                    "sampler {name}, design {design:?}, split {split}"
                );
            }
        }
    }
}

/// A second snapshot of the restored stream is byte-identical to a
/// snapshot of the original — the format itself round-trips exactly.
#[test]
fn double_snapshot_is_byte_stable() {
    let (g, p) = fixture(12);
    let ctx = ObservationContext::new(&g, &p);
    let rw = RandomWalk::new();
    let mut rng = StdRng::seed_from_u64(5);
    let nodes = rw.sample(&g, 200, &mut rng);
    let mut s = ObservationStream::new(p.num_categories());
    s.ingest_sampler(&ctx, &nodes, &rw, DesignKind::Weighted);
    let b1 = snapshot_bytes(&s);
    let b2 = snapshot_bytes(&restore(&b1, &ctx));
    assert_eq!(b1, b2);
}

/// Every single-byte corruption either fails with a typed error or (for
/// bytes the checksum provably covers — everything in section payloads)
/// is detected; no input may panic. Flips that survive decoding (e.g. in
/// ignorable framing slack) must still never produce a *different*
/// stream than the original.
#[test]
fn corrupted_bytes_fail_cleanly_and_never_lie() {
    let (g, p) = fixture(13);
    let ctx = ObservationContext::new(&g, &p);
    let rw = RandomWalk::new();
    let mut rng = StdRng::seed_from_u64(9);
    let nodes = rw.sample(&g, 50, &mut rng);
    let mut s = ObservationStream::new(p.num_categories());
    s.ingest_sampler(&ctx, &nodes, &rw, DesignKind::Weighted);
    let clean = snapshot_bytes(&s);

    for pos in (0..clean.len()).step_by(3) {
        let mut evil = clean.clone();
        evil[pos] ^= 0x41;
        let outcome = read_snapshot(&evil[..]).and_then(|c| stream_from_container(&c, &ctx));
        if let Ok(decoded) = outcome {
            assert_eq!(
                decoded, s,
                "byte flip at {pos} decoded to a different stream"
            );
        }
    }
}

/// Every truncation point is a typed error — a partial write can never
/// restore as a shorter-but-valid session.
#[test]
fn truncations_fail_cleanly() {
    let (g, p) = fixture(14);
    let ctx = ObservationContext::new(&g, &p);
    let rw = RandomWalk::new();
    let mut rng = StdRng::seed_from_u64(10);
    let nodes = rw.sample(&g, 40, &mut rng);
    let mut s = ObservationStream::new(p.num_categories());
    s.ingest_sampler(&ctx, &nodes, &rw, DesignKind::Uniform);
    let clean = snapshot_bytes(&s);

    for cut in (0..clean.len()).step_by(5) {
        let outcome = read_snapshot(&clean[..cut]).and_then(|c| stream_from_container(&c, &ctx));
        assert!(outcome.is_err(), "truncation at {cut} bytes was accepted");
    }
}

/// A snapshot taken against one partition must not restore against a
/// context with a different category count.
#[test]
fn category_count_mismatch_is_rejected() {
    let (g, p) = fixture(15);
    let ctx = ObservationContext::new(&g, &p);
    let rw = RandomWalk::new();
    let mut rng = StdRng::seed_from_u64(3);
    let nodes = rw.sample(&g, 30, &mut rng);
    let mut s = ObservationStream::new(p.num_categories());
    s.ingest_sampler(&ctx, &nodes, &rw, DesignKind::Weighted);
    let bytes = snapshot_bytes(&s);

    let merged = Partition::from_assignments(vec![0; g.num_nodes()], 1).unwrap();
    let wrong_ctx = ObservationContext::new(&g, &merged);
    let outcome = read_snapshot(&bytes[..]).and_then(|c| stream_from_container(&c, &wrong_ctx));
    assert!(outcome.is_err());
}
