//! Breadth-first (snowball) sampling — the biased baseline of §8.
//!
//! BFS has been widely used to sample topologies, but the paper's related
//! work (and \[7, 20, 36, 37, 46, 70\]) stresses that a BFS sample is
//! *without replacement* and strongly biased toward high-degree nodes in a
//! way that, unlike RW, has **no known closed-form sampling weights** to
//! correct with — and it only covers the neighborhood of its seed. It is
//! included here so that the bias is demonstrable (see the `bfs_bias`
//! example and the tests below), not as a recommended design.

use crate::{DesignKind, NodeSampler, SampleError, WalkStats};
use cgte_graph::{Graph, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::VecDeque;

/// Breadth-first-search sampler: explores outward from a random seed,
/// visiting each node at most once, until `n` nodes are collected (or the
/// component is exhausted, after which a fresh seed restarts the search).
///
/// Neighbor visit order is randomized so two BFS runs differ, but the
/// with-replacement/i.i.d. assumptions of the §4–§5 estimators do **not**
/// hold; [`NodeSampler::weight_of`] reports 1 (no principled correction
/// exists), so estimates computed from BFS samples are biased by design.
#[derive(Debug, Clone, Copy, Default)]
pub struct BreadthFirst {
    start: Option<NodeId>,
}

impl BreadthFirst {
    /// BFS from a random seed.
    pub fn new() -> Self {
        BreadthFirst { start: None }
    }

    /// Fixes the seed node.
    pub fn start_at(mut self, v: NodeId) -> Self {
        self.start = Some(v);
        self
    }
}

impl NodeSampler for BreadthFirst {
    // A BFS "step" is one dequeued node, so the trivial accounting
    // (steps = retained) is exact; the search may stop short of `n` when
    // the graph is exhausted, which is why stats use `out.len()`.
    fn try_sample_into_stats<R: Rng + ?Sized>(
        &self,
        g: &Graph,
        n: usize,
        rng: &mut R,
        out: &mut Vec<NodeId>,
        stats: &mut WalkStats,
    ) -> Result<(), SampleError> {
        if g.num_nodes() == 0 {
            return Err(SampleError::EmptyGraph);
        }
        let mut visited = vec![false; g.num_nodes()];
        out.clear();
        out.reserve(n);
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        let seed = |visited: &[bool], rng: &mut R| -> Option<NodeId> {
            if let Some(s) = self.start {
                if !visited[s as usize] {
                    return Some(s);
                }
            }
            // Uniform unvisited seed; rejection-sample then fall back to scan.
            for _ in 0..64 {
                let v = rng.gen_range(0..g.num_nodes() as NodeId);
                if !visited[v as usize] {
                    return Some(v);
                }
            }
            (0..g.num_nodes() as NodeId).find(|&v| !visited[v as usize])
        };
        let mut scratch: Vec<NodeId> = Vec::new();
        while out.len() < n {
            if queue.is_empty() {
                match seed(&visited, rng) {
                    Some(s) => {
                        visited[s as usize] = true;
                        queue.push_back(s);
                    }
                    None => break, // every node already sampled
                }
            }
            let u = queue.pop_front().expect("non-empty queue");
            out.push(u);
            scratch.clear();
            scratch.extend_from_slice(g.neighbors(u));
            scratch.shuffle(rng);
            for &v in &scratch {
                if !visited[v as usize] {
                    visited[v as usize] = true;
                    queue.push_back(v);
                }
            }
        }
        *stats = WalkStats {
            retained: out.len(),
            steps: out.len(),
            burn_in: 0,
            thinning: 1,
            rejections: 0,
        };
        Ok(())
    }

    fn design(&self) -> DesignKind {
        // No valid correction exists; reported as Uniform so that the bias
        // is visible rather than silently "corrected" with wrong weights.
        DesignKind::Uniform
    }

    fn weight_of(&self, _g: &Graph, _v: NodeId) -> f64 {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgte_graph::generators::{planted_partition, PlantedConfig};
    use cgte_graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bfs_visits_without_replacement() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = GraphBuilder::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        let s = BreadthFirst::new().sample(&g, 6, &mut rng);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 6, "BFS must not repeat nodes");
    }

    #[test]
    fn bfs_explores_neighborhood_first() {
        // Star: from the center, the first samples are the center then leaves.
        let mut b = GraphBuilder::new(5);
        for v in 1..5 {
            b.add_edge(0, v).unwrap();
        }
        let g = b.build();
        let mut rng = StdRng::seed_from_u64(2);
        let s = BreadthFirst::new().start_at(0).sample(&g, 3, &mut rng);
        assert_eq!(s[0], 0);
        assert!(s[1] != 0 && s[2] != 0);
    }

    #[test]
    fn bfs_restarts_across_components() {
        let g = GraphBuilder::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let s = BreadthFirst::new().sample(&g, 4, &mut rng);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn bfs_exhausts_graph_gracefully() {
        let g = GraphBuilder::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let s = BreadthFirst::new().sample(&g, 10, &mut rng);
        assert_eq!(s.len(), 3, "stops when every node is sampled");
    }

    #[test]
    fn bfs_oversamples_high_degree_early() {
        // §8's bias claim: the mean degree of a small BFS sample exceeds
        // the graph mean (hubs are reached quickly).
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = PlantedConfig {
            category_sizes: vec![300, 300],
            k: 4,
            alpha: 1.0,
        };
        let pg = planted_partition(&cfg, &mut rng).unwrap();
        // Add a few hubs by rewiring: use the existing graph; BFS from
        // random seeds, sample 5%.
        let mut mean_bfs = 0.0;
        let reps = 40;
        for _ in 0..reps {
            let s = BreadthFirst::new().sample(&pg.graph, 30, &mut rng);
            mean_bfs += s.iter().map(|&v| pg.graph.degree(v) as f64).sum::<f64>() / s.len() as f64;
        }
        mean_bfs /= reps as f64;
        assert!(
            mean_bfs > pg.graph.mean_degree(),
            "BFS sample mean degree {mean_bfs} should exceed graph mean {}",
            pg.graph.mean_degree()
        );
    }
}
