//! Node sampling for graph measurement (§3 of the paper).
//!
//! Two families of samplers produce a (multiset) probability sample of
//! nodes, all with replacement:
//!
//! - **Independence sampling** (§3.1.1): [`UniformIndependence`] (UIS) and
//!   [`WeightedIndependence`] (WIS, via a Walker [`AliasTable`]).
//! - **Crawling** (§3.1.2): [`RandomWalk`] (RW), [`MetropolisHastingsWalk`]
//!   (MHRW), [`WeightedRandomWalk`] (WRW with product-form edge weights),
//!   and [`Swrw`] (Stratified Weighted Random Walk, the paper's \[35\]).
//!
//! Each sampler knows its stationary sampling weight `w(v) ∝ π(v)`
//! ([`NodeSampler::weight_of`]), which the estimators in `cgte-core` use for
//! Hansen–Hurwitz bias correction (§5).
//!
//! Independently of the sampler, a measurement records one of two
//! **observation scenarios** (§3.2): [`InducedSample`] (categories of
//! sampled nodes plus edges among them) or [`StarSample`] (additionally the
//! categories of *all* neighbors of each sampled node).
//!
//! ```
//! use cgte_graph::generators::{planted_partition, PlantedConfig};
//! use cgte_sampling::{NodeSampler, RandomWalk, StarSample};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let pg = planted_partition(&PlantedConfig::scaled(500, 4, 0.5), &mut rng).unwrap();
//! let rw = RandomWalk::new().burn_in(100);
//! let nodes = rw.sample(&pg.graph, 200, &mut rng);
//! let star = StarSample::observe_sampler(&pg.graph, &pg.partition, &nodes, &rw);
//! assert_eq!(star.len(), 200);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alias;
mod bfs;
pub mod convergence;
mod independence;
mod mhrw;
mod multiwalk;
mod observe;
mod random_walk;
pub mod snapshot;
pub mod stream;
mod swrw;
mod traits;
mod weighted_walk;

pub use alias::AliasTable;
pub use bfs::BreadthFirst;
pub use independence::{UniformIndependence, WeightedIndependence};
pub use mhrw::MetropolisHastingsWalk;
pub use multiwalk::{run_walks, MultiWalkSample};
pub use observe::{
    InducedAccumulator, InducedSample, NeighborCategoryIndex, ObservationContext, StarAccumulator,
    StarSample,
};
pub use random_walk::RandomWalk;
pub use stream::ObservationStream;
pub use swrw::Swrw;
pub use traits::{AnySampler, DesignKind, NodeSampler, SampleError, WalkStats};
pub use weighted_walk::WeightedRandomWalk;
