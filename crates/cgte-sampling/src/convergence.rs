//! Walk convergence diagnostics (§5.4).
//!
//! Crawl samples are autocorrelated; the paper relies on the ergodic
//! theorem for asymptotic correctness but practitioners need to judge
//! whether a finite walk "has adequately converged" \[20\]. This module
//! provides the two standard checks used in the random-walk-sampling
//! literature: lag autocorrelation of a scalar trace (typically the degree
//! sequence of the walk) and the Geweke diagnostic comparing the first and
//! last portions of the trace.

/// Lag-`k` autocorrelation of a scalar series.
///
/// Returns `None` when the series is shorter than `k + 2` or has zero
/// variance.
pub fn autocorrelation(series: &[f64], lag: usize) -> Option<f64> {
    let n = series.len();
    if n < lag + 2 {
        return None;
    }
    let mean = series.iter().sum::<f64>() / n as f64;
    let var = series.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
    if var <= 0.0 {
        return None;
    }
    let cov = (0..n - lag)
        .map(|i| (series[i] - mean) * (series[i + lag] - mean))
        .sum::<f64>()
        / (n - lag) as f64;
    Some(cov / var)
}

/// The smallest thinning factor `T` at which the lag-`T` autocorrelation of
/// the trace drops below `threshold` (searching `1..=max_lag`).
///
/// A practical recipe for choosing the §5.4 thinning parameter. Returns
/// `None` if no lag up to `max_lag` achieves the threshold.
pub fn decorrelation_lag(series: &[f64], threshold: f64, max_lag: usize) -> Option<usize> {
    (1..=max_lag).find(|&lag| match autocorrelation(series, lag) {
        Some(r) => r.abs() < threshold,
        None => false,
    })
}

/// Geweke convergence diagnostic: z-score comparing the mean of the first
/// `first` fraction of the trace against the last `last` fraction, using
/// naive (independence) standard errors.
///
/// |z| ≲ 2 is the usual "no evidence against convergence" reading; a walk
/// still drifting away from its start produces |z| ≫ 2. Conventional
/// fractions are `first = 0.1`, `last = 0.5`.
///
/// Returns `None` on degenerate inputs (short series, zero variance,
/// fractions outside `(0, 1)` or overlapping).
pub fn geweke_z(series: &[f64], first: f64, last: f64) -> Option<f64> {
    if !(first > 0.0 && last > 0.0 && first + last <= 1.0) {
        return None;
    }
    let n = series.len();
    let n_a = ((n as f64) * first).floor() as usize;
    let n_b = ((n as f64) * last).floor() as usize;
    if n_a < 2 || n_b < 2 {
        return None;
    }
    let a = &series[..n_a];
    let b = &series[n - n_b..];
    let mean = |s: &[f64]| s.iter().sum::<f64>() / s.len() as f64;
    let var =
        |s: &[f64], m: f64| s.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (s.len() - 1) as f64;
    let (ma, mb) = (mean(a), mean(b));
    let se2 = var(a, ma) / n_a as f64 + var(b, mb) / n_b as f64;
    if se2 <= 0.0 {
        return None;
    }
    Some((ma - mb) / se2.sqrt())
}

/// Extracts the degree trace of a walk — the conventional scalar to run
/// diagnostics on, since RW's stationary law is degree-proportional.
pub fn degree_trace(g: &cgte_graph::Graph, walk: &[cgte_graph::NodeId]) -> Vec<f64> {
    walk.iter().map(|&v| g.degree(v) as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NodeSampler, RandomWalk};
    use cgte_graph::generators::{planted_partition, PlantedConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn autocorrelation_of_iid_is_small() {
        let mut rng = StdRng::seed_from_u64(1);
        let series: Vec<f64> = (0..20_000).map(|_| rng.gen::<f64>()).collect();
        let r = autocorrelation(&series, 1).unwrap();
        assert!(r.abs() < 0.05, "iid lag-1 autocorrelation {r}");
    }

    #[test]
    fn autocorrelation_of_walk_is_positive() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = PlantedConfig {
            category_sizes: vec![200, 200],
            k: 4,
            alpha: 0.0,
        };
        let pg = planted_partition(&cfg, &mut rng).unwrap();
        let walk = RandomWalk::new().sample(&pg.graph, 20_000, &mut rng);
        let trace = degree_trace(&pg.graph, &walk);
        let r1 = autocorrelation(&trace, 1).unwrap();
        assert!(
            r1 > 0.02,
            "walk degree trace should autocorrelate, got {r1}"
        );
    }

    #[test]
    fn degenerate_autocorrelation_inputs() {
        assert_eq!(autocorrelation(&[1.0, 2.0], 5), None);
        assert_eq!(autocorrelation(&[3.0; 100], 1), None); // zero variance
    }

    #[test]
    fn decorrelation_lag_on_ar1() {
        // AR(1) with strong correlation decorrelates after several lags.
        let mut rng = StdRng::seed_from_u64(3);
        let mut x = 0.0f64;
        let series: Vec<f64> = (0..50_000)
            .map(|_| {
                x = 0.8 * x + rng.gen_range(-1.0..1.0);
                x
            })
            .collect();
        let lag = decorrelation_lag(&series, 0.1, 100).unwrap();
        assert!((5..60).contains(&lag), "AR(0.8) decorrelation lag {lag}");
        // An iid series decorrelates immediately.
        let iid: Vec<f64> = (0..10_000).map(|_| rng.gen()).collect();
        assert_eq!(decorrelation_lag(&iid, 0.1, 10), Some(1));
    }

    #[test]
    fn geweke_flags_drift_and_accepts_stationarity() {
        let mut rng = StdRng::seed_from_u64(4);
        // Stationary noise: |z| small.
        let flat: Vec<f64> = (0..5_000).map(|_| rng.gen::<f64>()).collect();
        let z = geweke_z(&flat, 0.1, 0.5).unwrap();
        assert!(z.abs() < 3.0, "stationary z {z}");
        // Strong linear drift: |z| large.
        let drift: Vec<f64> = (0..5_000)
            .map(|i| i as f64 / 5_000.0 + rng.gen::<f64>() * 0.01)
            .collect();
        let z = geweke_z(&drift, 0.1, 0.5).unwrap();
        assert!(z.abs() > 10.0, "drifting z {z}");
    }

    #[test]
    fn geweke_degenerate_inputs() {
        assert_eq!(geweke_z(&[1.0, 2.0, 3.0], 0.0, 0.5), None);
        assert_eq!(geweke_z(&[1.0, 2.0, 3.0], 0.6, 0.6), None);
        assert_eq!(geweke_z(&[1.0; 100], 0.1, 0.5), None); // zero variance
        assert_eq!(geweke_z(&[1.0, 2.0], 0.1, 0.5), None); // too short
    }
}
