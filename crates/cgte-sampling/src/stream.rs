//! The streaming observation kernel: ingest sampled nodes in batches,
//! query the sufficient statistics of **both** observation scenarios at
//! any prefix, and merge independently collected shards.
//!
//! This is the paper's operating model made explicit: a crawler streams
//! node samples in and category-graph estimates come out, without the
//! estimator ever holding the full sample — only `O(C²)` running sums
//! (plus the push log that makes shards mergeable). The batch experiment
//! runner (`cgte_eval::run_experiment`) and the online estimation service
//! (`cgte-serve`) both sit on this kernel, so their numbers are
//! bit-identical by construction.
//!
//! Estimates themselves live one crate up (`cgte_core::stream_estimate`,
//! which consumes the accumulators exposed here): the kernel produces
//! design-based sufficient statistics, the estimator crate turns them into
//! Eq. (4)/(5)/(8)/(9) values.
//!
//! ```
//! use cgte_graph::GraphBuilder;
//! use cgte_graph::Partition;
//! use cgte_sampling::{ObservationContext, ObservationStream};
//!
//! let g = GraphBuilder::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
//! let p = Partition::from_assignments(vec![0, 0, 1, 1], 2).unwrap();
//! let ctx = ObservationContext::new(&g, &p);
//!
//! // Two crawlers ingest independently…
//! let mut a = ObservationStream::new(2);
//! a.ingest_uniform(&ctx, &[0, 1]);
//! let mut b = ObservationStream::new(2);
//! b.ingest_uniform(&ctx, &[2, 3]);
//!
//! // …and merging them is bit-identical to one sequential observer.
//! let mut whole = ObservationStream::new(2);
//! whole.ingest_uniform(&ctx, &[0, 1, 2, 3]);
//! a.merge(&ctx, &b);
//! assert_eq!(a, whole);
//! ```

use crate::observe::{InducedAccumulator, ObservationContext, StarAccumulator};
use crate::{DesignKind, NodeSampler};
use cgte_graph::NodeId;

/// Both observation scenarios' incremental state over one sample stream.
///
/// A single push feeds the [`StarAccumulator`] and the
/// [`InducedAccumulator`] in lockstep, so every estimator family of the
/// paper can be snapshotted from the same stream at any prefix. Streams
/// are mergeable with the same bit-exact law as the accumulators they
/// wrap (star first, then induced — a fixed order, so merged state equals
/// sequentially pushed state field for field).
///
/// Each wrapped accumulator keeps its own `(node, weight)` push log —
/// a deliberate 16 bytes/sample duplication: the logs are what make the
/// accumulators independently mergeable, and sharing one log across the
/// pair would leave a stream's inner accumulators silently unmergeable
/// on their own. [`ObservationStream::log`] exposes the star copy.
#[derive(Debug, Clone, PartialEq)]
pub struct ObservationStream {
    star: StarAccumulator,
    induced: InducedAccumulator,
}

impl ObservationStream {
    /// An empty stream over `num_categories` categories.
    pub fn new(num_categories: usize) -> Self {
        ObservationStream {
            star: StarAccumulator::new(num_categories),
            induced: InducedAccumulator::new(num_categories),
        }
    }

    /// Clears all state, keeping allocations (scratch reuse between
    /// replications).
    pub fn reset(&mut self) {
        self.star.reset();
        self.induced.reset();
    }

    /// Folds one sampled node with design weight `w` into both
    /// accumulators.
    ///
    /// # Panics
    /// Panics if `w` is not positive and finite, or on a category-count
    /// mismatch with the context.
    #[inline]
    pub fn push(&mut self, ctx: &ObservationContext<'_>, v: NodeId, w: f64) {
        self.star.push(ctx, v, w);
        self.induced.push(ctx, v, w);
    }

    /// Ingests a batch of sampled nodes with explicit design weights.
    ///
    /// # Panics
    /// Panics unless `weights.len() == nodes.len()` (plus the `push`
    /// contract per element).
    pub fn ingest(&mut self, ctx: &ObservationContext<'_>, nodes: &[NodeId], weights: &[f64]) {
        assert_eq!(weights.len(), nodes.len(), "one weight per sample");
        for (&v, &w) in nodes.iter().zip(weights) {
            self.push(ctx, v, w);
        }
    }

    /// Ingests a batch under a uniform design (all weights 1).
    pub fn ingest_uniform(&mut self, ctx: &ObservationContext<'_>, nodes: &[NodeId]) {
        for &v in nodes {
            self.push(ctx, v, 1.0);
        }
    }

    /// Ingests a batch with the weights a sampler reports for each node —
    /// `w(v)` under a weighted design, 1 under a uniform one. This is
    /// exactly the weighting rule of the batch experiment runner, so a
    /// stream fed the same drawn sequence reaches bit-identical state.
    pub fn ingest_sampler<S: NodeSampler + ?Sized>(
        &mut self,
        ctx: &ObservationContext<'_>,
        nodes: &[NodeId],
        sampler: &S,
        design: DesignKind,
    ) {
        for &v in nodes {
            let w = match design {
                DesignKind::Uniform => 1.0,
                DesignKind::Weighted => sampler.weight_of(ctx.graph(), v),
            };
            self.push(ctx, v, w);
        }
    }

    /// Folds another stream's observations into this one (bit-exact merge
    /// law; see [`StarAccumulator::merge`]).
    ///
    /// # Panics
    /// Panics if the category counts differ.
    pub fn merge(&mut self, ctx: &ObservationContext<'_>, other: &ObservationStream) {
        self.star.merge(ctx, &other.star);
        self.induced.merge(ctx, &other.induced);
    }

    /// Number of ingested samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.star.len()
    }

    /// Whether nothing was ingested.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.star.is_empty()
    }

    /// Number of categories.
    #[inline]
    pub fn num_categories(&self) -> usize {
        self.star.num_categories()
    }

    /// The star-scenario sufficient statistics at the current prefix.
    #[inline]
    pub fn star(&self) -> &StarAccumulator {
        &self.star
    }

    /// The induced-scenario sufficient statistics at the current prefix.
    #[inline]
    pub fn induced(&self) -> &InducedAccumulator {
        &self.induced
    }

    /// The ingested `(node, weight)` sequence, in order.
    #[inline]
    pub fn log(&self) -> &[(NodeId, f64)] {
        self.star.log()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RandomWalk;
    use cgte_graph::{Graph, GraphBuilder, Partition};

    fn fixture() -> (Graph, Partition) {
        let g =
            GraphBuilder::from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
                .unwrap();
        let p = Partition::from_assignments(vec![0, 0, 0, 1, 1, 1], 2).unwrap();
        (g, p)
    }

    #[test]
    fn stream_tracks_both_scenarios() {
        let (g, p) = fixture();
        let ctx = ObservationContext::new(&g, &p);
        let mut s = ObservationStream::new(2);
        assert!(s.is_empty());
        s.ingest_uniform(&ctx, &[2, 3]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.star().len(), 2);
        assert_eq!(s.induced().len(), 2);
        // The bridge edge shows up in both scenarios' cross numerators.
        assert!(s.star().weight_numerators().get(0, 1) > 0.0);
        assert!(s.induced().weight_numerators().get(0, 1) > 0.0);
        assert_eq!(s.log(), &[(2, 1.0), (3, 1.0)]);
        s.reset();
        assert!(s.is_empty());
    }

    #[test]
    fn split_ingest_merge_equals_sequential() {
        let (g, p) = fixture();
        let ctx = ObservationContext::new(&g, &p);
        let nodes = [2u32, 3, 2, 0, 5, 2, 3, 4, 1, 2];
        let rw = RandomWalk::new();
        for split in [0, 1, 5, 9, 10] {
            let mut whole = ObservationStream::new(2);
            whole.ingest_sampler(&ctx, &nodes, &rw, DesignKind::Weighted);
            let mut a = ObservationStream::new(2);
            a.ingest_sampler(&ctx, &nodes[..split], &rw, DesignKind::Weighted);
            let mut b = ObservationStream::new(2);
            b.ingest_sampler(&ctx, &nodes[split..], &rw, DesignKind::Weighted);
            a.merge(&ctx, &b);
            assert_eq!(a, whole, "split at {split}");
        }
    }

    #[test]
    fn ingest_matches_explicit_weights() {
        let (g, p) = fixture();
        let ctx = ObservationContext::new(&g, &p);
        let nodes = [2u32, 4, 2];
        let rw = RandomWalk::new();
        let weights: Vec<f64> = nodes.iter().map(|&v| g.degree(v) as f64).collect();
        let mut a = ObservationStream::new(2);
        a.ingest(&ctx, &nodes, &weights);
        let mut b = ObservationStream::new(2);
        b.ingest_sampler(&ctx, &nodes, &rw, DesignKind::Weighted);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "one weight per sample")]
    fn ingest_rejects_length_mismatch() {
        let (g, p) = fixture();
        let ctx = ObservationContext::new(&g, &p);
        let mut s = ObservationStream::new(2);
        s.ingest(&ctx, &[0, 1], &[1.0]);
    }
}
