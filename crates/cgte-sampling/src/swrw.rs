//! Stratified Weighted Random Walk (S-WRW), the paper's reference \[35\].

use crate::{DesignKind, NodeSampler, SampleError, WalkStats, WeightedRandomWalk};
use cgte_graph::{CategoryId, Graph, NodeId, Partition};
use rand::Rng;

/// Stratified Weighted Random Walk: a [`WeightedRandomWalk`] whose per-node
/// factor is the weight `γ_C` of the node's *category*, so the crawl
/// oversamples categories of interest ("walking on a graph with a
/// magnifying glass", \[35\]).
///
/// With product-form edge weights `γ_{C(u)}·γ_{C(v)}`, the transition
/// probability toward neighbor `v` is ∝ `γ_{C(v)}`. A real crawler can
/// compute this from the neighbor categories visible in a star measurement,
/// and the stationary weight of a visited node —
/// `π(v) ∝ γ_{C(v)}·Σ_{u∼v} γ_{C(u)}` — from the same information, which is
/// what makes the §5 estimators applicable.
///
/// [`Swrw::equal_category_target`] reproduces the configuration the paper
/// evaluates (§6.3.1): equal category weights, no irrelevant categories
/// (`f̃_⊖ = 0`), full stratification strength (`γ = ∞`). Setting
/// `γ_C = 1/vol(C)` makes every category's stationary mass approximately
/// equal, which is what "equal category weights" targets — small categories
/// (the paper's colleges, 3.5 % of users across 10 000+ categories) are
/// oversampled by orders of magnitude relative to RW, as seen in Fig. 5.
#[derive(Debug, Clone)]
pub struct Swrw {
    inner: WeightedRandomWalk,
    category_weights: Vec<f64>,
}

impl Swrw {
    /// S-WRW with explicit per-category weights `γ_C`.
    ///
    /// Returns `None` if any weight is negative or non-finite, or if the
    /// partition is empty.
    pub fn new(p: &Partition, category_weights: Vec<f64>) -> Option<Self> {
        if category_weights.len() != p.num_categories() {
            return None;
        }
        let factors: Vec<f64> = p
            .assignments()
            .iter()
            .map(|&c| category_weights[c as usize])
            .collect();
        let inner = WeightedRandomWalk::new(factors)?;
        Some(Swrw {
            inner,
            category_weights,
        })
    }

    /// The paper's evaluation configuration: category weights chosen so
    /// every (non-empty) category receives roughly equal sampling mass,
    /// `γ_C = 1 / vol(C)`; zero-volume categories get weight 0.
    ///
    /// This is [`Swrw::stratified`] with `beta = 1` — maximum
    /// stratification. Beware its mixing cost on finite crawls: a walk
    /// entering a tiny category faces internal edge weights `γ_C²` versus
    /// boundary weights `γ_C·γ_other`, so escape takes `O(vol(V)/vol(C))`
    /// steps and short walks cover few rare categories. Intermediate
    /// `beta` trades stratification for mixing (ablation A3).
    pub fn equal_category_target(g: &Graph, p: &Partition) -> Option<Self> {
        Self::stratified(g, p, 1.0)
    }

    /// S-WRW with stratification strength `beta`:
    /// `γ_C = vol(C)^(−beta)`.
    ///
    /// `beta = 0` is the plain RW; `beta = 1` targets equal sampling mass
    /// per category ([`Swrw::equal_category_target`]); intermediate values
    /// boost rare categories while keeping traps shallow — `beta = 0.5`
    /// makes a category's stationary mass ∝ `vol(C)^(1/2)`, a `vol^(-1/2)`
    /// per-volume boost for small categories with only `O(sqrt(vol(V)/vol(C)))`
    /// escape times. Zero-volume categories get weight 0.
    ///
    /// # Panics
    /// Panics if `beta` is negative or not finite.
    pub fn stratified(g: &Graph, p: &Partition, beta: f64) -> Option<Self> {
        assert!(
            beta.is_finite() && beta >= 0.0,
            "beta must be finite and >= 0"
        );
        let mut vol = vec![0f64; p.num_categories()];
        for v in 0..g.num_nodes() {
            vol[p.category_of(v as NodeId) as usize] += g.degree(v as NodeId) as f64;
        }
        let weights: Vec<f64> = vol
            .iter()
            .map(|&x| if x > 0.0 { x.powf(-beta) } else { 0.0 })
            .collect();
        Self::new(p, weights)
    }

    /// Discards the first `steps` visited nodes.
    pub fn burn_in(mut self, steps: usize) -> Self {
        self.inner = self.inner.burn_in(steps);
        self
    }

    /// Keeps only every `t`-th node (`t >= 1`).
    pub fn thinning(mut self, t: usize) -> Self {
        self.inner = self.inner.thinning(t);
        self
    }

    /// Fixes the starting node.
    pub fn start_at(mut self, v: NodeId) -> Self {
        self.inner = self.inner.start_at(v);
        self
    }

    /// The per-category weights `γ_C`.
    pub fn category_weights(&self) -> &[f64] {
        &self.category_weights
    }

    /// Weight of a category by id.
    pub fn category_weight(&self, c: CategoryId) -> f64 {
        self.category_weights[c as usize]
    }
}

impl NodeSampler for Swrw {
    // Forwarding the one required core to the inner WRW is enough: the
    // wrapper entry points are trait defaults over it on both types.
    fn try_sample_into_stats<R: Rng + ?Sized>(
        &self,
        g: &Graph,
        n: usize,
        rng: &mut R,
        out: &mut Vec<NodeId>,
        stats: &mut WalkStats,
    ) -> Result<(), SampleError> {
        self.inner.try_sample_into_stats(g, n, rng, out, stats)
    }

    fn design(&self) -> DesignKind {
        DesignKind::Weighted
    }

    fn weight_of(&self, g: &Graph, v: NodeId) -> f64 {
        self.inner.weight_of(g, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgte_graph::generators::{planted_partition, PlantedConfig};
    use cgte_graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_mismatched_weights() {
        let p = Partition::trivial(4);
        assert!(Swrw::new(&p, vec![1.0, 2.0]).is_none());
        assert!(Swrw::new(&p, vec![-1.0]).is_none());
    }

    #[test]
    fn oversamples_small_category() {
        // Two communities: a big one (160 nodes) and a small one (20), with
        // equal-target weights the small category should receive far more
        // than its 11% population share.
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = PlantedConfig {
            category_sizes: vec![20, 160],
            k: 6,
            alpha: 0.0,
        };
        let pg = planted_partition(&cfg, &mut rng).unwrap();
        let swrw = Swrw::equal_category_target(&pg.graph, &pg.partition).unwrap();
        let n = 40_000;
        let s = swrw.clone().burn_in(500).sample(&pg.graph, n, &mut rng);
        let small = s
            .iter()
            .filter(|&&v| pg.partition.category_of(v) == 0)
            .count() as f64
            / n as f64;
        assert!(
            small > 0.3,
            "small category share {small}, expected strong oversampling vs 0.11"
        );
    }

    #[test]
    fn stationary_weights_match_visit_frequencies() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = PlantedConfig {
            category_sizes: vec![30, 60],
            k: 4,
            alpha: 0.0,
        };
        let pg = planted_partition(&cfg, &mut rng).unwrap();
        let swrw = Swrw::equal_category_target(&pg.graph, &pg.partition).unwrap();
        let n = 400_000;
        let s = swrw.clone().burn_in(1000).sample(&pg.graph, n, &mut rng);
        let mut counts = vec![0usize; pg.graph.num_nodes()];
        for v in &s {
            counts[*v as usize] += 1;
        }
        let total_w: f64 = (0..pg.graph.num_nodes())
            .map(|v| swrw.weight_of(&pg.graph, v as NodeId))
            .sum();
        // Check a handful of nodes against their theoretical frequency.
        for v in [0u32, 10, 40, 80] {
            let expect = swrw.weight_of(&pg.graph, v) / total_w;
            let got = counts[v as usize] as f64 / n as f64;
            assert!(
                (got - expect).abs() < 0.3 * expect + 0.002,
                "node {v}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn zero_volume_category_gets_zero_weight() {
        // Category 1 has an isolated node only.
        let g = GraphBuilder::from_edges(3, [(0, 2)]).unwrap();
        let p = Partition::from_assignments(vec![0, 1, 0], 2).unwrap();
        let swrw = Swrw::equal_category_target(&g, &p).unwrap();
        assert_eq!(swrw.category_weight(1), 0.0);
        assert!(swrw.category_weight(0) > 0.0);
    }

    #[test]
    fn builder_methods_chain() {
        let p = Partition::trivial(4);
        let g = GraphBuilder::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let swrw = Swrw::new(&p, vec![1.0])
            .unwrap()
            .burn_in(5)
            .thinning(2)
            .start_at(0);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(swrw.sample(&g, 7, &mut rng).len(), 7);
        assert_eq!(swrw.design(), DesignKind::Weighted);
    }
}
