//! Metropolis–Hastings random walk (§3.1.2).

use crate::random_walk::random_start;
use crate::{DesignKind, NodeSampler, SampleError, WalkStats};
use cgte_graph::{Graph, NodeId};
use rand::Rng;

/// Metropolis–Hastings Random Walk (MHRW) targeting the uniform
/// distribution.
///
/// From node `u`, propose a uniform neighbor `v` and accept with probability
/// `min(1, deg(u)/deg(v))`; on rejection the walk *stays at `u`*, and the
/// repeated visit is retained as a sample — that self-transition is exactly
/// what makes the stationary distribution uniform.
///
/// The paper (and \[20, 51\]) found RW-with-reweighting to outperform MHRW for
/// most tasks; MHRW is included as the baseline it is compared against in
/// Fig. 6.
#[derive(Debug, Clone, Copy)]
pub struct MetropolisHastingsWalk {
    burn_in: usize,
    thinning: usize,
    start: Option<NodeId>,
}

impl Default for MetropolisHastingsWalk {
    fn default() -> Self {
        Self::new()
    }
}

impl MetropolisHastingsWalk {
    /// MHRW with no burn-in, no thinning, random start.
    pub fn new() -> Self {
        MetropolisHastingsWalk {
            burn_in: 0,
            thinning: 1,
            start: None,
        }
    }

    /// Discards the first `steps` visited nodes.
    pub fn burn_in(mut self, steps: usize) -> Self {
        self.burn_in = steps;
        self
    }

    /// Keeps only every `t`-th node (`t >= 1`).
    ///
    /// # Panics
    /// Panics if `t == 0`.
    pub fn thinning(mut self, t: usize) -> Self {
        assert!(t >= 1, "thinning factor must be at least 1");
        self.thinning = t;
        self
    }

    /// Fixes the starting node.
    pub fn start_at(mut self, v: NodeId) -> Self {
        self.start = Some(v);
        self
    }

    /// One MH transition; `true` iff the proposal was accepted. The RNG
    /// draw sequence is fixed (proposal, then acceptance coin when
    /// needed) so counted and uncounted paths are interchangeable.
    fn step<R: Rng + ?Sized>(g: &Graph, u: NodeId, rng: &mut R) -> (NodeId, bool) {
        let nbrs = g.neighbors(u);
        assert!(!nbrs.is_empty(), "walk reached an isolated node {u}");
        let v = nbrs[rng.gen_range(0..nbrs.len())];
        let accept = g.degree(u) as f64 / g.degree(v) as f64;
        if accept >= 1.0 || rng.gen::<f64>() < accept {
            (v, true)
        } else {
            (u, false)
        }
    }
}

impl NodeSampler for MetropolisHastingsWalk {
    // Rejections are counted inline in the one walk loop; the wrapper
    // entry points are the trait defaults over this core.
    fn try_sample_into_stats<R: Rng + ?Sized>(
        &self,
        g: &Graph,
        n: usize,
        rng: &mut R,
        out: &mut Vec<NodeId>,
        stats: &mut WalkStats,
    ) -> Result<(), SampleError> {
        out.clear();
        out.reserve(n);
        let mut rejections = 0usize;
        let mut cur = match self.start {
            Some(v) => v,
            None => random_start(g, rng)?,
        };
        for _ in 0..self.burn_in {
            let (next, accepted) = Self::step(g, cur, rng);
            rejections += usize::from(!accepted);
            cur = next;
        }
        while out.len() < n {
            out.push(cur);
            for _ in 0..self.thinning {
                let (next, accepted) = Self::step(g, cur, rng);
                rejections += usize::from(!accepted);
                cur = next;
            }
        }
        *stats = WalkStats {
            retained: out.len(),
            steps: self.burn_in + n * self.thinning,
            burn_in: self.burn_in,
            thinning: self.thinning,
            rejections,
        };
        Ok(())
    }

    fn design(&self) -> DesignKind {
        DesignKind::Uniform
    }

    fn weight_of(&self, _g: &Graph, _v: NodeId) -> f64 {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgte_graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn lollipop() -> Graph {
        GraphBuilder::from_edges(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]).unwrap()
    }

    #[test]
    fn sample_into_matches_sample() {
        let g = lollipop();
        let w = MetropolisHastingsWalk::new().burn_in(5).thinning(3);
        let v = w.sample(&g, 40, &mut StdRng::seed_from_u64(77));
        let mut buf = Vec::with_capacity(40);
        w.sample_into(&g, 40, &mut StdRng::seed_from_u64(77), &mut buf);
        assert_eq!(v, buf);
    }

    #[test]
    fn stationary_distribution_is_uniform() {
        let g = lollipop();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 300_000;
        let s = MetropolisHastingsWalk::new()
            .burn_in(200)
            .sample(&g, n, &mut rng);
        let mut counts = [0usize; 5];
        for v in s {
            counts[v as usize] += 1;
        }
        for (v, &c) in counts.iter().enumerate() {
            let got = c as f64 / n as f64;
            assert!(
                (got - 0.2).abs() < 0.01,
                "node {v}: frequency {got} should be ~0.2"
            );
        }
    }

    #[test]
    fn consecutive_samples_are_neighbors_or_equal() {
        let g = lollipop();
        let mut rng = StdRng::seed_from_u64(2);
        let s = MetropolisHastingsWalk::new().sample(&g, 500, &mut rng);
        for w in s.windows(2) {
            assert!(
                w[0] == w[1] || g.has_edge(w[0], w[1]),
                "{} -> {} invalid MHRW move",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn rejections_produce_repeats() {
        // From the high-degree node 2 (deg 3), moves to leaf-adjacent node 3
        // (deg 2) are always accepted, but moves *from* 4 (deg 1) to 3
        // (deg 2) are accepted only half the time, so repeats must occur.
        let g = lollipop();
        let mut rng = StdRng::seed_from_u64(3);
        let s = MetropolisHastingsWalk::new().sample(&g, 2000, &mut rng);
        let repeats = s.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(repeats > 0, "MHRW on a degree-diverse graph must self-loop");
    }

    #[test]
    fn design_is_uniform_with_unit_weights() {
        let g = lollipop();
        let m = MetropolisHastingsWalk::new();
        assert_eq!(m.design(), DesignKind::Uniform);
        assert_eq!(m.weight_of(&g, 2), 1.0);
    }

    #[test]
    fn burn_in_and_thinning_apply() {
        let g = lollipop();
        let mut rng = StdRng::seed_from_u64(4);
        let s = MetropolisHastingsWalk::new()
            .burn_in(10)
            .thinning(3)
            .sample(&g, 100, &mut rng);
        assert_eq!(s.len(), 100);
    }

    #[test]
    fn stats_path_draws_identical_sequence_and_counts_rejections() {
        let g = lollipop();
        let w = MetropolisHastingsWalk::new().burn_in(5).thinning(3);
        let plain = w.sample(&g, 500, &mut StdRng::seed_from_u64(21));
        let mut buf = Vec::new();
        let mut stats = WalkStats::default();
        w.try_sample_into_stats(
            &g,
            500,
            &mut StdRng::seed_from_u64(21),
            &mut buf,
            &mut stats,
        )
        .unwrap();
        assert_eq!(plain, buf, "counting must not perturb the walk");
        assert_eq!(stats.retained, 500);
        assert_eq!(stats.steps, 5 + 500 * 3);
        assert_eq!((stats.burn_in, stats.thinning), (5, 3));
        assert!(stats.rejections > 0, "degree-diverse graph must reject");
        assert!(stats.rejections < stats.steps);

        // With no burn-in/thinning, every rejection shows as a repeat in
        // the retained sequence (no self-loops), except possibly in the
        // one trailing transition taken after the last retained node.
        let w = MetropolisHastingsWalk::new();
        let mut stats = WalkStats::default();
        w.try_sample_into_stats(
            &g,
            2000,
            &mut StdRng::seed_from_u64(3),
            &mut buf,
            &mut stats,
        )
        .unwrap();
        let repeats = buf.windows(2).filter(|p| p[0] == p[1]).count();
        assert!(
            stats.rejections == repeats || stats.rejections == repeats + 1,
            "rejections {} vs visible repeats {repeats}",
            stats.rejections
        );
    }

    #[test]
    fn regular_graph_never_rejects() {
        // 4-cycle: all degrees equal, acceptance always 1 => no repeats
        // unless the proposal itself repeats (impossible without self-loops).
        let g = GraphBuilder::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let s = MetropolisHastingsWalk::new().sample(&g, 1000, &mut rng);
        assert!(s.windows(2).all(|w| w[0] != w[1]));
    }
}
