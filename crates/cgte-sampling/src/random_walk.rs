//! Simple random walk sampling (§3.1.2).

use crate::{DesignKind, NodeSampler, SampleError, WalkStats};
use cgte_graph::{Graph, NodeId};
use rand::Rng;

/// Picks a uniform starting node among those with at least one edge.
///
/// Rejection sampling is bounded: on graphs dominated by isolated nodes
/// (where naive rejection could loop for an arbitrarily long time), the
/// non-isolated node list is materialized after a fixed number of misses
/// and the start is drawn from it directly. Graphs where most nodes have
/// edges keep the allocation-free fast path.
///
/// Unusable graphs — no nodes, or no edges so the fallback list would be
/// empty and no walk could move — surface as a typed [`SampleError`]
/// rather than a panic, so services can reject the request instead of
/// losing a worker thread.
pub(crate) fn random_start<R: Rng + ?Sized>(g: &Graph, rng: &mut R) -> Result<NodeId, SampleError> {
    if g.num_nodes() == 0 {
        return Err(SampleError::EmptyGraph);
    }
    if g.num_edges() == 0 {
        return Err(SampleError::EdgelessGraph);
    }
    const MAX_REJECTIONS: usize = 64;
    for _ in 0..MAX_REJECTIONS {
        let v = rng.gen_range(0..g.num_nodes() as NodeId);
        if g.degree(v) > 0 {
            return Ok(v);
        }
    }
    // 64 straight misses: isolated nodes dominate. Draw uniformly from the
    // explicit non-isolated list instead (non-empty: the graph has edges).
    let non_isolated: Vec<NodeId> = g.nodes().filter(|&v| g.degree(v) > 0).collect();
    Ok(non_isolated[rng.gen_range(0..non_isolated.len())])
}

/// Simple Random Walk (RW): the next node is a uniform random neighbor of
/// the current one.
///
/// On a connected, aperiodic graph the stationary distribution is
/// `π(v) ∝ deg(v)` \[41\], so [`NodeSampler::weight_of`] reports the degree
/// and the §5 estimators correct for it (§5.4).
///
/// `burn_in` initial steps are discarded; with `thinning = T`, only every
/// T-th visited node is retained (§5.4 discusses thinning as a correlation
/// reduction that discards information — ablation A2 quantifies it).
#[derive(Debug, Clone, Copy)]
pub struct RandomWalk {
    burn_in: usize,
    thinning: usize,
    start: Option<NodeId>,
}

impl Default for RandomWalk {
    fn default() -> Self {
        Self::new()
    }
}

impl RandomWalk {
    /// RW with no burn-in, no thinning, random start.
    pub fn new() -> Self {
        RandomWalk {
            burn_in: 0,
            thinning: 1,
            start: None,
        }
    }

    /// Discards the first `steps` visited nodes.
    pub fn burn_in(mut self, steps: usize) -> Self {
        self.burn_in = steps;
        self
    }

    /// Keeps only every `t`-th node (`t >= 1`).
    ///
    /// # Panics
    /// Panics if `t == 0`.
    pub fn thinning(mut self, t: usize) -> Self {
        assert!(t >= 1, "thinning factor must be at least 1");
        self.thinning = t;
        self
    }

    /// Fixes the starting node instead of drawing one at random.
    pub fn start_at(mut self, v: NodeId) -> Self {
        self.start = Some(v);
        self
    }

    fn step<R: Rng + ?Sized>(g: &Graph, u: NodeId, rng: &mut R) -> NodeId {
        let nbrs = g.neighbors(u);
        assert!(!nbrs.is_empty(), "walk reached an isolated node {u}");
        nbrs[rng.gen_range(0..nbrs.len())]
    }
}

impl NodeSampler for RandomWalk {
    // RW never rejects, so the stats are pure arithmetic on top of the
    // plain walk loop — zero per-step overhead, and the wrapper entry
    // points (`sample`, `sample_into`, `try_sample_into`) inherit the
    // identical RNG sequence from the trait defaults.
    fn try_sample_into_stats<R: Rng + ?Sized>(
        &self,
        g: &Graph,
        n: usize,
        rng: &mut R,
        out: &mut Vec<NodeId>,
        stats: &mut WalkStats,
    ) -> Result<(), SampleError> {
        out.clear();
        out.reserve(n);
        let mut cur = match self.start {
            Some(v) => v,
            None => random_start(g, rng)?,
        };
        for _ in 0..self.burn_in {
            cur = Self::step(g, cur, rng);
        }
        while out.len() < n {
            out.push(cur);
            for _ in 0..self.thinning {
                cur = Self::step(g, cur, rng);
            }
        }
        *stats = WalkStats {
            retained: out.len(),
            steps: self.burn_in + n * self.thinning,
            burn_in: self.burn_in,
            thinning: self.thinning,
            rejections: 0,
        };
        Ok(())
    }

    fn design(&self) -> DesignKind {
        DesignKind::Weighted
    }

    fn weight_of(&self, g: &Graph, v: NodeId) -> f64 {
        g.degree(v) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgte_graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn lollipop() -> Graph {
        // Triangle {0,1,2} plus a path 2-3-4: degrees 2,2,3,2,1.
        GraphBuilder::from_edges(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]).unwrap()
    }

    #[test]
    fn sample_into_matches_sample_and_reuses_buffer() {
        let g = lollipop();
        let rw = RandomWalk::new().burn_in(7).thinning(2);
        let v = rw.sample(&g, 50, &mut StdRng::seed_from_u64(31));
        let mut buf = Vec::new();
        rw.sample_into(&g, 50, &mut StdRng::seed_from_u64(31), &mut buf);
        assert_eq!(v, buf);
        let cap = buf.capacity();
        rw.sample_into(&g, 50, &mut StdRng::seed_from_u64(32), &mut buf);
        assert_eq!(buf.capacity(), cap, "second draw must reuse the buffer");
        assert_eq!(buf.len(), 50);
    }

    #[test]
    fn walk_visits_only_neighbors() {
        let g = lollipop();
        let mut rng = StdRng::seed_from_u64(1);
        let s = RandomWalk::new().sample(&g, 200, &mut rng);
        for w in s.windows(2) {
            assert!(g.has_edge(w[0], w[1]), "{} -> {} not an edge", w[0], w[1]);
        }
    }

    #[test]
    fn stationary_frequencies_proportional_to_degree() {
        let g = lollipop();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 200_000;
        let s = RandomWalk::new().burn_in(100).sample(&g, n, &mut rng);
        let mut counts = [0usize; 5];
        for v in s {
            counts[v as usize] += 1;
        }
        let total_deg = 10.0; // 2*|E|
        for (v, &count) in counts.iter().enumerate() {
            let expect = g.degree(v as NodeId) as f64 / total_deg;
            let got = count as f64 / n as f64;
            assert!(
                (got - expect).abs() < 0.01,
                "node {v}: got {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn thinning_skips_steps() {
        // On a path 0-1-2, a thinned-by-2 walk starting at 0 alternates
        // between even positions in the step sequence.
        let g = GraphBuilder::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let s = RandomWalk::new()
            .start_at(0)
            .thinning(2)
            .sample(&g, 50, &mut rng);
        // Parity argument: every second step from node 0 is at even distance,
        // i.e., node 0 or node 2, never node 1.
        for &v in &s {
            assert_ne!(v, 1, "thinned walk on bipartite path hit odd side");
        }
    }

    #[test]
    fn burn_in_discards_prefix() {
        let g = lollipop();
        let mut rng = StdRng::seed_from_u64(4);
        let s = RandomWalk::new()
            .start_at(4)
            .burn_in(1)
            .sample(&g, 3, &mut rng);
        // After one burn-in step from leaf 4, the walk must be at node 3.
        assert_eq!(s[0], 3);
    }

    #[test]
    fn fixed_start_is_first_sample_without_burn_in() {
        let g = lollipop();
        let mut rng = StdRng::seed_from_u64(5);
        let s = RandomWalk::new().start_at(4).sample(&g, 2, &mut rng);
        assert_eq!(s[0], 4);
    }

    #[test]
    #[should_panic(expected = "edgeless")]
    fn panics_on_edgeless_graph() {
        let g = GraphBuilder::new(3).build();
        let mut rng = StdRng::seed_from_u64(6);
        let _ = RandomWalk::new().sample(&g, 1, &mut rng);
    }

    #[test]
    fn weight_is_degree() {
        let g = lollipop();
        let rw = RandomWalk::new();
        assert_eq!(rw.weight_of(&g, 2), 3.0);
        assert_eq!(rw.weight_of(&g, 4), 1.0);
        assert_eq!(rw.design(), DesignKind::Weighted);
    }

    #[test]
    fn random_start_avoids_isolated_nodes() {
        let g = GraphBuilder::from_edges(4, [(0, 1)]).unwrap(); // 2, 3 isolated
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let v = random_start(&g, &mut rng).unwrap();
            assert!(v == 0 || v == 1);
        }
    }

    #[test]
    fn try_sample_surfaces_typed_errors() {
        use crate::SampleError;
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = Vec::new();
        let edgeless = GraphBuilder::new(3).build();
        assert_eq!(
            RandomWalk::new().try_sample_into(&edgeless, 1, &mut rng, &mut buf),
            Err(SampleError::EdgelessGraph)
        );
        let empty = GraphBuilder::new(0).build();
        assert_eq!(
            RandomWalk::new().try_sample_into(&empty, 1, &mut rng, &mut buf),
            Err(SampleError::EmptyGraph)
        );
        // The checked path draws the identical sequence.
        let g = lollipop();
        let v = RandomWalk::new().sample(&g, 20, &mut StdRng::seed_from_u64(11));
        RandomWalk::new()
            .try_sample_into(&g, 20, &mut StdRng::seed_from_u64(11), &mut buf)
            .unwrap();
        assert_eq!(v, buf);
    }

    #[test]
    fn stats_report_walk_cost_without_perturbing_the_draw() {
        let g = lollipop();
        let rw = RandomWalk::new().burn_in(7).thinning(2);
        let plain = rw.sample(&g, 50, &mut StdRng::seed_from_u64(31));
        let mut buf = Vec::new();
        let mut stats = WalkStats::default();
        rw.try_sample_into_stats(&g, 50, &mut StdRng::seed_from_u64(31), &mut buf, &mut stats)
            .unwrap();
        assert_eq!(plain, buf);
        assert_eq!(
            stats,
            WalkStats {
                retained: 50,
                steps: 7 + 50 * 2,
                burn_in: 7,
                thinning: 2,
                rejections: 0,
            }
        );
    }

    #[test]
    fn random_start_bounded_on_isolation_dominated_graph() {
        // One edge among a sea of isolated nodes: naive rejection would
        // expect ~50k misses per draw; the bounded fallback must terminate
        // quickly and still return only the two connected nodes.
        let g = GraphBuilder::from_edges(100_000, [(123, 456)]).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..20 {
            let v = random_start(&g, &mut rng).unwrap();
            assert!(v == 123 || v == 456);
        }
    }
}
