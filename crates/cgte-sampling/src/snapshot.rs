//! `.cgtes` — durable snapshots of in-flight observation streams.
//!
//! The accumulators' `(node, weight)` push log is the distributed-systems
//! primitive of this codebase: replaying a log through the same `push`
//! path reaches bit-identical state (the merge law). A snapshot therefore
//! only needs to persist the log — restoring is a replay, and
//! `snapshot → restore → continue ingesting` is bit-identical to an
//! uninterrupted stream by construction (property-tested in
//! `tests/snapshot_roundtrip.rs`).
//!
//! The on-disk format reuses the `.cgteg` container machinery from
//! [`cgte_graph::store`] verbatim — named, typed, individually
//! FNV-checksummed sections — under its own magic (`CGTES\0`), so
//! truncation and bit rot fail with the same clean [`StoreError`]s the
//! graph store is exhaustively tested for. Consumers (the `cgte-serve`
//! session snapshots) add their own metadata sections next to the log;
//! this module owns only the stream payload.

use crate::observe::ObservationContext;
use crate::stream::ObservationStream;
use cgte_graph::store::{Container, Section, SectionData, StoreError};
use std::io::{Read, Write};

/// File magic of a `.cgtes` session snapshot.
pub const MAGIC: &[u8; 6] = b"CGTES\0";
/// Current snapshot format version.
pub const VERSION: u16 = 1;

/// Section name of the pushed node ids (u32, one per sample, in order).
pub const SEC_LOG_NODES: &str = "log.nodes";
/// Section name of the pushed design weights (f64, parallel to
/// [`SEC_LOG_NODES`]; bit-exact round trip).
pub const SEC_LOG_WEIGHTS: &str = "log.weights";
/// Section name of the category count the stream was opened with (u64,
/// one element) — checked against the restoring context.
pub const SEC_CATEGORIES: &str = "log.categories";

/// Encodes a stream's push log as container sections.
///
/// Both wrapped accumulators log the same pushes in lockstep, so one log
/// reconstructs the pair.
pub fn stream_sections(stream: &ObservationStream) -> Vec<Section> {
    let log = stream.log();
    let mut nodes = Vec::with_capacity(log.len());
    let mut weights = Vec::with_capacity(log.len());
    for &(v, w) in log {
        nodes.push(v);
        weights.push(w);
    }
    vec![
        Section::u64s(SEC_CATEGORIES, vec![stream.num_categories() as u64]),
        Section::u32s(SEC_LOG_NODES, nodes),
        Section::f64s(SEC_LOG_WEIGHTS, weights),
    ]
}

/// Rebuilds a stream from a container's log sections by replaying every
/// `(node, weight)` through the push path — bit-identical to the stream
/// that was snapshotted (and to one that never stopped).
///
/// All invariants a replay relies on are proven first — section presence
/// and types, equal lengths, the recorded category count matching the
/// context, node ids in range, weights positive and finite — so hostile
/// or stale input fails with a typed error before any state is touched.
pub fn stream_from_container(
    c: &Container,
    ctx: &ObservationContext<'_>,
) -> Result<ObservationStream, StoreError> {
    let cats = c.u64s(SEC_CATEGORIES)?;
    if cats.len() != 1 {
        return Err(StoreError::Format(format!(
            "section {SEC_CATEGORIES:?} must hold exactly one count, got {}",
            cats.len()
        )));
    }
    if cats[0] as usize != ctx.num_categories() {
        return Err(StoreError::Graph(format!(
            "snapshot observed {} categories, context has {}",
            cats[0],
            ctx.num_categories()
        )));
    }
    let nodes = match c.get(SEC_LOG_NODES) {
        Some(SectionData::U32(v)) => v,
        Some(_) => {
            return Err(StoreError::Format(format!(
                "section {SEC_LOG_NODES:?} is not u32"
            )))
        }
        None => {
            return Err(StoreError::Format(format!(
                "missing section {SEC_LOG_NODES:?}"
            )))
        }
    };
    let weights = c.f64s(SEC_LOG_WEIGHTS)?;
    if nodes.len() != weights.len() {
        return Err(StoreError::Format(format!(
            "log length mismatch: {} nodes vs {} weights",
            nodes.len(),
            weights.len()
        )));
    }
    let n = ctx.graph().num_nodes() as u64;
    for (&v, &w) in nodes.iter().zip(weights) {
        if (v as u64) >= n {
            return Err(StoreError::Graph(format!(
                "logged node {v} out of range (graph has {n} nodes)"
            )));
        }
        if !(w.is_finite() && w > 0.0) {
            return Err(StoreError::Graph(format!(
                "logged weight {w} for node {v} is not positive and finite"
            )));
        }
    }
    let mut stream = ObservationStream::new(ctx.num_categories());
    stream.ingest(ctx, nodes, weights);
    Ok(stream)
}

/// Writes a container as a `.cgtes` stream (the `CGTES\0` magic over the
/// shared section framing).
pub fn write_snapshot<W: Write>(w: W, c: &Container) -> std::io::Result<()> {
    c.write_to_magic(w, MAGIC, VERSION)
}

/// Reads a `.cgtes` stream back, verifying magic, version and every
/// per-section checksum. Corrupted or truncated input is a typed error,
/// never a panic.
pub fn read_snapshot<R: Read>(r: R) -> Result<Container, StoreError> {
    Container::read_from_magic(r, MAGIC, VERSION)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DesignKind, RandomWalk};
    use cgte_graph::{GraphBuilder, Partition};

    fn fixture() -> (cgte_graph::Graph, Partition) {
        let g =
            GraphBuilder::from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
                .unwrap();
        let p = Partition::from_assignments(vec![0, 0, 0, 1, 1, 1], 2).unwrap();
        (g, p)
    }

    #[test]
    fn snapshot_restore_is_bit_identical() {
        let (g, p) = fixture();
        let ctx = ObservationContext::new(&g, &p);
        let mut s = ObservationStream::new(2);
        s.ingest_sampler(
            &ctx,
            &[2, 3, 0, 5, 1, 4],
            &RandomWalk::new(),
            DesignKind::Weighted,
        );
        let mut c = Container::new();
        for sec in stream_sections(&s) {
            c.push(sec);
        }
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &c).unwrap();
        let back = read_snapshot(&buf[..]).unwrap();
        let restored = stream_from_container(&back, &ctx).unwrap();
        assert_eq!(restored, s);
    }

    #[test]
    fn graph_magic_is_rejected() {
        let c = Container::new();
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap(); // .cgteg magic
        let err = read_snapshot(&buf[..]).unwrap_err();
        assert!(matches!(err, StoreError::Format(_)), "{err}");
    }

    #[test]
    fn out_of_range_node_and_bad_weight_rejected() {
        let (g, p) = fixture();
        let ctx = ObservationContext::new(&g, &p);
        for (nodes, weights) in [
            (vec![99u32], vec![1.0]),
            (vec![1], vec![0.0]),
            (vec![1], vec![f64::NAN]),
            (vec![1, 2], vec![1.0]),
        ] {
            let mut c = Container::new();
            c.push(Section::u64s(SEC_CATEGORIES, vec![2]));
            c.push(Section::u32s(SEC_LOG_NODES, nodes));
            c.push(Section::f64s(SEC_LOG_WEIGHTS, weights));
            assert!(stream_from_container(&c, &ctx).is_err());
        }
        // Category-count mismatch.
        let mut c = Container::new();
        c.push(Section::u64s(SEC_CATEGORIES, vec![7]));
        c.push(Section::u32s(SEC_LOG_NODES, vec![]));
        c.push(Section::f64s(SEC_LOG_WEIGHTS, vec![]));
        assert!(stream_from_container(&c, &ctx).is_err());
    }
}
