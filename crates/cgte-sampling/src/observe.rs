//! Observation scenarios (§3.2): what a measurement records about a sample.
//!
//! Estimators never see the graph — they see one of these observation
//! structures, exactly the information a real crawler would have collected.
//!
//! Two consumption styles are supported:
//!
//! - **Materialized observations** ([`InducedSample`], [`StarSample`]):
//!   self-contained records handed to the design-based estimators.
//! - **Incremental accumulators** ([`InducedAccumulator`],
//!   [`StarAccumulator`]): running sufficient statistics that support
//!   `push(node)` in `O(deg)` and an `O(C²)` snapshot, so growing-prefix
//!   protocols walk a sampled sequence *once* instead of re-observing every
//!   prefix. Backed by an [`ObservationContext`] that caches each node's
//!   neighbor-category histogram across replications.

use crate::NodeSampler;
use cgte_graph::{CategoryId, CategoryMatrix, Graph, NodeId, Partition};
use std::collections::HashMap;

fn categories_of(p: &Partition, nodes: &[NodeId]) -> Vec<CategoryId> {
    nodes.iter().map(|&v| p.category_of(v)).collect()
}

fn degrees_of(g: &Graph, nodes: &[NodeId]) -> Vec<u32> {
    nodes.iter().map(|&v| g.degree(v) as u32).collect()
}

/// An induced-subgraph observation (§3.2.1, Fig. 2(a)): for each sampled
/// node its category, degree and design weight, plus every edge *between
/// sampled nodes* — and nothing about unsampled nodes.
///
/// The sample is a multiset: the same node may appear at several indices,
/// and edges between repeated nodes are recorded once per index pair,
/// matching the multiplicity semantics of Eq. (8).
#[derive(Debug, Clone, PartialEq)]
pub struct InducedSample {
    nodes: Vec<NodeId>,
    categories: Vec<CategoryId>,
    degrees: Vec<u32>,
    weights: Vec<f64>,
    /// Sample-index pairs `(i, j)`, `i < j`, whose nodes are adjacent in G.
    edges: Vec<(u32, u32)>,
    num_categories: usize,
}

impl InducedSample {
    /// Observes `nodes` under a uniform design (all weights 1).
    pub fn observe(g: &Graph, p: &Partition, nodes: &[NodeId]) -> Self {
        Self::observe_with_weights(g, p, nodes, vec![1.0; nodes.len()])
    }

    /// Observes `nodes` with explicit design weights `w(v)` per sample.
    ///
    /// # Panics
    /// Panics if `weights.len() != nodes.len()`, if the partition does not
    /// cover the graph, or if a weight is non-positive or non-finite.
    pub fn observe_with_weights(
        g: &Graph,
        p: &Partition,
        nodes: &[NodeId],
        weights: Vec<f64>,
    ) -> Self {
        assert_eq!(weights.len(), nodes.len(), "one weight per sample");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w > 0.0),
            "sampled nodes must have positive finite design weights"
        );
        p.check_covers(g).expect("partition must cover graph");
        // Index the sample multiset by node.
        let mut at: HashMap<NodeId, Vec<u32>> = HashMap::new();
        for (i, &v) in nodes.iter().enumerate() {
            at.entry(v).or_default().push(i as u32);
        }
        // Induced edges with multiset multiplicity: iterate each distinct
        // sampled node's adjacency once (O(Σ deg) total).
        let mut edges = Vec::new();
        for (&u, iu) in &at {
            for &v in g.neighbors(u) {
                if v <= u {
                    continue; // count each unordered node pair once
                }
                if let Some(iv) = at.get(&v) {
                    for &i in iu {
                        for &j in iv {
                            edges.push(if i < j { (i, j) } else { (j, i) });
                        }
                    }
                }
            }
        }
        edges.sort_unstable();
        InducedSample {
            categories: categories_of(p, nodes),
            degrees: degrees_of(g, nodes),
            nodes: nodes.to_vec(),
            weights,
            edges,
            num_categories: p.num_categories(),
        }
    }

    /// Observes `nodes` with the weights reported by `sampler`.
    pub fn observe_sampler<S: NodeSampler + ?Sized>(
        g: &Graph,
        p: &Partition,
        nodes: &[NodeId],
        sampler: &S,
    ) -> Self {
        Self::observe_with_weights(g, p, nodes, sampler.weights_for(g, nodes))
    }

    /// Number of samples `n = |S|` (with multiplicity).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of categories of the underlying partition.
    pub fn num_categories(&self) -> usize {
        self.num_categories
    }

    /// Sampled node ids, in draw order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Category of each sample.
    pub fn categories(&self) -> &[CategoryId] {
        &self.categories
    }

    /// Degree of each sample (known to a crawler from the friend list).
    pub fn degrees(&self) -> &[u32] {
        &self.degrees
    }

    /// Design weight of each sample.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Observed edges as sample-index pairs `(i, j)`, `i < j`.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// A copy of this observation with all design weights reset to 1,
    /// i.e. reinterpreted as a uniform sample (used by
    /// `Design::Uniform` in `cgte-core`).
    pub fn with_unit_weights(&self) -> InducedSample {
        let mut s = self.clone();
        s.weights = vec![1.0; s.nodes.len()];
        s
    }

    /// Re-observes a bootstrap replicate: `indices` select samples (with
    /// repetition allowed); induced edges are re-derived from the recorded
    /// ones without touching the graph.
    pub fn subsample(&self, indices: &[u32]) -> InducedSample {
        let mut new_at: HashMap<u32, Vec<u32>> = HashMap::new();
        for (new_i, &old_i) in indices.iter().enumerate() {
            new_at.entry(old_i).or_default().push(new_i as u32);
        }
        let mut edges = Vec::new();
        for &(a, b) in &self.edges {
            if let (Some(ia), Some(ib)) = (new_at.get(&a), new_at.get(&b)) {
                for &i in ia {
                    for &j in ib {
                        edges.push(if i < j { (i, j) } else { (j, i) });
                    }
                }
            }
        }
        edges.sort_unstable();
        InducedSample {
            nodes: indices.iter().map(|&i| self.nodes[i as usize]).collect(),
            categories: indices
                .iter()
                .map(|&i| self.categories[i as usize])
                .collect(),
            degrees: indices.iter().map(|&i| self.degrees[i as usize]).collect(),
            weights: indices.iter().map(|&i| self.weights[i as usize]).collect(),
            edges,
            num_categories: self.num_categories,
        }
    }
}

/// A (labeled) star observation (§3.2.2, Fig. 2(b)): everything in
/// [`InducedSample`] *plus*, for each sampled node, the categories of all
/// its neighbors — but not the neighbors' degrees, friend lists, or ties
/// among them (this is *not* egonet sampling).
#[derive(Debug, Clone, PartialEq)]
pub struct StarSample {
    nodes: Vec<NodeId>,
    categories: Vec<CategoryId>,
    degrees: Vec<u32>,
    weights: Vec<f64>,
    /// Per sample: sparse neighbor-category histogram, sorted by category.
    neighbor_cats: Vec<Vec<(CategoryId, u32)>>,
    num_categories: usize,
}

impl StarSample {
    /// Observes `nodes` under a uniform design (all weights 1).
    pub fn observe(g: &Graph, p: &Partition, nodes: &[NodeId]) -> Self {
        Self::observe_with_weights(g, p, nodes, vec![1.0; nodes.len()])
    }

    /// Observes `nodes` with explicit design weights.
    ///
    /// # Panics
    /// Same contract as [`InducedSample::observe_with_weights`].
    pub fn observe_with_weights(
        g: &Graph,
        p: &Partition,
        nodes: &[NodeId],
        weights: Vec<f64>,
    ) -> Self {
        assert_eq!(weights.len(), nodes.len(), "one weight per sample");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w > 0.0),
            "sampled nodes must have positive finite design weights"
        );
        p.check_covers(g).expect("partition must cover graph");
        // Histogram neighbors per *distinct* node once, then share. A dense
        // per-category scratch (reset via the touched list) replaces the
        // per-node hash maps this hot path used to allocate.
        let mut cache: HashMap<NodeId, usize> = HashMap::new();
        let mut arena: Vec<Vec<(CategoryId, u32)>> = Vec::new();
        let mut scratch = HistogramScratch::new(p.num_categories());
        for &v in nodes {
            if let std::collections::hash_map::Entry::Vacant(e) = cache.entry(v) {
                e.insert(arena.len());
                arena.push(scratch.histogram(g, p, v));
            }
        }
        let neighbor_cats: Vec<Vec<(CategoryId, u32)>> =
            nodes.iter().map(|v| arena[cache[v]].clone()).collect();
        StarSample {
            categories: categories_of(p, nodes),
            degrees: degrees_of(g, nodes),
            nodes: nodes.to_vec(),
            weights,
            neighbor_cats,
            num_categories: p.num_categories(),
        }
    }

    /// Observes `nodes` with the weights reported by `sampler`.
    pub fn observe_sampler<S: NodeSampler + ?Sized>(
        g: &Graph,
        p: &Partition,
        nodes: &[NodeId],
        sampler: &S,
    ) -> Self {
        Self::observe_with_weights(g, p, nodes, sampler.weights_for(g, nodes))
    }

    /// Number of samples `n = |S|` (with multiplicity).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of categories of the underlying partition.
    pub fn num_categories(&self) -> usize {
        self.num_categories
    }

    /// Sampled node ids, in draw order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Category of each sample.
    pub fn categories(&self) -> &[CategoryId] {
        &self.categories
    }

    /// Degree of each sample.
    pub fn degrees(&self) -> &[u32] {
        &self.degrees
    }

    /// Design weight of each sample.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Sparse neighbor-category histogram of sample `i`.
    pub fn neighbor_categories(&self, i: usize) -> &[(CategoryId, u32)] {
        &self.neighbor_cats[i]
    }

    /// Number of neighbors of sample `i` in category `c` — the paper's
    /// `|E_{s,C}|`, the size of the edge-cut between node `s` and
    /// category `c`.
    pub fn neighbors_in(&self, i: usize, c: CategoryId) -> u32 {
        self.neighbor_cats[i]
            .binary_search_by_key(&c, |&(cat, _)| cat)
            .map(|pos| self.neighbor_cats[i][pos].1)
            .unwrap_or(0)
    }

    /// A copy of this observation with all design weights reset to 1
    /// (uniform reinterpretation; see `Design::Uniform` in `cgte-core`).
    pub fn with_unit_weights(&self) -> StarSample {
        let mut s = self.clone();
        s.weights = vec![1.0; s.nodes.len()];
        s
    }

    /// Bootstrap replicate: select samples by index (repetition allowed).
    pub fn subsample(&self, indices: &[u32]) -> StarSample {
        StarSample {
            nodes: indices.iter().map(|&i| self.nodes[i as usize]).collect(),
            categories: indices
                .iter()
                .map(|&i| self.categories[i as usize])
                .collect(),
            degrees: indices.iter().map(|&i| self.degrees[i as usize]).collect(),
            weights: indices.iter().map(|&i| self.weights[i as usize]).collect(),
            neighbor_cats: indices
                .iter()
                .map(|&i| self.neighbor_cats[i as usize].clone())
                .collect(),
            num_categories: self.num_categories,
        }
    }

    /// Forgets the star information, yielding the induced-subgraph view of
    /// the same draw — the paper's §7.1 trick for comparing designs on the
    /// same data ("by discarding the information about v's [neighbors]").
    ///
    /// Requires the graph to re-derive induced edges (the star structure
    /// does not store neighbor identities, only their categories).
    pub fn to_induced(&self, g: &Graph, p: &Partition) -> InducedSample {
        InducedSample::observe_with_weights(g, p, &self.nodes, self.weights.clone())
    }
}

/// Dense scratch for building sparse neighbor-category histograms without
/// per-node allocations: a `C`-sized count array reset through a touched
/// list, so each histogram costs `O(deg + t log t)` with `t` distinct
/// neighbor categories.
struct HistogramScratch {
    counts: Vec<u32>,
    touched: Vec<CategoryId>,
}

impl HistogramScratch {
    fn new(num_categories: usize) -> Self {
        HistogramScratch {
            counts: vec![0; num_categories],
            touched: Vec::new(),
        }
    }

    /// The sorted sparse histogram of `v`'s neighbor categories.
    fn histogram(&mut self, g: &Graph, p: &Partition, v: NodeId) -> Vec<(CategoryId, u32)> {
        for &u in g.neighbors(v) {
            let c = p.category_of(u);
            if self.counts[c as usize] == 0 {
                self.touched.push(c);
            }
            self.counts[c as usize] += 1;
        }
        self.touched.sort_unstable();
        let hist: Vec<(CategoryId, u32)> = self
            .touched
            .iter()
            .map(|&c| (c, self.counts[c as usize]))
            .collect();
        for &c in &self.touched {
            self.counts[c as usize] = 0;
        }
        self.touched.clear();
        hist
    }
}

/// The owned, shareable half of an [`ObservationContext`]: every node's
/// sorted neighbor-category histogram in one CSR arena.
///
/// Built once in `O(E + N)`. Long-lived consumers (the `cgte-serve`
/// estimation service) build one index per (graph, partition), keep it in
/// an `Arc`, and stamp out cheap [`ObservationContext::with_index`] views
/// per request — the index has no borrow of the graph, so it composes with
/// `Arc`-held graphs where the borrowing context cannot.
///
/// Indexes over *disjoint node ranges* of the same graph can be
/// [`NeighborCategoryIndex::merge`]d: `build_range(0..k) ⊕ build_range(k..n)`
/// is bit-identical to `build_range(0..n)` (counts are exact integers), so
/// construction parallelizes over node chunks.
#[derive(Debug, Clone, PartialEq)]
pub struct NeighborCategoryIndex {
    num_categories: usize,
    /// First node id covered (`build` starts at 0).
    start: NodeId,
    /// `offsets[v - start]..offsets[v - start + 1]` indexes `entries`.
    offsets: Vec<usize>,
    /// Concatenated sorted `(category, count)` histograms.
    entries: Vec<(CategoryId, u32)>,
}

impl NeighborCategoryIndex {
    /// Precomputes the neighbor-category histogram of every node.
    ///
    /// # Panics
    /// Panics if the partition does not cover the graph.
    pub fn build(g: &Graph, p: &Partition) -> Self {
        Self::build_range(g, p, 0, g.num_nodes() as NodeId)
    }

    /// Precomputes the histograms of nodes `lo..hi` only — one shard of a
    /// chunked parallel build, recombined with
    /// [`NeighborCategoryIndex::merge`].
    ///
    /// # Panics
    /// Panics if the partition does not cover the graph or `lo > hi` or
    /// `hi` exceeds the node count.
    pub fn build_range(g: &Graph, p: &Partition, lo: NodeId, hi: NodeId) -> Self {
        p.check_covers(g).expect("partition must cover graph");
        assert!(
            lo <= hi && hi as usize <= g.num_nodes(),
            "node range {lo}..{hi} out of bounds"
        );
        let mut offsets = Vec::with_capacity((hi - lo) as usize + 1);
        offsets.push(0usize);
        let mut entries = Vec::new();
        let mut scratch = HistogramScratch::new(p.num_categories());
        for v in lo..hi {
            entries.extend(scratch.histogram(g, p, v));
            offsets.push(entries.len());
        }
        NeighborCategoryIndex {
            num_categories: p.num_categories(),
            start: lo,
            offsets,
            entries,
        }
    }

    /// Appends `other`, which must cover the node range starting exactly
    /// where this one ends. Purely integral data, so a chunked build
    /// merged in order is bit-identical to a monolithic one.
    ///
    /// # Panics
    /// Panics if the ranges are not adjacent or the category counts
    /// differ.
    pub fn merge(&mut self, other: &NeighborCategoryIndex) {
        assert_eq!(
            self.num_categories, other.num_categories,
            "index category mismatch"
        );
        assert_eq!(
            self.end(),
            other.start,
            "merged index ranges must be adjacent"
        );
        let base = self.entries.len();
        self.entries.extend_from_slice(&other.entries);
        self.offsets
            .extend(other.offsets[1..].iter().map(|&o| base + o));
    }

    /// First node id covered.
    #[inline]
    pub fn start(&self) -> NodeId {
        self.start
    }

    /// One past the last node id covered.
    #[inline]
    pub fn end(&self) -> NodeId {
        self.start + (self.offsets.len() - 1) as NodeId
    }

    /// Number of categories of the partition this index was built from.
    #[inline]
    pub fn num_categories(&self) -> usize {
        self.num_categories
    }

    /// The sorted neighbor-category histogram of `v`.
    ///
    /// # Panics
    /// Panics if `v` is outside the covered range.
    #[inline]
    pub fn neighbor_categories(&self, v: NodeId) -> &[(CategoryId, u32)] {
        let i = (v - self.start) as usize;
        &self.entries[self.offsets[i]..self.offsets[i + 1]]
    }
}

/// How an [`ObservationContext`] holds its index: built-and-owned (the
/// classic one-shot path) or borrowed from a caller who shares it.
enum IndexRef<'a> {
    Owned(NeighborCategoryIndex),
    Borrowed(&'a NeighborCategoryIndex),
}

/// Immutable per-(graph, partition) observation support: the graph, the
/// partition, and a [`NeighborCategoryIndex`] of every node.
///
/// Built once and shared read-only across replications and worker
/// threads — the graph and partition never change during an experiment,
/// so there is no reason to re-histogram a node's neighborhood per
/// prefix, per replication, or per thread. Services that keep graphs
/// alive across many sessions build the index once and borrow it via
/// [`ObservationContext::with_index`].
pub struct ObservationContext<'a> {
    g: &'a Graph,
    p: &'a Partition,
    index: IndexRef<'a>,
}

impl<'a> ObservationContext<'a> {
    /// Precomputes the neighbor-category histogram of every node.
    ///
    /// # Panics
    /// Panics if the partition does not cover the graph.
    pub fn new(g: &'a Graph, p: &'a Partition) -> Self {
        let index = NeighborCategoryIndex::build(g, p);
        ObservationContext {
            g,
            p,
            index: IndexRef::Owned(index),
        }
    }

    /// A context over a prebuilt full-graph index — `O(1)`, so callers
    /// that cache the index per (graph, partition) can stamp out a view
    /// per request.
    ///
    /// # Panics
    /// Panics if the index does not cover all of `g`'s nodes, or its
    /// category count differs from the partition's.
    pub fn with_index(g: &'a Graph, p: &'a Partition, index: &'a NeighborCategoryIndex) -> Self {
        assert_eq!(
            index.num_categories(),
            p.num_categories(),
            "index/partition category mismatch"
        );
        assert!(
            index.start() == 0 && index.end() as usize == g.num_nodes(),
            "index must cover the whole graph"
        );
        ObservationContext {
            g,
            p,
            index: IndexRef::Borrowed(index),
        }
    }

    /// The underlying graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        self.g
    }

    /// The underlying partition.
    #[inline]
    pub fn partition(&self) -> &Partition {
        self.p
    }

    /// Number of categories of the partition.
    #[inline]
    pub fn num_categories(&self) -> usize {
        self.p.num_categories()
    }

    /// The cached sorted neighbor-category histogram of `v` — the paper's
    /// per-node edge cuts `|E_{v,C}|` for every category `C`.
    #[inline]
    pub fn neighbor_categories(&self, v: NodeId) -> &[(CategoryId, u32)] {
        match &self.index {
            IndexRef::Owned(idx) => idx.neighbor_categories(v),
            IndexRef::Borrowed(idx) => idx.neighbor_categories(v),
        }
    }
}

/// Incremental star-observation statistics (§3.2.2) for growing prefixes.
///
/// Each [`StarAccumulator::push`] folds one sampled node into every running
/// sum the star estimators need — in the *same order and with the same
/// floating-point expressions* as a from-scratch
/// [`StarSample`]-then-estimate pass over the prefix, so snapshots are
/// bit-identical to re-observation (property-tested in cgte-core's
/// estimator suites and, via the merge law, in `tests/merge_law.rs`).
///
/// A prefix experiment over sizes `s_1 < … < s_k` therefore costs
/// `O(s_k · deg)` pushes plus `k` snapshots of `O(C²)` each, instead of
/// `O(Σ s_i · deg)` re-observation work.
///
/// Accumulators are **mergeable**: each one keeps the `(node, weight)` log
/// of its pushes, and [`StarAccumulator::merge`] replays the other shard's
/// log through the same `push` path, so
/// `observe(a); merge(observe(b)) ≡ observe(a ++ b)` holds **bit-exactly**
/// (same operations in the same order — property-tested in
/// `tests/merge_law.rs`). Sharded ingestion (per-thread or per-crawler
/// partial observations) therefore composes into exactly the state a
/// single sequential observer would have reached.
#[derive(Debug, Clone, PartialEq)]
pub struct StarAccumulator {
    num_categories: usize,
    len: usize,
    /// The pushed `(node, weight)` sequence, in order — the merge log.
    log: Vec<(NodeId, f64)>,
    /// `Σ_s |E_{s,c}| / w(s)` per category — the Eq. (7)/(13) numerators.
    nbr_mass: Vec<f64>,
    /// `Σ_s deg(s) / w(s)`.
    deg_mass: f64,
    /// `w⁻¹(S) = Σ_s 1/w(s)`.
    inv_mass: f64,
    /// `w⁻¹(S_c)` per category.
    inv_mass_in: Vec<f64>,
    /// `Σ_{s ∈ S_c} deg(s) / w(s)` per category.
    deg_mass_in: Vec<f64>,
    /// Eq. (9)/(16) numerators per unordered category pair.
    weight_num: CategoryMatrix,
}

impl StarAccumulator {
    /// An empty accumulator over `num_categories` categories.
    pub fn new(num_categories: usize) -> Self {
        StarAccumulator {
            num_categories,
            len: 0,
            log: Vec::new(),
            nbr_mass: vec![0.0; num_categories],
            deg_mass: 0.0,
            inv_mass: 0.0,
            inv_mass_in: vec![0.0; num_categories],
            deg_mass_in: vec![0.0; num_categories],
            weight_num: CategoryMatrix::zeros(num_categories),
        }
    }

    /// Clears all sums, keeping allocations (per-thread scratch reuse).
    pub fn reset(&mut self) {
        self.len = 0;
        self.log.clear();
        self.nbr_mass.fill(0.0);
        self.deg_mass = 0.0;
        self.inv_mass = 0.0;
        self.inv_mass_in.fill(0.0);
        self.deg_mass_in.fill(0.0);
        self.weight_num.reset();
    }

    /// Folds another shard's observations into this one by replaying its
    /// push log in order — `O(Σ deg)` over the other shard's samples, and
    /// bit-identical to having pushed those samples here directly (the
    /// merge law; see the type docs).
    ///
    /// # Panics
    /// Panics if the category counts differ (the shards must observe the
    /// same partition).
    pub fn merge(&mut self, ctx: &ObservationContext<'_>, other: &StarAccumulator) {
        assert_eq!(
            self.num_categories, other.num_categories,
            "merged accumulators must share a category count"
        );
        for &(v, w) in &other.log {
            self.push(ctx, v, w);
        }
    }

    /// The pushed `(node, weight)` sequence, in order. This is what
    /// [`StarAccumulator::merge`] replays, and what consumers needing a
    /// materialized observation (bootstrap resampling) re-observe from.
    #[inline]
    pub fn log(&self) -> &[(NodeId, f64)] {
        &self.log
    }

    /// Folds one sampled node with design weight `w` into the statistics.
    ///
    /// # Panics
    /// Panics if `w` is not positive and finite, or if the context's
    /// category count differs from the accumulator's.
    pub fn push(&mut self, ctx: &ObservationContext<'_>, v: NodeId, w: f64) {
        assert!(
            w.is_finite() && w > 0.0,
            "design weight must be positive and finite"
        );
        assert_eq!(
            ctx.num_categories(),
            self.num_categories,
            "context/category mismatch"
        );
        let c = ctx.partition().category_of(v);
        let d = ctx.graph().degree(v) as f64;
        for &(cat, cnt) in ctx.neighbor_categories(v) {
            let x = cnt as f64 / w;
            self.nbr_mass[cat as usize] += x;
            if cat != c {
                self.weight_num.add(c, cat, x);
            }
        }
        self.deg_mass += d / w;
        self.inv_mass += 1.0 / w;
        self.inv_mass_in[c as usize] += 1.0 / w;
        self.deg_mass_in[c as usize] += d / w;
        self.log.push((v, w));
        self.len += 1;
    }

    /// Number of pushed samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no samples were pushed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of categories.
    #[inline]
    pub fn num_categories(&self) -> usize {
        self.num_categories
    }

    /// `Σ_s |E_{s,c}| / w(s)` per category.
    #[inline]
    pub fn neighbor_mass(&self) -> &[f64] {
        &self.nbr_mass
    }

    /// `Σ_s deg(s) / w(s)`.
    #[inline]
    pub fn degree_mass(&self) -> f64 {
        self.deg_mass
    }

    /// `w⁻¹(S)`.
    #[inline]
    pub fn inverse_mass(&self) -> f64 {
        self.inv_mass
    }

    /// `w⁻¹(S_c)` per category.
    #[inline]
    pub fn inverse_mass_in(&self) -> &[f64] {
        &self.inv_mass_in
    }

    /// `Σ_{s ∈ S_c} deg(s) / w(s)` per category.
    #[inline]
    pub fn degree_mass_in(&self) -> &[f64] {
        &self.deg_mass_in
    }

    /// Eq. (9)/(16) weight-estimator numerators per unordered pair.
    #[inline]
    pub fn weight_numerators(&self) -> &CategoryMatrix {
        &self.weight_num
    }
}

/// Incremental induced-subgraph statistics (§3.2.1) for growing prefixes.
///
/// [`InducedAccumulator::push`] costs `O(deg)`: it scans the node's
/// neighbors and, for each neighbor already in the sample, folds the
/// pair's reweighted contribution into the Eq. (8)/(15) numerator matrix.
/// The per-node running mass `Σ 1/w` over earlier occurrences makes the
/// cost independent of how often a walk revisits nodes. Snapshots are
/// bit-identical to a from-scratch [`InducedSample`]-then-estimate pass
/// (see `induced_weights_all`, which replays the same summation order).
///
/// Like [`StarAccumulator`], this accumulator is mergeable via its push
/// log ([`InducedAccumulator::merge`]); here replay is not merely an
/// FP-exactness trick but semantically required — an edge between a node
/// in shard `a` and a node in shard `b` is visible to neither shard alone,
/// and only re-pushing `b`'s samples against `a`'s `node_mass` recovers
/// the cross-shard pair contributions of `observe(a ++ b)`.
#[derive(Debug, Clone, PartialEq)]
pub struct InducedAccumulator {
    num_categories: usize,
    len: usize,
    /// The pushed `(node, weight)` sequence, in order — the merge log.
    log: Vec<(NodeId, f64)>,
    /// `w⁻¹(S_c)` per category — Eq. (4)/(11) numerators.
    per_cat_mass: Vec<f64>,
    /// `w⁻¹(S)`.
    inv_mass: f64,
    /// Running `Σ 1/w` over the occurrences of each sampled node.
    node_mass: HashMap<NodeId, f64>,
    /// Eq. (8)/(15) numerators per unordered category pair.
    weight_num: CategoryMatrix,
}

impl InducedAccumulator {
    /// An empty accumulator over `num_categories` categories.
    pub fn new(num_categories: usize) -> Self {
        InducedAccumulator {
            num_categories,
            len: 0,
            log: Vec::new(),
            per_cat_mass: vec![0.0; num_categories],
            inv_mass: 0.0,
            node_mass: HashMap::new(),
            weight_num: CategoryMatrix::zeros(num_categories),
        }
    }

    /// Clears all sums, keeping allocations.
    pub fn reset(&mut self) {
        self.len = 0;
        self.log.clear();
        self.per_cat_mass.fill(0.0);
        self.inv_mass = 0.0;
        self.node_mass.clear();
        self.weight_num.reset();
    }

    /// Folds another shard's observations into this one by replaying its
    /// push log in order; cross-shard adjacent pairs are discovered here,
    /// so the result is exactly (bit-identically) the state of a single
    /// accumulator pushed with `self`'s samples then `other`'s.
    ///
    /// # Panics
    /// Panics if the category counts differ.
    pub fn merge(&mut self, ctx: &ObservationContext<'_>, other: &InducedAccumulator) {
        assert_eq!(
            self.num_categories, other.num_categories,
            "merged accumulators must share a category count"
        );
        for &(v, w) in &other.log {
            self.push(ctx, v, w);
        }
    }

    /// The pushed `(node, weight)` sequence, in order.
    #[inline]
    pub fn log(&self) -> &[(NodeId, f64)] {
        &self.log
    }

    /// Folds one sampled node with design weight `w` into the statistics.
    ///
    /// # Panics
    /// Panics if `w` is not positive and finite, or if the context's
    /// category count differs from the accumulator's.
    pub fn push(&mut self, ctx: &ObservationContext<'_>, v: NodeId, w: f64) {
        assert!(
            w.is_finite() && w > 0.0,
            "design weight must be positive and finite"
        );
        assert_eq!(
            ctx.num_categories(),
            self.num_categories,
            "context/category mismatch"
        );
        let c = ctx.partition().category_of(v);
        let w_inv = 1.0 / w;
        // Neighbors are scanned in ascending node-id order; the running
        // mass of each adjacent sampled node aggregates all its earlier
        // occurrences, matching the grouped summation order of the
        // from-scratch `induced_weights_all` exactly.
        for &u in ctx.graph().neighbors(v) {
            if let Some(&m) = self.node_mass.get(&u) {
                let cu = ctx.partition().category_of(u);
                if cu != c {
                    self.weight_num.add(c, cu, w_inv * m);
                }
            }
        }
        *self.node_mass.entry(v).or_insert(0.0) += w_inv;
        self.per_cat_mass[c as usize] += w_inv;
        self.inv_mass += w_inv;
        self.log.push((v, w));
        self.len += 1;
    }

    /// Number of pushed samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no samples were pushed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of categories.
    #[inline]
    pub fn num_categories(&self) -> usize {
        self.num_categories
    }

    /// `w⁻¹(S_c)` per category.
    #[inline]
    pub fn per_category_mass(&self) -> &[f64] {
        &self.per_cat_mass
    }

    /// `w⁻¹(S)`.
    #[inline]
    pub fn inverse_mass(&self) -> f64 {
        self.inv_mass
    }

    /// Eq. (8)/(15) weight-estimator numerators per unordered pair.
    #[inline]
    pub fn weight_numerators(&self) -> &CategoryMatrix {
        &self.weight_num
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgte_graph::GraphBuilder;

    /// Two triangles joined by a bridge; categories = triangle membership.
    fn fixture() -> (Graph, Partition) {
        let g =
            GraphBuilder::from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
                .unwrap();
        let p = Partition::from_assignments(vec![0, 0, 0, 1, 1, 1], 2).unwrap();
        (g, p)
    }

    #[test]
    fn induced_records_categories_degrees() {
        let (g, p) = fixture();
        let s = InducedSample::observe(&g, &p, &[0, 3, 2]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.categories(), &[0, 1, 0]);
        assert_eq!(s.degrees(), &[2, 3, 3]);
        assert_eq!(s.weights(), &[1.0, 1.0, 1.0]);
        assert_eq!(s.num_categories(), 2);
    }

    #[test]
    fn induced_edges_only_among_sampled() {
        let (g, p) = fixture();
        // Nodes 0, 2 adjacent; 0, 3 not; 2, 3 adjacent (bridge).
        let s = InducedSample::observe(&g, &p, &[0, 3, 2]);
        assert_eq!(s.edges(), &[(0, 2), (1, 2)]);
    }

    #[test]
    fn induced_multiset_multiplicity() {
        let (g, p) = fixture();
        // Node 2 sampled twice, node 3 once: bridge edge counted twice.
        let s = InducedSample::observe(&g, &p, &[2, 2, 3]);
        assert_eq!(s.edges(), &[(0, 2), (1, 2)]);
        // Same node repeated is never an edge (no self-loops).
        let s = InducedSample::observe(&g, &p, &[2, 2]);
        assert!(s.edges().is_empty());
    }

    #[test]
    fn induced_empty_sample() {
        let (g, p) = fixture();
        let s = InducedSample::observe(&g, &p, &[]);
        assert!(s.is_empty());
        assert!(s.edges().is_empty());
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn induced_rejects_zero_weight() {
        let (g, p) = fixture();
        let _ = InducedSample::observe_with_weights(&g, &p, &[0], vec![0.0]);
    }

    #[test]
    fn star_neighbor_histograms() {
        let (g, p) = fixture();
        let s = StarSample::observe(&g, &p, &[2, 4]);
        // Node 2: neighbors 0, 1 (cat 0) and 3 (cat 1).
        assert_eq!(s.neighbors_in(0, 0), 2);
        assert_eq!(s.neighbors_in(0, 1), 1);
        // Node 4: neighbors 3, 5, all cat 1.
        assert_eq!(s.neighbors_in(1, 0), 0);
        assert_eq!(s.neighbors_in(1, 1), 2);
        assert_eq!(s.neighbor_categories(0), &[(0, 2), (1, 1)]);
    }

    #[test]
    fn star_degree_equals_neighbor_total() {
        let (g, p) = fixture();
        let s = StarSample::observe(&g, &p, &[0, 1, 2, 3, 4, 5]);
        for i in 0..s.len() {
            let total: u32 = s.neighbor_categories(i).iter().map(|&(_, c)| c).sum();
            assert_eq!(total, s.degrees()[i], "sample {i}");
        }
    }

    #[test]
    fn star_to_induced_round_trip() {
        let (g, p) = fixture();
        let nodes = [0, 3, 2, 2];
        let star = StarSample::observe(&g, &p, &nodes);
        let induced = star.to_induced(&g, &p);
        let direct = InducedSample::observe(&g, &p, &nodes);
        assert_eq!(induced, direct);
    }

    #[test]
    fn induced_subsample_remaps_edges() {
        let (g, p) = fixture();
        let s = InducedSample::observe(&g, &p, &[0, 3, 2]); // edges (0,2),(1,2)
                                                            // Keep samples 2 and 0 (nodes 2 and 0, adjacent), in swapped order.
        let sub = s.subsample(&[2, 0]);
        assert_eq!(sub.nodes(), &[2, 0]);
        assert_eq!(sub.edges(), &[(0, 1)]);
        // Repeating an index duplicates its incident edges.
        let sub = s.subsample(&[2, 0, 0]);
        assert_eq!(sub.edges(), &[(0, 1), (0, 2)]);
    }

    #[test]
    fn star_subsample_preserves_records() {
        let (g, p) = fixture();
        let s = StarSample::observe(&g, &p, &[2, 4]);
        let sub = s.subsample(&[1, 1]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.nodes(), &[4, 4]);
        assert_eq!(sub.neighbors_in(0, 1), 2);
    }

    #[test]
    fn observe_sampler_attaches_design_weights() {
        use crate::RandomWalk;
        let (g, p) = fixture();
        let rw = RandomWalk::new();
        let s = StarSample::observe_sampler(&g, &p, &[2, 0], &rw);
        assert_eq!(s.weights(), &[3.0, 2.0]); // degrees
    }

    #[test]
    fn context_histograms_match_star_sample() {
        let (g, p) = fixture();
        let ctx = ObservationContext::new(&g, &p);
        let all: Vec<NodeId> = (0..6).collect();
        let s = StarSample::observe(&g, &p, &all);
        for (i, &v) in all.iter().enumerate() {
            assert_eq!(
                ctx.neighbor_categories(v),
                s.neighbor_categories(i),
                "node {v}"
            );
        }
    }

    #[test]
    fn star_accumulator_tracks_masses() {
        let (g, p) = fixture();
        let ctx = ObservationContext::new(&g, &p);
        let mut acc = StarAccumulator::new(2);
        assert!(acc.is_empty());
        acc.push(&ctx, 2, 1.0); // deg 3, cat 0, sees 2 in cat 0 + 1 in cat 1
        acc.push(&ctx, 4, 2.0); // deg 2, cat 1, sees 2 in cat 1
        assert_eq!(acc.len(), 2);
        assert!((acc.degree_mass() - (3.0 + 1.0)).abs() < 1e-12);
        assert!((acc.inverse_mass() - 1.5).abs() < 1e-12);
        assert!((acc.neighbor_mass()[0] - 2.0).abs() < 1e-12);
        assert!((acc.neighbor_mass()[1] - 2.0).abs() < 1e-12);
        // Cross numerator: node 2 contributes |E_{2,1}|/w = 1.
        assert!((acc.weight_numerators().get(0, 1) - 1.0).abs() < 1e-12);
        acc.reset();
        assert!(acc.is_empty());
        assert_eq!(acc.degree_mass(), 0.0);
        assert!(acc.weight_numerators().is_zero());
    }

    #[test]
    fn induced_accumulator_counts_adjacent_pairs() {
        let (g, p) = fixture();
        let ctx = ObservationContext::new(&g, &p);
        let mut acc = InducedAccumulator::new(2);
        // 2 and 3 are the bridge endpoints (cats 0 and 1).
        acc.push(&ctx, 2, 1.0);
        acc.push(&ctx, 3, 1.0);
        assert!((acc.weight_numerators().get(0, 1) - 1.0).abs() < 1e-12);
        assert_eq!(acc.per_category_mass(), &[1.0, 1.0]);
        // A repeated occurrence doubles the pair contributions.
        acc.push(&ctx, 2, 1.0);
        assert!((acc.weight_numerators().get(0, 1) - 2.0).abs() < 1e-12);
        assert!((acc.inverse_mass() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn induced_accumulator_ignores_intra_category_pairs() {
        let (g, p) = fixture();
        let ctx = ObservationContext::new(&g, &p);
        let mut acc = InducedAccumulator::new(2);
        acc.push(&ctx, 0, 1.0);
        acc.push(&ctx, 1, 1.0); // adjacent, same category
        assert!(acc.weight_numerators().is_zero());
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn accumulator_rejects_bad_weight() {
        let (g, p) = fixture();
        let ctx = ObservationContext::new(&g, &p);
        let mut acc = StarAccumulator::new(2);
        acc.push(&ctx, 0, 0.0);
    }
}
