//! Observation scenarios (§3.2): what a measurement records about a sample.
//!
//! Estimators never see the graph — they see one of these observation
//! structures, exactly the information a real crawler would have collected.

use crate::NodeSampler;
use cgte_graph::{CategoryId, Graph, NodeId, Partition};
use std::collections::HashMap;

fn categories_of(p: &Partition, nodes: &[NodeId]) -> Vec<CategoryId> {
    nodes.iter().map(|&v| p.category_of(v)).collect()
}

fn degrees_of(g: &Graph, nodes: &[NodeId]) -> Vec<u32> {
    nodes.iter().map(|&v| g.degree(v) as u32).collect()
}

/// An induced-subgraph observation (§3.2.1, Fig. 2(a)): for each sampled
/// node its category, degree and design weight, plus every edge *between
/// sampled nodes* — and nothing about unsampled nodes.
///
/// The sample is a multiset: the same node may appear at several indices,
/// and edges between repeated nodes are recorded once per index pair,
/// matching the multiplicity semantics of Eq. (8).
#[derive(Debug, Clone, PartialEq)]
pub struct InducedSample {
    nodes: Vec<NodeId>,
    categories: Vec<CategoryId>,
    degrees: Vec<u32>,
    weights: Vec<f64>,
    /// Sample-index pairs `(i, j)`, `i < j`, whose nodes are adjacent in G.
    edges: Vec<(u32, u32)>,
    num_categories: usize,
}

impl InducedSample {
    /// Observes `nodes` under a uniform design (all weights 1).
    pub fn observe(g: &Graph, p: &Partition, nodes: &[NodeId]) -> Self {
        Self::observe_with_weights(g, p, nodes, vec![1.0; nodes.len()])
    }

    /// Observes `nodes` with explicit design weights `w(v)` per sample.
    ///
    /// # Panics
    /// Panics if `weights.len() != nodes.len()`, if the partition does not
    /// cover the graph, or if a weight is non-positive or non-finite.
    pub fn observe_with_weights(
        g: &Graph,
        p: &Partition,
        nodes: &[NodeId],
        weights: Vec<f64>,
    ) -> Self {
        assert_eq!(weights.len(), nodes.len(), "one weight per sample");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w > 0.0),
            "sampled nodes must have positive finite design weights"
        );
        p.check_covers(g).expect("partition must cover graph");
        // Index the sample multiset by node.
        let mut at: HashMap<NodeId, Vec<u32>> = HashMap::new();
        for (i, &v) in nodes.iter().enumerate() {
            at.entry(v).or_default().push(i as u32);
        }
        // Induced edges with multiset multiplicity: iterate each distinct
        // sampled node's adjacency once (O(Σ deg) total).
        let mut edges = Vec::new();
        for (&u, iu) in &at {
            for &v in g.neighbors(u) {
                if v <= u {
                    continue; // count each unordered node pair once
                }
                if let Some(iv) = at.get(&v) {
                    for &i in iu {
                        for &j in iv {
                            edges.push(if i < j { (i, j) } else { (j, i) });
                        }
                    }
                }
            }
        }
        edges.sort_unstable();
        InducedSample {
            categories: categories_of(p, nodes),
            degrees: degrees_of(g, nodes),
            nodes: nodes.to_vec(),
            weights,
            edges,
            num_categories: p.num_categories(),
        }
    }

    /// Observes `nodes` with the weights reported by `sampler`.
    pub fn observe_sampler<S: NodeSampler + ?Sized>(
        g: &Graph,
        p: &Partition,
        nodes: &[NodeId],
        sampler: &S,
    ) -> Self {
        Self::observe_with_weights(g, p, nodes, sampler.weights_for(g, nodes))
    }

    /// Number of samples `n = |S|` (with multiplicity).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of categories of the underlying partition.
    pub fn num_categories(&self) -> usize {
        self.num_categories
    }

    /// Sampled node ids, in draw order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Category of each sample.
    pub fn categories(&self) -> &[CategoryId] {
        &self.categories
    }

    /// Degree of each sample (known to a crawler from the friend list).
    pub fn degrees(&self) -> &[u32] {
        &self.degrees
    }

    /// Design weight of each sample.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Observed edges as sample-index pairs `(i, j)`, `i < j`.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// A copy of this observation with all design weights reset to 1,
    /// i.e. reinterpreted as a uniform sample (used by
    /// `Design::Uniform` in `cgte-core`).
    pub fn with_unit_weights(&self) -> InducedSample {
        let mut s = self.clone();
        s.weights = vec![1.0; s.nodes.len()];
        s
    }

    /// Re-observes a bootstrap replicate: `indices` select samples (with
    /// repetition allowed); induced edges are re-derived from the recorded
    /// ones without touching the graph.
    pub fn subsample(&self, indices: &[u32]) -> InducedSample {
        let mut new_at: HashMap<u32, Vec<u32>> = HashMap::new();
        for (new_i, &old_i) in indices.iter().enumerate() {
            new_at.entry(old_i).or_default().push(new_i as u32);
        }
        let mut edges = Vec::new();
        for &(a, b) in &self.edges {
            if let (Some(ia), Some(ib)) = (new_at.get(&a), new_at.get(&b)) {
                for &i in ia {
                    for &j in ib {
                        edges.push(if i < j { (i, j) } else { (j, i) });
                    }
                }
            }
        }
        edges.sort_unstable();
        InducedSample {
            nodes: indices.iter().map(|&i| self.nodes[i as usize]).collect(),
            categories: indices.iter().map(|&i| self.categories[i as usize]).collect(),
            degrees: indices.iter().map(|&i| self.degrees[i as usize]).collect(),
            weights: indices.iter().map(|&i| self.weights[i as usize]).collect(),
            edges,
            num_categories: self.num_categories,
        }
    }
}

/// A (labeled) star observation (§3.2.2, Fig. 2(b)): everything in
/// [`InducedSample`] *plus*, for each sampled node, the categories of all
/// its neighbors — but not the neighbors' degrees, friend lists, or ties
/// among them (this is *not* egonet sampling).
#[derive(Debug, Clone, PartialEq)]
pub struct StarSample {
    nodes: Vec<NodeId>,
    categories: Vec<CategoryId>,
    degrees: Vec<u32>,
    weights: Vec<f64>,
    /// Per sample: sparse neighbor-category histogram, sorted by category.
    neighbor_cats: Vec<Vec<(CategoryId, u32)>>,
    num_categories: usize,
}

impl StarSample {
    /// Observes `nodes` under a uniform design (all weights 1).
    pub fn observe(g: &Graph, p: &Partition, nodes: &[NodeId]) -> Self {
        Self::observe_with_weights(g, p, nodes, vec![1.0; nodes.len()])
    }

    /// Observes `nodes` with explicit design weights.
    ///
    /// # Panics
    /// Same contract as [`InducedSample::observe_with_weights`].
    pub fn observe_with_weights(
        g: &Graph,
        p: &Partition,
        nodes: &[NodeId],
        weights: Vec<f64>,
    ) -> Self {
        assert_eq!(weights.len(), nodes.len(), "one weight per sample");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w > 0.0),
            "sampled nodes must have positive finite design weights"
        );
        p.check_covers(g).expect("partition must cover graph");
        // Histogram neighbors per *distinct* node once, then share.
        let mut cache: HashMap<NodeId, Vec<(CategoryId, u32)>> = HashMap::new();
        for &v in nodes {
            cache.entry(v).or_insert_with(|| {
                let mut counts: HashMap<CategoryId, u32> = HashMap::new();
                for &u in g.neighbors(v) {
                    *counts.entry(p.category_of(u)).or_insert(0) += 1;
                }
                let mut hist: Vec<(CategoryId, u32)> = counts.into_iter().collect();
                hist.sort_unstable();
                hist
            });
        }
        let neighbor_cats: Vec<Vec<(CategoryId, u32)>> =
            nodes.iter().map(|v| cache[v].clone()).collect();
        StarSample {
            categories: categories_of(p, nodes),
            degrees: degrees_of(g, nodes),
            nodes: nodes.to_vec(),
            weights,
            neighbor_cats,
            num_categories: p.num_categories(),
        }
    }

    /// Observes `nodes` with the weights reported by `sampler`.
    pub fn observe_sampler<S: NodeSampler + ?Sized>(
        g: &Graph,
        p: &Partition,
        nodes: &[NodeId],
        sampler: &S,
    ) -> Self {
        Self::observe_with_weights(g, p, nodes, sampler.weights_for(g, nodes))
    }

    /// Number of samples `n = |S|` (with multiplicity).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of categories of the underlying partition.
    pub fn num_categories(&self) -> usize {
        self.num_categories
    }

    /// Sampled node ids, in draw order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Category of each sample.
    pub fn categories(&self) -> &[CategoryId] {
        &self.categories
    }

    /// Degree of each sample.
    pub fn degrees(&self) -> &[u32] {
        &self.degrees
    }

    /// Design weight of each sample.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Sparse neighbor-category histogram of sample `i`.
    pub fn neighbor_categories(&self, i: usize) -> &[(CategoryId, u32)] {
        &self.neighbor_cats[i]
    }

    /// Number of neighbors of sample `i` in category `c` — the paper's
    /// `|E_{s,C}|`, the size of the edge-cut between node `s` and
    /// category `c`.
    pub fn neighbors_in(&self, i: usize, c: CategoryId) -> u32 {
        self.neighbor_cats[i]
            .binary_search_by_key(&c, |&(cat, _)| cat)
            .map(|pos| self.neighbor_cats[i][pos].1)
            .unwrap_or(0)
    }

    /// A copy of this observation with all design weights reset to 1
    /// (uniform reinterpretation; see `Design::Uniform` in `cgte-core`).
    pub fn with_unit_weights(&self) -> StarSample {
        let mut s = self.clone();
        s.weights = vec![1.0; s.nodes.len()];
        s
    }

    /// Bootstrap replicate: select samples by index (repetition allowed).
    pub fn subsample(&self, indices: &[u32]) -> StarSample {
        StarSample {
            nodes: indices.iter().map(|&i| self.nodes[i as usize]).collect(),
            categories: indices.iter().map(|&i| self.categories[i as usize]).collect(),
            degrees: indices.iter().map(|&i| self.degrees[i as usize]).collect(),
            weights: indices.iter().map(|&i| self.weights[i as usize]).collect(),
            neighbor_cats: indices
                .iter()
                .map(|&i| self.neighbor_cats[i as usize].clone())
                .collect(),
            num_categories: self.num_categories,
        }
    }

    /// Forgets the star information, yielding the induced-subgraph view of
    /// the same draw — the paper's §7.1 trick for comparing designs on the
    /// same data ("by discarding the information about v's [neighbors]").
    ///
    /// Requires the graph to re-derive induced edges (the star structure
    /// does not store neighbor identities, only their categories).
    pub fn to_induced(&self, g: &Graph, p: &Partition) -> InducedSample {
        InducedSample::observe_with_weights(g, p, &self.nodes, self.weights.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgte_graph::GraphBuilder;

    /// Two triangles joined by a bridge; categories = triangle membership.
    fn fixture() -> (Graph, Partition) {
        let g = GraphBuilder::from_edges(
            6,
            [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)],
        )
        .unwrap();
        let p = Partition::from_assignments(vec![0, 0, 0, 1, 1, 1], 2).unwrap();
        (g, p)
    }

    #[test]
    fn induced_records_categories_degrees() {
        let (g, p) = fixture();
        let s = InducedSample::observe(&g, &p, &[0, 3, 2]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.categories(), &[0, 1, 0]);
        assert_eq!(s.degrees(), &[2, 3, 3]);
        assert_eq!(s.weights(), &[1.0, 1.0, 1.0]);
        assert_eq!(s.num_categories(), 2);
    }

    #[test]
    fn induced_edges_only_among_sampled() {
        let (g, p) = fixture();
        // Nodes 0, 2 adjacent; 0, 3 not; 2, 3 adjacent (bridge).
        let s = InducedSample::observe(&g, &p, &[0, 3, 2]);
        assert_eq!(s.edges(), &[(0, 2), (1, 2)]);
    }

    #[test]
    fn induced_multiset_multiplicity() {
        let (g, p) = fixture();
        // Node 2 sampled twice, node 3 once: bridge edge counted twice.
        let s = InducedSample::observe(&g, &p, &[2, 2, 3]);
        assert_eq!(s.edges(), &[(0, 2), (1, 2)]);
        // Same node repeated is never an edge (no self-loops).
        let s = InducedSample::observe(&g, &p, &[2, 2]);
        assert!(s.edges().is_empty());
    }

    #[test]
    fn induced_empty_sample() {
        let (g, p) = fixture();
        let s = InducedSample::observe(&g, &p, &[]);
        assert!(s.is_empty());
        assert!(s.edges().is_empty());
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn induced_rejects_zero_weight() {
        let (g, p) = fixture();
        let _ = InducedSample::observe_with_weights(&g, &p, &[0], vec![0.0]);
    }

    #[test]
    fn star_neighbor_histograms() {
        let (g, p) = fixture();
        let s = StarSample::observe(&g, &p, &[2, 4]);
        // Node 2: neighbors 0, 1 (cat 0) and 3 (cat 1).
        assert_eq!(s.neighbors_in(0, 0), 2);
        assert_eq!(s.neighbors_in(0, 1), 1);
        // Node 4: neighbors 3, 5, all cat 1.
        assert_eq!(s.neighbors_in(1, 0), 0);
        assert_eq!(s.neighbors_in(1, 1), 2);
        assert_eq!(s.neighbor_categories(0), &[(0, 2), (1, 1)]);
    }

    #[test]
    fn star_degree_equals_neighbor_total() {
        let (g, p) = fixture();
        let s = StarSample::observe(&g, &p, &[0, 1, 2, 3, 4, 5]);
        for i in 0..s.len() {
            let total: u32 = s.neighbor_categories(i).iter().map(|&(_, c)| c).sum();
            assert_eq!(total, s.degrees()[i], "sample {i}");
        }
    }

    #[test]
    fn star_to_induced_round_trip() {
        let (g, p) = fixture();
        let nodes = [0, 3, 2, 2];
        let star = StarSample::observe(&g, &p, &nodes);
        let induced = star.to_induced(&g, &p);
        let direct = InducedSample::observe(&g, &p, &nodes);
        assert_eq!(induced, direct);
    }

    #[test]
    fn induced_subsample_remaps_edges() {
        let (g, p) = fixture();
        let s = InducedSample::observe(&g, &p, &[0, 3, 2]); // edges (0,2),(1,2)
        // Keep samples 2 and 0 (nodes 2 and 0, adjacent), in swapped order.
        let sub = s.subsample(&[2, 0]);
        assert_eq!(sub.nodes(), &[2, 0]);
        assert_eq!(sub.edges(), &[(0, 1)]);
        // Repeating an index duplicates its incident edges.
        let sub = s.subsample(&[2, 0, 0]);
        assert_eq!(sub.edges(), &[(0, 1), (0, 2)]);
    }

    #[test]
    fn star_subsample_preserves_records() {
        let (g, p) = fixture();
        let s = StarSample::observe(&g, &p, &[2, 4]);
        let sub = s.subsample(&[1, 1]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.nodes(), &[4, 4]);
        assert_eq!(sub.neighbors_in(0, 1), 2);
    }

    #[test]
    fn observe_sampler_attaches_design_weights() {
        use crate::RandomWalk;
        let (g, p) = fixture();
        let rw = RandomWalk::new();
        let s = StarSample::observe_sampler(&g, &p, &[2, 0], &rw);
        assert_eq!(s.weights(), &[3.0, 2.0]); // degrees
    }
}
