//! Walker's alias method for O(1) weighted sampling.

use rand::Rng;

/// A Walker alias table: after `O(n)` preprocessing, draws an index
/// `i` with probability proportional to `weights[i]` in `O(1)`.
///
/// Substrate for [`crate::WeightedIndependence`] (WIS) and anywhere a fixed
/// discrete distribution is sampled many times.
///
/// # Example
///
/// ```
/// use cgte_sampling::AliasTable;
/// use rand::{rngs::StdRng, SeedableRng};
/// let t = AliasTable::new(&[1.0, 3.0]).unwrap();
/// let mut rng = StdRng::seed_from_u64(0);
/// let draws = (0..10_000).filter(|_| t.sample(&mut rng) == 1).count();
/// assert!((draws as f64 / 10_000.0 - 0.75).abs() < 0.02);
/// ```
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Acceptance probability per cell.
    prob: Vec<f64>,
    /// Alias index per cell.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds an alias table for the given (unnormalized) weights.
    ///
    /// Returns `None` if `weights` is empty, contains a negative or
    /// non-finite value, or sums to zero.
    pub fn new(weights: &[f64]) -> Option<Self> {
        let n = weights.len();
        if n == 0 || n > u32::MAX as usize {
            return None;
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return None;
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return None;
        }
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|w| w * scale).collect();
        let mut alias = vec![0u32; n];
        // Partition cells into under- and over-full stacks.
        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            // Large cell donates the remainder of the small one.
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical leftovers are exactly-full cells.
        for l in large {
            prob[l as usize] = 1.0;
        }
        for s in small {
            prob[s as usize] = 1.0;
        }
        Some(AliasTable { prob, alias })
    }

    /// Number of categories in the table.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one index in `O(1)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(AliasTable::new(&[]).is_none());
        assert!(AliasTable::new(&[0.0, 0.0]).is_none());
        assert!(AliasTable::new(&[1.0, -1.0]).is_none());
        assert!(AliasTable::new(&[f64::NAN]).is_none());
        assert!(AliasTable::new(&[f64::INFINITY]).is_none());
    }

    #[test]
    fn single_category_always_sampled() {
        let t = AliasTable::new(&[5.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zero_weight_categories_never_sampled() {
        let t = AliasTable::new(&[1.0, 0.0, 1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            assert_ne!(t.sample(&mut rng), 1);
        }
    }

    #[test]
    fn empirical_frequencies_match_weights() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let t = AliasTable::new(&weights).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[t.sample(&mut rng)] += 1;
        }
        let total: f64 = weights.iter().sum();
        for i in 0..4 {
            let expect = weights[i] / total;
            let got = counts[i] as f64 / n as f64;
            assert!(
                (got - expect).abs() < 0.005,
                "category {i}: got {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn uniform_weights_are_uniform() {
        let t = AliasTable::new(&[2.5; 10]).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[t.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 100_000.0 - 0.1).abs() < 0.01);
        }
    }

    #[test]
    fn len_reports_size() {
        let t = AliasTable::new(&[1.0, 2.0]).unwrap();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn extreme_weight_ratios() {
        let t = AliasTable::new(&[1e-12, 1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let ones = (0..10_000).filter(|_| t.sample(&mut rng) == 1).count();
        assert!(ones > 9_990);
    }
}
