//! Independence sampling: UIS and WIS (§3.1.1).

use crate::{AliasTable, DesignKind, NodeSampler, SampleError, WalkStats};
use cgte_graph::{Graph, NodeId};
use rand::Rng;

/// Uniform Independence Sampling: each draw is uniform over `V`,
/// independent, with replacement.
///
/// Rarely feasible in real online networks (no sampling frame), but the
/// paper's baseline design and the reference against which crawls are
/// judged (§6.3.3: "UIS clearly performs best").
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformIndependence;

impl NodeSampler for UniformIndependence {
    // One draw per retained node: stats are exact by construction.
    fn try_sample_into_stats<R: Rng + ?Sized>(
        &self,
        g: &Graph,
        n: usize,
        rng: &mut R,
        out: &mut Vec<NodeId>,
        stats: &mut WalkStats,
    ) -> Result<(), SampleError> {
        if g.num_nodes() == 0 {
            return Err(SampleError::EmptyGraph);
        }
        out.clear();
        out.reserve(n);
        for _ in 0..n {
            out.push(rng.gen_range(0..g.num_nodes() as NodeId));
        }
        *stats = WalkStats {
            retained: n,
            steps: n,
            burn_in: 0,
            thinning: 1,
            rejections: 0,
        };
        Ok(())
    }

    fn design(&self) -> DesignKind {
        DesignKind::Uniform
    }

    fn weight_of(&self, _g: &Graph, _v: NodeId) -> f64 {
        1.0
    }
}

/// Weighted Independence Sampling: node `v` drawn with probability
/// proportional to a caller-supplied weight, independently, with
/// replacement.
///
/// The idealized limit of weighted crawls; also used to "down-sample" large
/// graphs with a deliberate bias (§3.1.1). Zero-weight nodes are never
/// sampled.
#[derive(Debug, Clone)]
pub struct WeightedIndependence {
    weights: Vec<f64>,
    table: AliasTable,
}

impl WeightedIndependence {
    /// Creates a WIS sampler over explicit node weights.
    ///
    /// Returns `None` if weights are empty, negative, non-finite, or sum to
    /// zero (same contract as [`AliasTable::new`]).
    pub fn new(weights: Vec<f64>) -> Option<Self> {
        let table = AliasTable::new(&weights)?;
        Some(WeightedIndependence { weights, table })
    }

    /// WIS with `w(v) = deg(v)`: the independence-sampling limit of the
    /// simple random walk. Returns `None` for an edgeless graph.
    pub fn degree_proportional(g: &Graph) -> Option<Self> {
        let weights: Vec<f64> = (0..g.num_nodes())
            .map(|v| g.degree(v as NodeId) as f64)
            .collect();
        Self::new(weights)
    }

    /// The weight vector this sampler uses.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl NodeSampler for WeightedIndependence {
    // One alias-table draw per retained node; stats exact by construction.
    fn try_sample_into_stats<R: Rng + ?Sized>(
        &self,
        g: &Graph,
        n: usize,
        rng: &mut R,
        out: &mut Vec<NodeId>,
        stats: &mut WalkStats,
    ) -> Result<(), SampleError> {
        if g.num_nodes() == 0 {
            return Err(SampleError::EmptyGraph);
        }
        assert_eq!(
            self.weights.len(),
            g.num_nodes(),
            "weight vector does not cover the graph"
        );
        out.clear();
        out.reserve(n);
        for _ in 0..n {
            out.push(self.table.sample(rng) as NodeId);
        }
        *stats = WalkStats {
            retained: n,
            steps: n,
            burn_in: 0,
            thinning: 1,
            rejections: 0,
        };
        Ok(())
    }

    fn design(&self) -> DesignKind {
        DesignKind::Weighted
    }

    fn weight_of(&self, _g: &Graph, v: NodeId) -> f64 {
        self.weights[v as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgte_graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn star(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for v in 1..n as NodeId {
            b.add_edge(0, v).unwrap();
        }
        b.build()
    }

    #[test]
    fn uis_covers_all_nodes() {
        let g = star(10);
        let mut rng = StdRng::seed_from_u64(1);
        let s = UniformIndependence.sample(&g, 5000, &mut rng);
        assert_eq!(s.len(), 5000);
        let mut seen = [false; 10];
        for v in s {
            seen[v as usize] = true;
        }
        assert!(
            seen.iter().all(|&x| x),
            "all nodes should appear in 5000 draws"
        );
    }

    #[test]
    fn uis_is_approximately_uniform() {
        let g = star(5);
        let mut rng = StdRng::seed_from_u64(2);
        let s = UniformIndependence.sample(&g, 50_000, &mut rng);
        let mut counts = [0usize; 5];
        for v in s {
            counts[v as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 50_000.0 - 0.2).abs() < 0.01);
        }
    }

    #[test]
    #[should_panic(expected = "empty graph")]
    fn uis_panics_on_empty_graph() {
        let g = GraphBuilder::new(0).build();
        let mut rng = StdRng::seed_from_u64(3);
        let _ = UniformIndependence.sample(&g, 1, &mut rng);
    }

    #[test]
    fn wis_degree_proportional_frequencies() {
        // Star on 5 nodes: center degree 4, leaves degree 1; center should
        // receive 4/8 of the draws.
        let g = star(5);
        let wis = WeightedIndependence::degree_proportional(&g).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let s = wis.sample(&g, 40_000, &mut rng);
        let center = s.iter().filter(|&&v| v == 0).count();
        assert!((center as f64 / 40_000.0 - 0.5).abs() < 0.01);
        assert_eq!(wis.weight_of(&g, 0), 4.0);
        assert_eq!(wis.weight_of(&g, 1), 1.0);
    }

    #[test]
    fn wis_rejects_bad_weights() {
        assert!(WeightedIndependence::new(vec![]).is_none());
        assert!(WeightedIndependence::new(vec![0.0; 3]).is_none());
        assert!(WeightedIndependence::new(vec![1.0, -2.0]).is_none());
        let g = GraphBuilder::new(3).build(); // edgeless: all degrees zero
        assert!(WeightedIndependence::degree_proportional(&g).is_none());
    }

    #[test]
    fn wis_zero_weight_nodes_never_drawn() {
        let g = star(4);
        let wis = WeightedIndependence::new(vec![1.0, 0.0, 1.0, 1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        assert!(wis.sample(&g, 10_000, &mut rng).iter().all(|&v| v != 1));
    }

    #[test]
    fn designs_report_correctly() {
        let g = star(4);
        assert_eq!(UniformIndependence.design(), DesignKind::Uniform);
        let wis = WeightedIndependence::degree_proportional(&g).unwrap();
        assert_eq!(wis.design(), DesignKind::Weighted);
    }
}
