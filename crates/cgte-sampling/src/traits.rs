//! The sampler abstraction shared by all sampling designs.

use crate::{
    MetropolisHastingsWalk, RandomWalk, Swrw, UniformIndependence, WeightedIndependence,
    WeightedRandomWalk,
};
use cgte_graph::{Graph, NodeId};
use rand::Rng;

/// Why a sampler could not draw from a graph.
///
/// These are *input* conditions a long-running service must surface to its
/// caller (HTTP 422 in `cgte-serve`), not programming errors — which is
/// why they are a typed error rather than the panics they used to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleError {
    /// The graph has no nodes at all; no design can draw anything.
    EmptyGraph,
    /// The graph has no edges: a crawl has no eligible (non-isolated)
    /// start node and could never move.
    EdgelessGraph,
}

impl std::fmt::Display for SampleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SampleError::EmptyGraph => write!(f, "cannot sample from an empty graph"),
            SampleError::EdgelessGraph => write!(f, "cannot walk on an edgeless graph"),
        }
    }
}

impl std::error::Error for SampleError {}

/// Whether a design samples uniformly or with known non-uniform weights.
///
/// Drives the estimator family choice: uniform designs use the §4
/// estimators; weighted designs use the Hansen–Hurwitz-corrected §5 forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DesignKind {
    /// Every node equally likely (UIS, converged MHRW).
    Uniform,
    /// Node `v` sampled with probability ∝ a known weight `w(v)`
    /// (WIS, RW → degree, S-WRW → stratified stationary weight).
    Weighted,
}

/// Per-draw cost accounting for a sample: how much chain movement a
/// retained sample actually cost (§6 studies exactly this sampling-cost
/// vs estimation-error trade-off).
///
/// Filled by [`NodeSampler::try_sample_into_stats`]. For independence
/// designs a "step" is one draw; for crawls it is one chain transition,
/// so `steps = burn_in + retained × thinning`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalkStats {
    /// Nodes written to the output buffer.
    pub retained: usize,
    /// Total chain transitions (or independent draws) performed.
    pub steps: usize,
    /// Transitions discarded before the first retained node.
    pub burn_in: usize,
    /// Thinning factor in effect (1 = keep every visit).
    pub thinning: usize,
    /// MHRW proposals declined (the walk stayed put and the repeat was
    /// retained); 0 for every other design.
    pub rejections: usize,
}

/// A with-replacement probability sampler of nodes (§3.1).
///
/// Implementations must be deterministic given the RNG, and must report the
/// stationary sampling weight `w(v) ∝ π(v)` of every node — known only up to
/// a constant, which is all the ratio estimators of §5 require.
pub trait NodeSampler {
    /// The one required drawing method — the canonical core every other
    /// entry point is a default wrapper over. Draws `n` nodes into `out`
    /// (clearing it first), reports unusable input graphs (empty, or
    /// edgeless for crawls) as a typed [`SampleError`], and fills `stats`
    /// with the draw's cost accounting.
    ///
    /// Crawling samplers interpret `n` as the number of *retained* samples
    /// (after burn-in and thinning). Observing stats must not perturb the
    /// draw: the RNG sequence depends only on `(g, n, rng)`.
    fn try_sample_into_stats<R: Rng + ?Sized>(
        &self,
        g: &Graph,
        n: usize,
        rng: &mut R,
        out: &mut Vec<NodeId>,
        stats: &mut WalkStats,
    ) -> Result<(), SampleError>;

    /// Like [`NodeSampler::try_sample_into_stats`], without the cost
    /// accounting. Identical draw given the same RNG state.
    fn try_sample_into<R: Rng + ?Sized>(
        &self,
        g: &Graph,
        n: usize,
        rng: &mut R,
        out: &mut Vec<NodeId>,
    ) -> Result<(), SampleError> {
        self.try_sample_into_stats(g, n, rng, out, &mut WalkStats::default())
    }

    /// Infallible variant for callers that have already validated the
    /// graph (experiment drivers over generated graphs): panics with the
    /// [`SampleError`] message instead of returning it. Identical draw
    /// given the same RNG state; callers that draw many samples (big-walk
    /// replication loops, the benchmark harness) reuse one buffer instead
    /// of allocating per draw.
    fn sample_into<R: Rng + ?Sized>(
        &self,
        g: &Graph,
        n: usize,
        rng: &mut R,
        out: &mut Vec<NodeId>,
    ) {
        self.try_sample_into(g, n, rng, out)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Allocating convenience over [`NodeSampler::sample_into`].
    fn sample<R: Rng + ?Sized>(&self, g: &Graph, n: usize, rng: &mut R) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(n);
        self.sample_into(g, n, rng, &mut out);
        out
    }

    /// The design family this sampler realizes (asymptotically, for walks).
    fn design(&self) -> DesignKind;

    /// Stationary sampling weight of node `v`, up to a constant factor.
    ///
    /// Uniform designs return 1 for every node.
    fn weight_of(&self, g: &Graph, v: NodeId) -> f64;

    /// Convenience: the weights of an entire drawn sample, in order.
    fn weights_for(&self, g: &Graph, nodes: &[NodeId]) -> Vec<f64> {
        nodes.iter().map(|&v| self.weight_of(g, v)).collect()
    }
}

/// A dynamically chosen sampler, for experiment sweeps that iterate over
/// designs (Fig. 4 and Fig. 6 compare UIS/RW/MHRW/S-WRW side by side).
#[derive(Debug, Clone)]
pub enum AnySampler {
    /// Uniform independence sampling.
    Uis(UniformIndependence),
    /// Weighted independence sampling.
    Wis(WeightedIndependence),
    /// Simple random walk.
    Rw(RandomWalk),
    /// Metropolis–Hastings random walk.
    Mhrw(MetropolisHastingsWalk),
    /// Weighted random walk (product-form edge weights).
    Wrw(WeightedRandomWalk),
    /// Stratified weighted random walk.
    Swrw(Swrw),
}

impl AnySampler {
    /// Short display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            AnySampler::Uis(_) => "UIS",
            AnySampler::Wis(_) => "WIS",
            AnySampler::Rw(_) => "RW",
            AnySampler::Mhrw(_) => "MHRW",
            AnySampler::Wrw(_) => "WRW",
            AnySampler::Swrw(_) => "S-WRW",
        }
    }
}

impl NodeSampler for AnySampler {
    // Only the required core needs forwarding: every other entry point is
    // a trait default over it, so dispatching here makes the enum's
    // `sample`/`sample_into`/`try_sample_into` bit-identical to calling
    // the variant directly.
    fn try_sample_into_stats<R: Rng + ?Sized>(
        &self,
        g: &Graph,
        n: usize,
        rng: &mut R,
        out: &mut Vec<NodeId>,
        stats: &mut WalkStats,
    ) -> Result<(), SampleError> {
        match self {
            AnySampler::Uis(s) => s.try_sample_into_stats(g, n, rng, out, stats),
            AnySampler::Wis(s) => s.try_sample_into_stats(g, n, rng, out, stats),
            AnySampler::Rw(s) => s.try_sample_into_stats(g, n, rng, out, stats),
            AnySampler::Mhrw(s) => s.try_sample_into_stats(g, n, rng, out, stats),
            AnySampler::Wrw(s) => s.try_sample_into_stats(g, n, rng, out, stats),
            AnySampler::Swrw(s) => s.try_sample_into_stats(g, n, rng, out, stats),
        }
    }

    fn design(&self) -> DesignKind {
        match self {
            AnySampler::Uis(s) => s.design(),
            AnySampler::Wis(s) => s.design(),
            AnySampler::Rw(s) => s.design(),
            AnySampler::Mhrw(s) => s.design(),
            AnySampler::Wrw(s) => s.design(),
            AnySampler::Swrw(s) => s.design(),
        }
    }

    fn weight_of(&self, g: &Graph, v: NodeId) -> f64 {
        match self {
            AnySampler::Uis(s) => s.weight_of(g, v),
            AnySampler::Wis(s) => s.weight_of(g, v),
            AnySampler::Rw(s) => s.weight_of(g, v),
            AnySampler::Mhrw(s) => s.weight_of(g, v),
            AnySampler::Wrw(s) => s.weight_of(g, v),
            AnySampler::Swrw(s) => s.weight_of(g, v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgte_graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn any_sampler_names() {
        assert_eq!(AnySampler::Uis(UniformIndependence).name(), "UIS");
        assert_eq!(AnySampler::Rw(RandomWalk::new()).name(), "RW");
        assert_eq!(
            AnySampler::Mhrw(MetropolisHastingsWalk::new()).name(),
            "MHRW"
        );
    }

    #[test]
    fn any_sampler_dispatches() {
        let g = GraphBuilder::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let s = AnySampler::Uis(UniformIndependence);
        assert_eq!(s.design(), DesignKind::Uniform);
        assert_eq!(s.sample(&g, 10, &mut rng).len(), 10);
        assert_eq!(s.weight_of(&g, 0), 1.0);

        let s = AnySampler::Rw(RandomWalk::new());
        assert_eq!(s.design(), DesignKind::Weighted);
        assert_eq!(s.sample(&g, 10, &mut rng).len(), 10);
        assert_eq!(s.weight_of(&g, 0), 2.0); // degree
    }

    #[test]
    fn any_sampler_forwards_stats_to_counted_paths() {
        let g = GraphBuilder::from_edges(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]).unwrap();
        let s = AnySampler::Mhrw(MetropolisHastingsWalk::new().burn_in(4).thinning(2));
        let plain = s.sample(&g, 100, &mut StdRng::seed_from_u64(9));
        let mut buf = Vec::new();
        let mut stats = WalkStats::default();
        s.try_sample_into_stats(&g, 100, &mut StdRng::seed_from_u64(9), &mut buf, &mut stats)
            .unwrap();
        assert_eq!(plain, buf);
        assert_eq!(stats.steps, 4 + 100 * 2);
        assert!(stats.rejections > 0);
        // Independence designs report one step per draw via the default.
        let s = AnySampler::Uis(UniformIndependence);
        s.try_sample_into_stats(&g, 10, &mut StdRng::seed_from_u64(1), &mut buf, &mut stats)
            .unwrap();
        assert_eq!((stats.retained, stats.steps, stats.rejections), (10, 10, 0));
    }

    #[test]
    fn any_sampler_sample_into_forwards_to_variant() {
        let g = GraphBuilder::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        for s in [
            AnySampler::Uis(UniformIndependence),
            AnySampler::Rw(RandomWalk::new().burn_in(3)),
            AnySampler::Mhrw(MetropolisHastingsWalk::new().thinning(2)),
        ] {
            let v = s.sample(&g, 25, &mut StdRng::seed_from_u64(13));
            let mut buf = Vec::new();
            s.sample_into(&g, 25, &mut StdRng::seed_from_u64(13), &mut buf);
            assert_eq!(v, buf, "{} sample_into must match sample", s.name());
        }
    }
}
