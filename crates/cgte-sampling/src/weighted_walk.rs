//! Weighted random walk with product-form edge weights (§3.1.2).

use crate::random_walk::random_start;
use crate::{DesignKind, NodeSampler, SampleError, WalkStats};
use cgte_graph::{Graph, NodeId};
use rand::Rng;

/// Weighted Random Walk (WRW): a random walk on a weighted graph \[5\], here
/// with **product-form** edge weights `w({u,v}) = f(u)·f(v)` for a per-node
/// factor `f`.
///
/// Product form has two properties that make it the right substrate for
/// stratified crawling ([`crate::Swrw`]):
///
/// 1. the transition probability from `u` to neighbor `v` is ∝ `f(v)` —
///    the factor `f(u)` cancels — so a crawler only needs the factors of
///    the *neighbors* it can see;
/// 2. the stationary probability is `π(v) ∝ f(v)·Σ_{u∼v} f(u)`, computable
///    from information observed when visiting `v` (its neighbor list), so
///    the Hansen–Hurwitz correction of §5 is applicable in a real crawl.
///
/// Nodes with factor 0 are never *targeted*; if a walk finds itself where
/// every neighbor has factor 0 it moves uniformly instead (and such
/// fallback steps remain valid samples of the modified chain — documented
/// deviation kept deliberately rare by choosing positive factors).
#[derive(Debug, Clone)]
pub struct WeightedRandomWalk {
    factors: Vec<f64>,
    burn_in: usize,
    thinning: usize,
    start: Option<NodeId>,
}

impl WeightedRandomWalk {
    /// Creates a WRW with the given per-node factors.
    ///
    /// Returns `None` if any factor is negative or non-finite.
    pub fn new(factors: Vec<f64>) -> Option<Self> {
        if factors.iter().any(|f| !f.is_finite() || *f < 0.0) {
            return None;
        }
        Some(WeightedRandomWalk {
            factors,
            burn_in: 0,
            thinning: 1,
            start: None,
        })
    }

    /// Discards the first `steps` visited nodes.
    pub fn burn_in(mut self, steps: usize) -> Self {
        self.burn_in = steps;
        self
    }

    /// Keeps only every `t`-th node (`t >= 1`).
    ///
    /// # Panics
    /// Panics if `t == 0`.
    pub fn thinning(mut self, t: usize) -> Self {
        assert!(t >= 1, "thinning factor must be at least 1");
        self.thinning = t;
        self
    }

    /// Fixes the starting node.
    pub fn start_at(mut self, v: NodeId) -> Self {
        self.start = Some(v);
        self
    }

    /// The per-node factors.
    pub fn factors(&self) -> &[f64] {
        &self.factors
    }

    fn step<R: Rng + ?Sized>(&self, g: &Graph, u: NodeId, rng: &mut R) -> NodeId {
        let nbrs = g.neighbors(u);
        assert!(!nbrs.is_empty(), "walk reached an isolated node {u}");
        let total: f64 = nbrs.iter().map(|&v| self.factors[v as usize]).sum();
        if total <= 0.0 {
            // All-neighbor-zero fallback: uniform step.
            return nbrs[rng.gen_range(0..nbrs.len())];
        }
        let mut x = rng.gen::<f64>() * total;
        for &v in nbrs {
            x -= self.factors[v as usize];
            if x <= 0.0 {
                return v;
            }
        }
        *nbrs.last().expect("non-empty")
    }
}

impl NodeSampler for WeightedRandomWalk {
    // WRW always moves (the all-zero-neighbor fallback still steps), so
    // the stats are derived arithmetic over the one walk loop; every
    // other entry point is a trait default over this core.
    fn try_sample_into_stats<R: Rng + ?Sized>(
        &self,
        g: &Graph,
        n: usize,
        rng: &mut R,
        out: &mut Vec<NodeId>,
        stats: &mut WalkStats,
    ) -> Result<(), SampleError> {
        assert_eq!(
            self.factors.len(),
            g.num_nodes(),
            "factor vector does not cover the graph"
        );
        out.clear();
        out.reserve(n);
        let mut cur = match self.start {
            Some(v) => v,
            None => random_start(g, rng)?,
        };
        for _ in 0..self.burn_in {
            cur = self.step(g, cur, rng);
        }
        while out.len() < n {
            out.push(cur);
            for _ in 0..self.thinning {
                cur = self.step(g, cur, rng);
            }
        }
        *stats = WalkStats {
            retained: out.len(),
            steps: self.burn_in + n * self.thinning,
            burn_in: self.burn_in,
            thinning: self.thinning,
            rejections: 0,
        };
        Ok(())
    }

    fn design(&self) -> DesignKind {
        DesignKind::Weighted
    }

    /// Stationary weight `π(v) ∝ f(v)·Σ_{u∼v} f(u)` (node strength under
    /// product-form edge weights).
    fn weight_of(&self, g: &Graph, v: NodeId) -> f64 {
        let f_v = self.factors[v as usize];
        if f_v == 0.0 {
            return 0.0;
        }
        f_v * g
            .neighbors(v)
            .iter()
            .map(|&u| self.factors[u as usize])
            .sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgte_graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unit_factors_reduce_to_simple_rw() {
        let g = GraphBuilder::from_edges(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]).unwrap();
        let wrw = WeightedRandomWalk::new(vec![1.0; 5]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let s = wrw.clone().burn_in(100).sample(&g, n, &mut rng);
        let mut counts = [0usize; 5];
        for v in s {
            counts[v as usize] += 1;
        }
        for v in 0..5u32 {
            let expect = g.degree(v) as f64 / 10.0;
            let got = counts[v as usize] as f64 / n as f64;
            assert!((got - expect).abs() < 0.01, "node {v}: {got} vs {expect}");
        }
        // With unit factors, weight_of equals the degree.
        assert_eq!(wrw.weight_of(&g, 2), 3.0);
    }

    #[test]
    fn stationary_matches_strength() {
        // Triangle with one boosted node.
        let g = GraphBuilder::from_edges(3, [(0, 1), (1, 2), (0, 2)]).unwrap();
        let factors = vec![1.0, 4.0, 1.0];
        let wrw = WeightedRandomWalk::new(factors).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 300_000;
        let s = wrw.clone().burn_in(100).sample(&g, n, &mut rng);
        let mut counts = [0usize; 3];
        for v in s {
            counts[v as usize] += 1;
        }
        // Strengths: s(0)=1*(4+1)=5, s(1)=4*(1+1)=8, s(2)=5. Total 18.
        let expect = [5.0 / 18.0, 8.0 / 18.0, 5.0 / 18.0];
        for v in 0..3 {
            let got = counts[v] as f64 / n as f64;
            assert!(
                (got - expect[v]).abs() < 0.01,
                "node {v}: {got} vs {}",
                expect[v]
            );
            assert!((wrw.weight_of(&g, v as NodeId) - [5.0, 8.0, 5.0][v]).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_factor_nodes_avoided() {
        // Path 0-1-2-3 where node 1 has factor 0: walk started at 2/3
        // should rarely visit 0 (only via the uniform fallback at node 1,
        // which it never enters from the right side).
        let g = GraphBuilder::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let wrw = WeightedRandomWalk::new(vec![1.0, 0.0, 1.0, 1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let s = wrw.clone().start_at(3).sample(&g, 10_000, &mut rng);
        assert!(
            s.iter().all(|&v| v != 1 && v != 0),
            "zero-factor region entered"
        );
        assert_eq!(wrw.weight_of(&g, 1), 0.0);
    }

    #[test]
    fn all_zero_neighbors_falls_back_to_uniform() {
        // Star with zero-factor leaves: from the center every neighbor has
        // factor 0, so the fallback must fire rather than panic.
        let mut b = GraphBuilder::new(4);
        for v in 1..4 {
            b.add_edge(0, v).unwrap();
        }
        let g = b.build();
        let wrw = WeightedRandomWalk::new(vec![1.0, 0.0, 0.0, 0.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let s = wrw.start_at(0).sample(&g, 10, &mut rng);
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn rejects_invalid_factors() {
        assert!(WeightedRandomWalk::new(vec![1.0, -0.5]).is_none());
        assert!(WeightedRandomWalk::new(vec![f64::NAN]).is_none());
    }
}
