//! Multiple independent walks (§7: 25–28 walks per Facebook crawl).

use crate::NodeSampler;
use cgte_graph::{Graph, NodeId};
use rand::Rng;

/// The node sequences of several independently started runs of one sampler.
///
/// The paper's Facebook datasets consist of 25–28 independent walks per
/// crawl type; Fig. 6 treats each walk as a separate sample (estimating the
/// spread across walks), while the final published category graphs combine
/// all walks (§7.2, §7.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiWalkSample {
    walks: Vec<Vec<NodeId>>,
}

impl MultiWalkSample {
    /// Wraps explicit walk node sequences.
    pub fn new(walks: Vec<Vec<NodeId>>) -> Self {
        MultiWalkSample { walks }
    }

    /// Number of walks.
    pub fn num_walks(&self) -> usize {
        self.walks.len()
    }

    /// The node sequence of walk `i`.
    pub fn walk(&self, i: usize) -> &[NodeId] {
        &self.walks[i]
    }

    /// Iterator over all walks.
    pub fn walks(&self) -> impl Iterator<Item = &[NodeId]> {
        self.walks.iter().map(|w| w.as_slice())
    }

    /// All walks concatenated into one combined sample.
    pub fn combined(&self) -> Vec<NodeId> {
        self.walks.iter().flatten().copied().collect()
    }

    /// Total number of samples across walks.
    pub fn total_len(&self) -> usize {
        self.walks.iter().map(Vec::len).sum()
    }
}

/// Runs `num_walks` independent samples of `per_walk` nodes each.
///
/// Each run draws its own starting point (unless the sampler pins one), so
/// runs are independent given the RNG stream.
pub fn run_walks<S: NodeSampler, R: Rng + ?Sized>(
    sampler: &S,
    g: &Graph,
    num_walks: usize,
    per_walk: usize,
    rng: &mut R,
) -> MultiWalkSample {
    MultiWalkSample::new(
        (0..num_walks)
            .map(|_| sampler.sample(g, per_walk, rng))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RandomWalk, UniformIndependence};
    use cgte_graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cycle(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for v in 0..n as NodeId {
            b.add_edge(v, (v + 1) % n as NodeId).unwrap();
        }
        b.build()
    }

    #[test]
    fn runs_requested_shape() {
        let g = cycle(20);
        let mut rng = StdRng::seed_from_u64(1);
        let mw = run_walks(&RandomWalk::new(), &g, 5, 30, &mut rng);
        assert_eq!(mw.num_walks(), 5);
        assert_eq!(mw.total_len(), 150);
        for i in 0..5 {
            assert_eq!(mw.walk(i).len(), 30);
        }
    }

    #[test]
    fn combined_concatenates_in_order() {
        let mw = MultiWalkSample::new(vec![vec![1, 2], vec![3], vec![4, 5]]);
        assert_eq!(mw.combined(), vec![1, 2, 3, 4, 5]);
        assert_eq!(mw.total_len(), 5);
    }

    #[test]
    fn walks_start_at_different_places() {
        let g = cycle(100);
        let mut rng = StdRng::seed_from_u64(2);
        let mw = run_walks(&RandomWalk::new(), &g, 10, 1, &mut rng);
        let starts: std::collections::HashSet<NodeId> = mw.walks().map(|w| w[0]).collect();
        assert!(
            starts.len() > 1,
            "independent walks should start differently"
        );
    }

    #[test]
    fn works_with_independence_samplers_too() {
        let g = cycle(10);
        let mut rng = StdRng::seed_from_u64(3);
        let mw = run_walks(&UniformIndependence, &g, 3, 50, &mut rng);
        assert_eq!(mw.total_len(), 150);
    }

    #[test]
    fn empty_multiwalk() {
        let mw = MultiWalkSample::new(vec![]);
        assert_eq!(mw.num_walks(), 0);
        assert!(mw.combined().is_empty());
    }
}
