//! The experiment runner behind every simulation figure (§6, §7).
//!
//! The paper's protocol evaluates every estimator on growing prefixes of
//! each sampled node sequence. Rather than re-observing each prefix from
//! scratch — `O(Σᵢ sᵢ · deg)` per replication — the runner folds the
//! sequence into incremental [`StarAccumulator`] / [`InducedAccumulator`]
//! state once (`O(max_size · deg)`) and snapshots the estimators in
//! `O(C²)` at every configured size. Per-node neighbor-category histograms
//! are precomputed in one shared [`ObservationContext`] and reused across
//! all replications and worker threads; the accumulators themselves are
//! per-thread scratch reset between replications.

use crate::nrmse::nrmse_from_errors;
use cgte_core::{estimate_stream_into, Design, StarSizeOptions, StreamEstimate};
use cgte_graph::{CategoryGraph, CategoryId, Graph, Partition};
use cgte_sampling::{AnySampler, NodeSampler, ObservationContext, ObservationStream};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// A quantity whose estimation error the experiment tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Target {
    /// The size `|A|` of one category.
    Size(CategoryId),
    /// The edge weight `w(A,B)` of one category pair (`A != B`).
    Weight(CategoryId, CategoryId),
}

/// One of the four estimator families the paper compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EstimatorKind {
    /// Category size, induced (counting) estimator, Eq. (4)/(11).
    InducedSize,
    /// Category size, star estimator, Eq. (5)/(12).
    StarSize,
    /// Edge weight, induced estimator, Eq. (8)/(15).
    InducedWeight,
    /// Edge weight, star estimator, Eq. (9)/(16).
    StarWeight,
}

impl EstimatorKind {
    /// Display name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            EstimatorKind::InducedSize => "size/induced",
            EstimatorKind::StarSize => "size/star",
            EstimatorKind::InducedWeight => "weight/induced",
            EstimatorKind::StarWeight => "weight/star",
        }
    }

    /// Whether this estimator applies to the given target.
    pub fn applies_to(self, t: Target) -> bool {
        matches!(
            (self, t),
            (EstimatorKind::InducedSize, Target::Size(_))
                | (EstimatorKind::StarSize, Target::Size(_))
                | (EstimatorKind::InducedWeight, Target::Weight(..))
                | (EstimatorKind::StarWeight, Target::Weight(..))
        )
    }
}

/// All estimator kinds, in display order.
pub const ALL_ESTIMATORS: [EstimatorKind; 4] = [
    EstimatorKind::InducedSize,
    EstimatorKind::StarSize,
    EstimatorKind::InducedWeight,
    EstimatorKind::StarWeight,
];

/// Configuration of an NRMSE experiment.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Sample sizes `|S|` to evaluate; each replication draws the largest
    /// and evaluates every prefix (valid for both walks and independence
    /// samples, and how growing-sample curves are normally produced).
    pub sample_sizes: Vec<usize>,
    /// Independent replications per point.
    pub replications: usize,
    /// Base RNG seed; replication `r` uses `base_seed + r`.
    pub base_seed: u64,
    /// Uniform or Hansen–Hurwitz-weighted estimators.
    pub design: Design,
    /// Options for the star size estimator.
    pub star_size_options: StarSizeOptions,
    /// Worker threads (0 = all available).
    pub threads: usize,
}

impl ExperimentConfig {
    /// A reasonable default: given sizes, 100 replications, weighted design.
    pub fn new(sample_sizes: Vec<usize>, replications: usize) -> Self {
        ExperimentConfig {
            sample_sizes,
            replications,
            base_seed: 0x5EED,
            design: Design::Weighted,
            star_size_options: StarSizeOptions::default(),
            threads: 0,
        }
    }

    /// Sets the base seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.base_seed = s;
        self
    }

    /// Sets the estimator design.
    pub fn design(mut self, d: Design) -> Self {
        self.design = d;
        self
    }

    /// Sets the worker thread count (0 = all available cores).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }
}

/// NRMSE series per estimator and target, indexed by sample size.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// The evaluated sample sizes, ascending.
    pub sample_sizes: Vec<usize>,
    series: HashMap<(EstimatorKind, Target), Vec<f64>>,
    truths: HashMap<Target, f64>,
}

impl ExperimentResult {
    /// Reassembles a result from its serialized parts: one
    /// `(estimator, target, true value, NRMSE series)` entry per tracked
    /// combination. This is how the scenario engine rebuilds results from
    /// run-directory artifacts (`--resume`) without re-executing jobs.
    ///
    /// # Panics
    /// Panics if a series length differs from `sample_sizes.len()`.
    pub fn from_parts(
        sample_sizes: Vec<usize>,
        entries: impl IntoIterator<Item = (EstimatorKind, Target, f64, Vec<f64>)>,
    ) -> Self {
        let mut series = HashMap::new();
        let mut truths = HashMap::new();
        for (kind, target, truth, values) in entries {
            assert_eq!(
                values.len(),
                sample_sizes.len(),
                "series length must match sample_sizes"
            );
            series.insert((kind, target), values);
            truths.insert(target, truth);
        }
        ExperimentResult {
            sample_sizes,
            series,
            truths,
        }
    }

    /// Every tracked `(estimator, target, truth, series)` tuple, in the
    /// sorted target order of [`ExperimentResult::targets`] — the inverse
    /// of [`ExperimentResult::from_parts`], used to serialize results.
    pub fn entries(&self) -> Vec<(EstimatorKind, Target, f64, Vec<f64>)> {
        let mut out = Vec::new();
        for t in self.targets() {
            for kind in ALL_ESTIMATORS {
                if let Some(s) = self.nrmse(kind, t) {
                    out.push((kind, t, self.truths[&t], s.to_vec()));
                }
            }
        }
        out
    }

    /// NRMSE values for one estimator/target, aligned with `sample_sizes`.
    ///
    /// Returns `None` for combinations that were not tracked.
    pub fn nrmse(&self, kind: EstimatorKind, target: Target) -> Option<&[f64]> {
        self.series.get(&(kind, target)).map(Vec::as_slice)
    }

    /// The true value of a tracked target.
    pub fn truth(&self, target: Target) -> Option<f64> {
        self.truths.get(&target).copied()
    }

    /// All tracked targets.
    pub fn targets(&self) -> Vec<Target> {
        let mut t: Vec<Target> = self.truths.keys().copied().collect();
        t.sort_by_key(|t| match *t {
            Target::Size(c) => (0u8, c, 0),
            Target::Weight(a, b) => (1u8, a, b),
        });
        t
    }

    /// NRMSE values of one estimator across all its targets at one sample
    /// size index — the input to "median NRMSE" plots (Fig. 4, Fig. 6).
    pub fn nrmse_across_targets(&self, kind: EstimatorKind, size_idx: usize) -> Vec<f64> {
        self.targets()
            .into_iter()
            .filter(|&t| kind.applies_to(t))
            .filter_map(|t| self.nrmse(kind, t).map(|s| s[size_idx]))
            .filter(|x| x.is_finite())
            .collect()
    }
}

/// Per-thread accumulation of squared errors:
/// `sums[(kind, target)][size_idx] = Σ (x̂ − x)²` and defined-counts.
struct Accum {
    sums: HashMap<(EstimatorKind, Target), Vec<f64>>,
    counts: HashMap<(EstimatorKind, Target), Vec<usize>>,
}

impl Accum {
    fn new(keys: &[(EstimatorKind, Target)], n_sizes: usize) -> Self {
        Accum {
            sums: keys.iter().map(|&k| (k, vec![0.0; n_sizes])).collect(),
            counts: keys.iter().map(|&k| (k, vec![0usize; n_sizes])).collect(),
        }
    }

    fn record(
        &mut self,
        kind: EstimatorKind,
        target: Target,
        size_idx: usize,
        estimate: f64,
        truth: f64,
    ) {
        let e = (estimate - truth).powi(2);
        self.sums.get_mut(&(kind, target)).expect("tracked key")[size_idx] += e;
        self.counts.get_mut(&(kind, target)).expect("tracked key")[size_idx] += 1;
    }

    fn merge(&mut self, other: Accum) {
        for (k, v) in other.sums {
            let dst = self.sums.get_mut(&k).expect("same keys");
            for (d, s) in dst.iter_mut().zip(v) {
                *d += s;
            }
        }
        for (k, v) in other.counts {
            let dst = self.counts.get_mut(&k).expect("same keys");
            for (d, s) in dst.iter_mut().zip(v) {
                *d += s;
            }
        }
    }
}

/// Per-thread reusable replication state: the streaming observation
/// kernel plus a snapshot buffer, allocated once per worker and reset
/// between replications. This is the *same* kernel `cgte-serve` sessions
/// run on, and its shards compose through the same bit-exact merge path
/// (`ObservationStream::merge`) — the runner is just the batch driver of
/// the streaming core.
struct ReplicationScratch {
    stream: ObservationStream,
    /// Reusable per-prefix snapshot buffer (`estimate_stream_into`).
    est: StreamEstimate,
    /// Drawn node sequence, reused across replications (`sample_into`).
    nodes: Vec<cgte_graph::NodeId>,
}

impl ReplicationScratch {
    fn new(num_categories: usize) -> Self {
        ReplicationScratch {
            stream: ObservationStream::new(num_categories),
            est: StreamEstimate::new(num_categories),
            nodes: Vec::new(),
        }
    }
}

/// Snapshots every tracked estimator from the stream kernel and records
/// the squared errors at `size_idx`.
///
/// The weight matrices cost `O(C²)` and are only materialized when a
/// weight target is tracked — size-only experiments skip that work
/// entirely (`with_weights = false`).
#[allow(clippy::too_many_arguments)]
fn record_snapshot(
    scratch: &mut ReplicationScratch,
    population: f64,
    track_weights: bool,
    targets: &[Target],
    cfg: &ExperimentConfig,
    truth: &HashMap<Target, f64>,
    acc: &mut Accum,
    size_idx: usize,
) {
    estimate_stream_into(
        scratch.stream.star(),
        scratch.stream.induced(),
        population,
        &cfg.star_size_options,
        track_weights,
        &mut scratch.est,
    );
    let est = &scratch.est;

    for &t in targets {
        match t {
            Target::Size(c) => {
                let tr = truth[&t];
                acc.record(
                    EstimatorKind::InducedSize,
                    t,
                    size_idx,
                    est.sizes_induced[c as usize],
                    tr,
                );
                acc.record(
                    EstimatorKind::StarSize,
                    t,
                    size_idx,
                    est.sizes_star[c as usize].unwrap_or(0.0),
                    tr,
                );
            }
            Target::Weight(a, b) => {
                // A zero matrix entry means either "undefined" or "no edge
                // observed"; both are recorded as an estimate of 0, so a
                // plain O(1) read suffices.
                let tr = truth[&t];
                acc.record(
                    EstimatorKind::InducedWeight,
                    t,
                    size_idx,
                    est.weights_induced.get(a, b),
                    tr,
                );
                acc.record(
                    EstimatorKind::StarWeight,
                    t,
                    size_idx,
                    est.weights_star.get(a, b),
                    tr,
                );
            }
        }
    }
}

/// Runs one replication: draw `max_size` nodes, then fold the sequence into
/// the stream kernel **once**, snapshotting at every configured prefix size
/// (`schedule` is `(size, size_idx)` sorted ascending by size).
#[allow(clippy::too_many_arguments)]
fn one_replication(
    ctx: &ObservationContext<'_>,
    sampler: &AnySampler,
    targets: &[Target],
    cfg: &ExperimentConfig,
    schedule: &[(usize, usize)],
    truth: &HashMap<Target, f64>,
    acc: &mut Accum,
    scratch: &mut ReplicationScratch,
    rep: usize,
) {
    let g = ctx.graph();
    let mut rng = StdRng::seed_from_u64(cfg.base_seed.wrapping_add(rep as u64));
    let max_size = schedule.last().expect("non-empty sizes").0;
    let mut nodes = std::mem::take(&mut scratch.nodes);
    sampler.sample_into(g, max_size, &mut rng, &mut nodes);
    let population = g.num_nodes() as f64;
    let track_weights = targets.iter().any(|t| matches!(t, Target::Weight(..)));
    scratch.stream.reset();

    let mut next = 0;
    // Degenerate zero-size prefixes evaluate on the empty stream.
    while next < schedule.len() && schedule[next].0 == 0 {
        let size_idx = schedule[next].1;
        record_snapshot(
            scratch,
            population,
            track_weights,
            targets,
            cfg,
            truth,
            acc,
            size_idx,
        );
        next += 1;
    }
    for (pos, &v) in nodes.iter().enumerate() {
        let w = match cfg.design {
            Design::Uniform => 1.0,
            Design::Weighted => sampler.weight_of(g, v),
        };
        scratch.stream.push(ctx, v, w);
        while next < schedule.len() && schedule[next].0 == pos + 1 {
            let size_idx = schedule[next].1;
            record_snapshot(
                scratch,
                population,
                track_weights,
                targets,
                cfg,
                truth,
                acc,
                size_idx,
            );
            next += 1;
        }
    }
    debug_assert_eq!(next, schedule.len(), "every configured size snapshotted");
    scratch.nodes = nodes;
}

/// Runs the full NRMSE protocol of §6.1 for one graph, partition and
/// sampler: `replications` independent samples per size, four estimator
/// families, NRMSE per target.
///
/// Undefined estimates (e.g. a category with no samples) enter the error as
/// an estimate of 0, matching the operational reading of "we observed
/// nothing".
///
/// # Panics
/// Panics on an empty size list, zero replications, a weight target with
/// `a == b`, or a target whose true value is 0 (NRMSE undefined).
pub fn run_experiment(
    g: &Graph,
    p: &Partition,
    sampler: &AnySampler,
    targets: &[Target],
    cfg: &ExperimentConfig,
) -> ExperimentResult {
    assert!(
        !cfg.sample_sizes.is_empty(),
        "need at least one sample size"
    );
    assert!(cfg.replications > 0, "need at least one replication");
    let exact = CategoryGraph::exact(g, p);
    let mut truths = HashMap::new();
    for &t in targets {
        let v = match t {
            Target::Size(c) => exact.size(c),
            Target::Weight(a, b) => {
                assert_ne!(a, b, "weight target must name distinct categories");
                exact.weight(a, b)
            }
        };
        assert!(
            v != 0.0,
            "target {t:?} has zero true value; NRMSE undefined"
        );
        truths.insert(t, v);
    }
    let keys: Vec<(EstimatorKind, Target)> = targets
        .iter()
        .flat_map(|&t| {
            ALL_ESTIMATORS
                .iter()
                .filter(move |k| k.applies_to(t))
                .map(move |&k| (k, t))
        })
        .collect();
    let n_sizes = cfg.sample_sizes.len();
    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        cfg.threads
    }
    .min(cfg.replications);

    // Prefix-evaluation schedule: sizes ascending, carrying their original
    // result index (duplicates allowed).
    let mut schedule: Vec<(usize, usize)> = cfg
        .sample_sizes
        .iter()
        .enumerate()
        .map(|(i, &s)| (s, i))
        .collect();
    schedule.sort_unstable();
    // Per-node neighbor-category histograms, computed once and shared
    // read-only by every replication on every thread.
    let ctx = ObservationContext::new(g, p);

    let mut total = Accum::new(&keys, n_sizes);
    crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let keys = &keys;
                let truths = &truths;
                let ctx = &ctx;
                let schedule = &schedule;
                scope.spawn(move |_| {
                    let mut acc = Accum::new(keys, n_sizes);
                    let mut scratch = ReplicationScratch::new(ctx.num_categories());
                    let mut rep = t;
                    while rep < cfg.replications {
                        one_replication(
                            ctx,
                            sampler,
                            targets,
                            cfg,
                            schedule,
                            truths,
                            &mut acc,
                            &mut scratch,
                            rep,
                        );
                        rep += threads;
                    }
                    acc
                })
            })
            .collect();
        for h in handles {
            total.merge(h.join().expect("worker thread panicked"));
        }
    })
    .expect("crossbeam scope failed");

    let mut series = HashMap::new();
    for &(kind, target) in &keys {
        let sums = &total.sums[&(kind, target)];
        let counts = &total.counts[&(kind, target)];
        let truth = truths[&target];
        let v: Vec<f64> = (0..n_sizes)
            .map(|i| nrmse_from_errors(sums[i], counts[i], truth).unwrap_or(f64::NAN))
            .collect();
        series.insert((kind, target), v);
    }
    ExperimentResult {
        sample_sizes: cfg.sample_sizes.clone(),
        series,
        truths,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgte_graph::generators::{planted_partition, PlantedConfig};
    use cgte_sampling::UniformIndependence;

    fn small_pg() -> cgte_graph::generators::PlantedGraph {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = PlantedConfig {
            category_sizes: vec![50, 100, 200],
            k: 6,
            alpha: 0.3,
        };
        planted_partition(&cfg, &mut rng).unwrap()
    }

    #[test]
    fn nrmse_decreases_with_sample_size() {
        let pg = small_pg();
        let cfg = ExperimentConfig::new(vec![50, 200, 800], 40).design(Design::Uniform);
        let res = run_experiment(
            &pg.graph,
            &pg.partition,
            &AnySampler::Uis(UniformIndependence),
            &[Target::Size(2), Target::Weight(1, 2)],
            &cfg,
        );
        for kind in ALL_ESTIMATORS {
            for t in res.targets() {
                if !kind.applies_to(t) {
                    continue;
                }
                let series = res.nrmse(kind, t).unwrap();
                assert!(
                    series[2] < series[0],
                    "{} on {t:?}: {series:?} should decrease",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn truth_matches_exact_category_graph() {
        let pg = small_pg();
        let cfg = ExperimentConfig::new(vec![50], 2).design(Design::Uniform);
        let res = run_experiment(
            &pg.graph,
            &pg.partition,
            &AnySampler::Uis(UniformIndependence),
            &[Target::Size(0)],
            &cfg,
        );
        assert_eq!(res.truth(Target::Size(0)), Some(50.0));
        assert_eq!(res.truth(Target::Size(1)), None); // untracked
    }

    #[test]
    fn single_thread_and_multi_thread_agree() {
        // Same seeds => identical replication streams regardless of thread
        // count (work is partitioned by replication index).
        let pg = small_pg();
        let targets = [Target::Size(1)];
        let mut cfg = ExperimentConfig::new(vec![100], 8).design(Design::Uniform);
        cfg.threads = 1;
        let a = run_experiment(
            &pg.graph,
            &pg.partition,
            &AnySampler::Uis(UniformIndependence),
            &targets,
            &cfg,
        );
        cfg.threads = 4;
        let b = run_experiment(
            &pg.graph,
            &pg.partition,
            &AnySampler::Uis(UniformIndependence),
            &targets,
            &cfg,
        );
        let x = a
            .nrmse(EstimatorKind::InducedSize, Target::Size(1))
            .unwrap();
        let y = b
            .nrmse(EstimatorKind::InducedSize, Target::Size(1))
            .unwrap();
        assert!((x[0] - y[0]).abs() < 1e-12);
    }

    #[test]
    fn nrmse_across_targets_collects_all_sizes() {
        let pg = small_pg();
        let cfg = ExperimentConfig::new(vec![200], 10).design(Design::Uniform);
        let targets: Vec<Target> = (0..3).map(Target::Size).collect();
        let res = run_experiment(
            &pg.graph,
            &pg.partition,
            &AnySampler::Uis(UniformIndependence),
            &targets,
            &cfg,
        );
        let v = res.nrmse_across_targets(EstimatorKind::InducedSize, 0);
        assert_eq!(v.len(), 3);
        let w = res.nrmse_across_targets(EstimatorKind::InducedWeight, 0);
        assert!(w.is_empty(), "no weight targets tracked");
    }

    #[test]
    #[should_panic(expected = "distinct categories")]
    fn weight_target_self_pair_panics() {
        let pg = small_pg();
        let cfg = ExperimentConfig::new(vec![10], 1);
        let _ = run_experiment(
            &pg.graph,
            &pg.partition,
            &AnySampler::Uis(UniformIndependence),
            &[Target::Weight(1, 1)],
            &cfg,
        );
    }
}
