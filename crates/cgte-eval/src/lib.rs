//! Evaluation harness (§6.1): NRMSE, experiment sweeps, result tables.
//!
//! The paper evaluates every estimator by its Normalized Root Mean Square
//! Error across repeated samples of a fully known graph (Eq. (17)):
//!
//! ```text
//! NRMSE(x̂) = sqrt(E[(x̂ − x)²]) / x
//! ```
//!
//! [`run_experiment`] reproduces that protocol: for each sample size it
//! draws `replications` independent samples, applies the four estimator
//! families (induced/star × size/weight) to the chosen targets, and reports
//! NRMSE series suitable for regenerating the paper's figures. Replications
//! run in parallel on `crossbeam` scoped threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod experiment;
mod nrmse;
mod table;

pub use experiment::{
    run_experiment, EstimatorKind, ExperimentConfig, ExperimentResult, Target, ALL_ESTIMATORS,
};
pub use nrmse::{empirical_cdf, median, nrmse, nrmse_from_errors};
pub use table::Table;
