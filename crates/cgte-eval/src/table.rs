//! Plain-text and CSV result tables.

use std::fmt;
use std::io::{self, Write};

/// A simple column-aligned table for printing experiment results in the
/// shape the paper reports them (one row per sample size / dataset, one
/// column per estimator or sampler).
///
/// ```
/// use cgte_eval::Table;
/// let mut t = Table::new(vec!["|S|".into(), "induced".into(), "star".into()]);
/// t.row(vec!["100".into(), "0.31".into(), "0.12".into()]);
/// let s = t.to_string();
/// assert!(s.contains("induced"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row length differs from the header length.
    pub fn row(&mut self, row: Vec<String>) -> &mut Self {
        assert_eq!(row.len(), self.headers.len(), "row/header length mismatch");
        self.rows.push(row);
        self
    }

    /// Convenience: append a row of mixed displayable values.
    pub fn row_display<T: fmt::Display>(&mut self, row: &[T]) -> &mut Self {
        self.row(row.iter().map(|x| x.to_string()).collect())
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Writes the table as CSV (RFC-4180 quoting for fields containing
    /// commas or quotes).
    pub fn write_csv<W: Write>(&self, mut w: W) -> io::Result<()> {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        writeln!(
            w,
            "{}",
            self.headers
                .iter()
                .map(|h| field(h))
                .collect::<Vec<_>>()
                .join(",")
        )?;
        for r in &self.rows {
            writeln!(
                w,
                "{}",
                r.iter().map(|c| field(c)).collect::<Vec<_>>().join(",")
            )?;
        }
        Ok(())
    }

    /// Saves the CSV rendering to a file.
    pub fn save_csv(&self, path: &std::path::Path) -> io::Result<()> {
        let f = std::fs::File::create(path)?;
        self.write_csv(io::BufWriter::new(f))
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{c:<width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for r in &self.rows {
            line(f, r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_aligns_columns() {
        let mut t = Table::new(vec!["a".into(), "long_header".into()]);
        t.row(vec!["xxxx".into(), "1".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains("long_header"));
        assert!(lines[1].starts_with("----"));
        assert!(lines[2].starts_with("xxxx"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn row_length_checked() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn csv_quotes_special_fields() {
        let mut t = Table::new(vec!["x".into(), "y,z".into()]);
        t.row(vec!["has \"quote\"".into(), "plain".into()]);
        let mut buf = Vec::new();
        t.write_csv(&mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("x,\"y,z\"\n"));
        assert!(s.contains("\"has \"\"quote\"\"\",plain"));
    }

    #[test]
    fn row_display_formats_numbers() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row_display(&[1.5, 2.25]);
        assert_eq!(t.num_rows(), 1);
        assert!(t.to_string().contains("2.25"));
    }

    #[test]
    fn save_csv_writes_file() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["1".into()]);
        let dir = std::env::temp_dir().join("cgte_table_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        t.save_csv(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a\n1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
