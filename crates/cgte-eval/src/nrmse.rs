//! NRMSE (Eq. (17)) and related summary statistics.

/// Normalized Root Mean Square Error of a set of estimates against the true
/// value `truth` (Eq. (17)): `sqrt(mean((x̂ − x)²)) / x`.
///
/// Returns `None` when there are no estimates or `truth == 0` (the paper
/// only evaluates strictly positive targets).
pub fn nrmse(estimates: &[f64], truth: f64) -> Option<f64> {
    if estimates.is_empty() || truth == 0.0 {
        return None;
    }
    let mse = estimates.iter().map(|e| (e - truth).powi(2)).sum::<f64>() / estimates.len() as f64;
    Some(mse.sqrt() / truth.abs())
}

/// NRMSE from pre-accumulated squared errors (for streaming accumulation in
/// the experiment runner): `sqrt(sum_sq / count) / truth`.
///
/// Returns `None` for `count == 0` or `truth == 0`.
pub fn nrmse_from_errors(sum_sq: f64, count: usize, truth: f64) -> Option<f64> {
    if count == 0 || truth == 0.0 {
        return None;
    }
    Some((sum_sq / count as f64).sqrt() / truth.abs())
}

/// Median of a slice (average of the middle pair for even lengths).
/// `None` on empty input; non-finite values are ignored.
pub fn median(values: &[f64]) -> Option<f64> {
    let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return None;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = v.len();
    Some(if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    })
}

/// Empirical CDF of a set of values: returns `(sorted_values, F)` where
/// `F[i] = (i+1)/n` — the Fig. 3(d,h) presentation.
pub fn empirical_cdf(values: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = v.len();
    let f = (1..=n).map(|i| i as f64 / n as f64).collect();
    (v, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nrmse_of_exact_estimates_is_zero() {
        assert_eq!(nrmse(&[5.0, 5.0, 5.0], 5.0), Some(0.0));
    }

    #[test]
    fn nrmse_simple_case() {
        // Estimates 4 and 6 around truth 5: mse = 1, nrmse = 1/5.
        let r = nrmse(&[4.0, 6.0], 5.0).unwrap();
        assert!((r - 0.2).abs() < 1e-12);
    }

    #[test]
    fn nrmse_captures_bias_and_variance() {
        // A biased estimator has nonzero NRMSE even with zero variance.
        let r = nrmse(&[6.0, 6.0], 5.0).unwrap();
        assert!((r - 0.2).abs() < 1e-12);
    }

    #[test]
    fn nrmse_edge_cases() {
        assert_eq!(nrmse(&[], 5.0), None);
        assert_eq!(nrmse(&[1.0], 0.0), None);
    }

    #[test]
    fn nrmse_from_errors_matches_direct() {
        let estimates = [4.0f64, 7.0, 5.5];
        let truth = 5.0;
        let sum_sq: f64 = estimates.iter().map(|e| (e - truth).powi(2)).sum();
        let a = nrmse(&estimates, truth).unwrap();
        let b = nrmse_from_errors(sum_sq, 3, truth).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), Some(2.5));
        assert_eq!(median(&[]), None);
        assert_eq!(median(&[f64::NAN]), None);
        assert_eq!(median(&[f64::NAN, 7.0]), Some(7.0));
    }

    #[test]
    fn cdf_is_monotone_and_normalized() {
        let (x, f) = empirical_cdf(&[0.3, 0.1, 0.2]);
        assert_eq!(x, vec![0.1, 0.2, 0.3]);
        assert_eq!(f, vec![1.0 / 3.0, 2.0 / 3.0, 1.0]);
    }
}
