//! A Facebook-like population simulator and crawl-dataset builder (§7).
//!
//! The paper's §7 applies the estimators to proprietary crawls of Facebook
//! (Table 2): 2009 datasets with 507 *regional networks* covering ~34 % of
//! users, and 2010 datasets with 10 000+ small *college* networks covering
//! ~3.5 %. Those crawls cannot be redistributed, so this module simulates a
//! population with the same structure — Zipf-sized regions and colleges,
//! power-law degrees, homophilous edges, partial declaration — and then
//! runs the *same* crawl types (UIS, RW, MHRW, S-WRW) our `cgte-sampling`
//! crate implements, producing multi-walk datasets with the Table 2 shape.
//! Ground truth is known by construction, so the Fig. 5/6/7 analogues can
//! be evaluated exactly.

use cgte_graph::algorithms::giant_component;
use cgte_graph::generators::{powerlaw_weights, scale_to_mean};
use cgte_graph::{CategoryId, Graph, GraphBuilder, NodeId, Partition};
use cgte_sampling::{
    run_walks, MetropolisHastingsWalk, MultiWalkSample, RandomWalk, Swrw, UniformIndependence,
};
use rand::seq::SliceRandom;
use rand::Rng;

/// Splits `total` into `k` Zipf-distributed sizes (`size_i ∝ (i+1)^-s`),
/// each at least 1, summing exactly to `total`.
///
/// # Panics
/// Panics if `k == 0` or `total < k`.
pub fn zipf_sizes(total: usize, k: usize, s: f64) -> Vec<usize> {
    assert!(k > 0, "need at least one category");
    assert!(total >= k, "need at least one member per category");
    let raw: Vec<f64> = (0..k).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect();
    let z: f64 = raw.iter().sum();
    let spare = total - k;
    let mut sizes: Vec<usize> = raw
        .iter()
        .map(|r| 1 + (r / z * spare as f64) as usize)
        .collect();
    // Distribute rounding leftovers to the largest categories.
    let mut assigned: usize = sizes.iter().sum();
    let mut i = 0;
    while assigned < total {
        sizes[i % k] += 1;
        assigned += 1;
        i += 1;
    }
    sizes
}

/// Configuration of the simulated population.
#[derive(Debug, Clone)]
pub struct FacebookSimConfig {
    /// Number of users (the paper's crawls cover a 100M+ graph; default is
    /// laptop-scale and every experiment binary accepts `--full`).
    pub num_users: usize,
    /// Number of regional networks ("2009" categories; paper: 507).
    pub num_regions: usize,
    /// Number of countries the regions are merged into for §7.3.1.
    pub num_countries: usize,
    /// Fraction of users declaring a region (paper: ~34 %).
    pub region_declared_fraction: f64,
    /// Number of college networks ("2010" categories; paper: 10 000+).
    pub num_colleges: usize,
    /// Fraction of users in a college (paper: ~3.5 %).
    pub college_fraction: f64,
    /// Mean degree of the friendship graph.
    pub mean_degree: f64,
    /// Power-law exponent of the degree-weight distribution.
    pub gamma: f64,
    /// Fraction of a declared user's expected degree spent inside their
    /// region (homophily; drives the non-trivial category graph).
    pub region_homophily: f64,
    /// Additional within-college degree fraction for college members.
    pub college_homophily: f64,
    /// Zipf exponent for region and college sizes.
    pub zipf_exponent: f64,
}

impl Default for FacebookSimConfig {
    fn default() -> Self {
        FacebookSimConfig {
            num_users: 100_000,
            num_regions: 507,
            num_countries: 60,
            region_declared_fraction: 0.34,
            num_colleges: 1000,
            college_fraction: 0.035,
            mean_degree: 20.0,
            gamma: 2.4,
            region_homophily: 0.5,
            college_homophily: 0.25,
            zipf_exponent: 0.9,
        }
    }
}

impl FacebookSimConfig {
    /// A small configuration for tests and `--quick` runs.
    pub fn quick() -> Self {
        FacebookSimConfig {
            num_users: 8_000,
            num_regions: 40,
            num_countries: 8,
            num_colleges: 60,
            ..Default::default()
        }
    }
}

/// The simulated population: friendship graph plus the two category systems
/// of the paper's datasets.
#[derive(Debug, Clone)]
pub struct FacebookSim {
    /// Friendship graph (giant component).
    pub graph: Graph,
    /// Region partition: categories `0..num_regions` are declared regions
    /// (descending size), category `num_regions` is "undeclared".
    pub regions: Partition,
    /// College partition: categories `0..num_colleges` are colleges
    /// (descending size), category `num_colleges` is "no college".
    pub colleges: Partition,
    /// Country of each declared region (for §7.3.1 merging); the undeclared
    /// pseudo-region maps to country `num_countries`.
    pub region_to_country: Vec<CategoryId>,
    config: FacebookSimConfig,
}

use crate::layered::chung_lu_over;

impl FacebookSim {
    /// Generates a population from `config`.
    ///
    /// # Panics
    /// Panics if the homophily fractions sum to ≥ 1 or counts are
    /// infeasible.
    pub fn generate<R: Rng + ?Sized>(config: &FacebookSimConfig, rng: &mut R) -> Self {
        let c = config;
        assert!(
            c.region_homophily + c.college_homophily < 1.0,
            "homophily fractions must leave room for global edges"
        );
        let n = c.num_users;
        let declared = ((n as f64) * c.region_declared_fraction).round() as usize;
        assert!(
            declared >= c.num_regions,
            "too many regions for declared users"
        );
        let collegiate = ((n as f64) * c.college_fraction).round() as usize;
        assert!(
            collegiate >= c.num_colleges,
            "too many colleges for members"
        );

        // Degree weights.
        let w_max = (n as f64).sqrt() * c.mean_degree;
        let mut w = powerlaw_weights(n, c.gamma, 1.0, w_max, rng);
        scale_to_mean(&mut w, c.mean_degree);

        // Region assignment: a random `declared` subset, Zipf sizes.
        let mut users: Vec<NodeId> = (0..n as NodeId).collect();
        users.shuffle(rng);
        let mut region_of = vec![c.num_regions as CategoryId; n];
        let rsizes = zipf_sizes(declared, c.num_regions, c.zipf_exponent);
        let mut cursor = 0;
        for (r, &s) in rsizes.iter().enumerate() {
            for &u in &users[cursor..cursor + s] {
                region_of[u as usize] = r as CategoryId;
            }
            cursor += s;
        }

        // College assignment: an independent random subset, Zipf sizes.
        users.shuffle(rng);
        let mut college_of = vec![c.num_colleges as CategoryId; n];
        let csizes = zipf_sizes(collegiate, c.num_colleges, c.zipf_exponent);
        let mut cursor = 0;
        for (k, &s) in csizes.iter().enumerate() {
            for &u in &users[cursor..cursor + s] {
                college_of[u as usize] = k as CategoryId;
            }
            cursor += s;
        }

        // Edges: global + within-region + within-college Chung–Lu layers.
        let mut b = GraphBuilder::with_capacity(n, (n as f64 * c.mean_degree / 2.0) as usize);
        let global_w: Vec<f64> = (0..n)
            .map(|v| {
                let mut frac = 1.0;
                if region_of[v] != c.num_regions as CategoryId {
                    frac -= c.region_homophily;
                }
                if college_of[v] != c.num_colleges as CategoryId {
                    frac -= c.college_homophily;
                }
                w[v] * frac
            })
            .collect();
        chung_lu_over(
            &(0..n as NodeId).collect::<Vec<_>>(),
            &global_w,
            &mut b,
            rng,
        );
        let mut region_members: Vec<Vec<NodeId>> = vec![Vec::new(); c.num_regions];
        for (v, &region) in region_of.iter().enumerate() {
            let r = region as usize;
            if r < c.num_regions {
                region_members[r].push(v as NodeId);
            }
        }
        for members in &region_members {
            let wts: Vec<f64> = members
                .iter()
                .map(|&v| w[v as usize] * c.region_homophily)
                .collect();
            chung_lu_over(members, &wts, &mut b, rng);
        }
        let mut college_members: Vec<Vec<NodeId>> = vec![Vec::new(); c.num_colleges];
        for (v, &college) in college_of.iter().enumerate() {
            let k = college as usize;
            if k < c.num_colleges {
                college_members[k].push(v as NodeId);
            }
        }
        for members in &college_members {
            let wts: Vec<f64> = members
                .iter()
                .map(|&v| w[v as usize] * c.college_homophily)
                .collect();
            chung_lu_over(members, &wts, &mut b, rng);
        }

        // Keep the giant component, remapping both partitions.
        let full = b.build();
        let (graph, old_ids) = giant_component(&full);
        let regions = Partition::from_assignments(
            old_ids.iter().map(|&v| region_of[v as usize]).collect(),
            c.num_regions + 1,
        )
        .expect("region ids in range");
        let colleges = Partition::from_assignments(
            old_ids.iter().map(|&v| college_of[v as usize]).collect(),
            c.num_colleges + 1,
        )
        .expect("college ids in range");

        // Regions → countries: contiguous blocks of the Zipf rank order, so
        // each country mixes one large region with smaller ones.
        let region_to_country: Vec<CategoryId> = (0..c.num_regions)
            .map(|r| (r % c.num_countries) as CategoryId)
            .collect();

        FacebookSim {
            graph,
            regions,
            colleges,
            region_to_country,
            config: c.clone(),
        }
    }

    /// Reassembles a population from previously generated parts — the
    /// deserialization entry point for the scenario engine's disk cache
    /// (the parts must come from [`FacebookSim::generate`] output, e.g.
    /// a `.cgteg` round trip; no re-validation is performed beyond the
    /// partition constructors the caller already ran).
    pub fn from_parts(
        graph: Graph,
        regions: Partition,
        colleges: Partition,
        region_to_country: Vec<CategoryId>,
        config: FacebookSimConfig,
    ) -> Self {
        FacebookSim {
            graph,
            regions,
            colleges,
            region_to_country,
            config,
        }
    }

    /// The configuration this population was generated from.
    pub fn config(&self) -> &FacebookSimConfig {
        &self.config
    }

    /// The country partition of §7.3.1: declared regions merged into
    /// countries, undeclared users in country `num_countries`.
    pub fn countries(&self) -> Partition {
        let nc = self.config.num_countries;
        let mut map: Vec<CategoryId> = self.region_to_country.clone();
        map.push(nc as CategoryId); // undeclared pseudo-region
        self.regions
            .merge(&map, nc + 1)
            .expect("country map covers regions")
    }

    /// Runs the 2009-style crawls of Table 2: UIS, RW and MHRW multi-walk
    /// datasets over the region categories. UIS collects about half the
    /// samples of the walk crawls, as in the paper.
    pub fn crawl_2009<R: Rng + ?Sized>(
        &self,
        num_walks: usize,
        per_walk: usize,
        rng: &mut R,
    ) -> Vec<CrawlDataset> {
        let burn = (per_walk / 10).max(100);
        vec![
            CrawlDataset {
                name: "MHRW09".into(),
                crawl: CrawlType::Mhrw,
                walks: run_walks(
                    &MetropolisHastingsWalk::new().burn_in(burn),
                    &self.graph,
                    num_walks,
                    per_walk,
                    rng,
                ),
            },
            CrawlDataset {
                name: "RW09".into(),
                crawl: CrawlType::Rw,
                walks: run_walks(
                    &RandomWalk::new().burn_in(burn),
                    &self.graph,
                    num_walks,
                    per_walk,
                    rng,
                ),
            },
            CrawlDataset {
                name: "UIS09".into(),
                crawl: CrawlType::Uis,
                walks: run_walks(
                    &UniformIndependence,
                    &self.graph,
                    num_walks,
                    per_walk / 2,
                    rng,
                ),
            },
        ]
    }

    /// Runs the 2010-style crawls of Table 2: RW and S-WRW over the college
    /// categories.
    ///
    /// The S-WRW uses stratification strength β = 0.5 rather than the full
    /// equal-mass target: with 1000+ tiny colleges, β = 1 walks trap inside
    /// whichever college they enter and finite crawls cover only a handful
    /// of categories (the A3 ablation quantifies this). β = 0.5 still
    /// boosts rare colleges by orders of magnitude over RW while keeping
    /// the walk mixing.
    pub fn crawl_2010<R: Rng + ?Sized>(
        &self,
        num_walks: usize,
        per_walk: usize,
        rng: &mut R,
    ) -> Vec<CrawlDataset> {
        let burn = (per_walk / 10).max(100);
        let swrw = Swrw::stratified(&self.graph, &self.colleges, 0.5)
            .expect("college partition has positive volume")
            .burn_in(burn);
        vec![
            CrawlDataset {
                name: "RW10".into(),
                crawl: CrawlType::Rw,
                walks: run_walks(
                    &RandomWalk::new().burn_in(burn),
                    &self.graph,
                    num_walks,
                    per_walk,
                    rng,
                ),
            },
            CrawlDataset {
                name: "S-WRW10".into(),
                crawl: CrawlType::Swrw,
                walks: run_walks(&swrw, &self.graph, num_walks, per_walk, rng),
            },
        ]
    }

    /// The sampler (with design weights) behind a crawl type, for feeding
    /// observations to the estimators.
    pub fn sampler_for(&self, crawl: CrawlType) -> cgte_sampling::AnySampler {
        use cgte_sampling::AnySampler;
        match crawl {
            CrawlType::Uis => AnySampler::Uis(UniformIndependence),
            CrawlType::Rw => AnySampler::Rw(RandomWalk::new()),
            CrawlType::Mhrw => AnySampler::Mhrw(MetropolisHastingsWalk::new()),
            CrawlType::Swrw => AnySampler::Swrw(
                Swrw::stratified(&self.graph, &self.colleges, 0.5)
                    .expect("college partition has positive volume"),
            ),
        }
    }
}

/// Crawl technique of a dataset (Table 2 "Crawl type").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrawlType {
    /// Uniform independence sampling.
    Uis,
    /// Simple random walk.
    Rw,
    /// Metropolis–Hastings random walk.
    Mhrw,
    /// Stratified weighted random walk.
    Swrw,
}

/// One multi-walk crawl dataset, mirroring a Table 2 row.
#[derive(Debug, Clone)]
pub struct CrawlDataset {
    /// Dataset name as in Table 2 (e.g. "RW09", "S-WRW10").
    pub name: String,
    /// The crawling technique.
    pub crawl: CrawlType,
    /// The collected walks.
    pub walks: MultiWalkSample,
}

impl CrawlDataset {
    /// Fraction of samples that fall in "studied" categories — Table 2's
    /// "% categ. samples" column. `studied` decides per category id.
    pub fn studied_fraction<F: Fn(CategoryId) -> bool>(&self, p: &Partition, studied: F) -> f64 {
        let total = self.walks.total_len();
        if total == 0 {
            return 0.0;
        }
        let hits: usize = self
            .walks
            .walks()
            .flat_map(|w| w.iter())
            .filter(|&&v| studied(p.category_of(v)))
            .count();
        hits as f64 / total as f64
    }

    /// Samples per category, for Fig. 5 (descending).
    pub fn samples_per_category(&self, p: &Partition) -> Vec<usize> {
        let mut counts = vec![0usize; p.num_categories()];
        for w in self.walks.walks() {
            for &v in w {
                counts[p.category_of(v) as usize] += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgte_graph::algorithms::connected_components;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quick_sim() -> FacebookSim {
        let mut rng = StdRng::seed_from_u64(1);
        FacebookSim::generate(&FacebookSimConfig::quick(), &mut rng)
    }

    #[test]
    fn zipf_sizes_sum_and_order() {
        let s = zipf_sizes(1000, 10, 1.0);
        assert_eq!(s.iter().sum::<usize>(), 1000);
        assert!(s.windows(2).all(|w| w[0] >= w[1]), "{s:?}");
        assert!(s.iter().all(|&x| x >= 1));
        // Extreme case: every category exactly one member.
        assert_eq!(zipf_sizes(5, 5, 1.0), vec![1; 5]);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn zipf_sizes_infeasible_panics() {
        let _ = zipf_sizes(3, 5, 1.0);
    }

    #[test]
    fn sim_is_connected_with_both_partitions() {
        let sim = quick_sim();
        assert_eq!(connected_components(&sim.graph).num_components, 1);
        assert_eq!(sim.regions.num_nodes(), sim.graph.num_nodes());
        assert_eq!(sim.colleges.num_nodes(), sim.graph.num_nodes());
        assert_eq!(sim.regions.num_categories(), 41); // 40 regions + undeclared
        assert_eq!(sim.colleges.num_categories(), 61);
    }

    #[test]
    fn declared_fractions_are_respected() {
        let sim = quick_sim();
        let cfg = sim.config().clone();
        let n = sim.graph.num_nodes() as f64;
        let undeclared = sim.regions.category_size(cfg.num_regions as CategoryId) as f64;
        let declared_frac = 1.0 - undeclared / n;
        assert!(
            (declared_frac - cfg.region_declared_fraction).abs() < 0.05,
            "declared {declared_frac}"
        );
        let no_college = sim.colleges.category_size(cfg.num_colleges as CategoryId) as f64;
        let college_frac = 1.0 - no_college / n;
        assert!(
            (college_frac - cfg.college_fraction).abs() < 0.01,
            "college {college_frac}"
        );
    }

    #[test]
    fn homophily_concentrates_region_edges() {
        let sim = quick_sim();
        let cg = cgte_graph::CategoryGraph::exact(&sim.graph, &sim.regions);
        // Sum of intra-region edges among declared regions should clearly
        // exceed what independence would give (roughly Σ f_r² of edges).
        let intra: u64 = (0..40).map(|r| cg.intra_edge_count(r)).sum();
        let total = sim.graph.num_edges() as f64;
        let indep: f64 = (0..40)
            .map(|r| (sim.regions.category_size(r) as f64 / sim.graph.num_nodes() as f64).powi(2))
            .sum::<f64>()
            * total;
        assert!(
            intra as f64 > 3.0 * indep,
            "intra {intra} vs independence baseline {indep}"
        );
    }

    #[test]
    fn mean_degree_near_target() {
        let sim = quick_sim();
        let got = sim.graph.mean_degree();
        let want = sim.config().mean_degree;
        assert!(
            (got - want).abs() / want < 0.25,
            "mean degree {got} vs {want}"
        );
    }

    #[test]
    fn countries_partition_merges_regions() {
        let sim = quick_sim();
        let countries = sim.countries();
        assert_eq!(countries.num_categories(), 9); // 8 + undeclared
                                                   // Total declared population preserved.
        let undeclared_c = countries.category_size(8);
        let undeclared_r = sim.regions.category_size(40);
        assert_eq!(undeclared_c, undeclared_r);
    }

    #[test]
    fn crawl_2009_has_table2_shape() {
        let sim = quick_sim();
        let mut rng = StdRng::seed_from_u64(2);
        let crawls = sim.crawl_2009(3, 400, &mut rng);
        assert_eq!(crawls.len(), 3);
        assert_eq!(crawls[0].name, "MHRW09");
        assert_eq!(crawls[2].crawl, CrawlType::Uis);
        assert_eq!(crawls[1].walks.total_len(), 3 * 400);
        assert_eq!(crawls[2].walks.total_len(), 3 * 200); // UIS half
    }

    #[test]
    fn swrw_oversamples_colleges_vs_rw() {
        let sim = quick_sim();
        let mut rng = StdRng::seed_from_u64(3);
        let crawls = sim.crawl_2010(2, 2000, &mut rng);
        let college_cat = |c: CategoryId| (c as usize) < sim.config().num_colleges;
        let rw_frac = crawls[0].studied_fraction(&sim.colleges, college_cat);
        let swrw_frac = crawls[1].studied_fraction(&sim.colleges, college_cat);
        assert!(
            swrw_frac > 3.0 * rw_frac,
            "S-WRW college share {swrw_frac} should dwarf RW {rw_frac}"
        );
    }

    #[test]
    fn samples_per_category_counts_everything() {
        let sim = quick_sim();
        let mut rng = StdRng::seed_from_u64(4);
        let crawls = sim.crawl_2009(2, 100, &mut rng);
        let counts = crawls[1].samples_per_category(&sim.regions);
        assert_eq!(counts.iter().sum::<usize>(), crawls[1].walks.total_len());
    }
}
