//! Edge-list and category-file parsing (SNAP-compatible).
//!
//! Format: one `u v` pair per line, whitespace-separated; lines starting
//! with `#` or `%` are comments. Category files are `node category` pairs.
//! Self-loops are dropped on read (the model is a simple graph), duplicate
//! edges are collapsed.

use cgte_graph::{CategoryId, Graph, GraphBuilder, NodeId, Partition};
use std::fmt;
use std::io::{self, BufRead, Write};

/// Errors from dataset parsing.
#[derive(Debug)]
pub enum DatasetError {
    /// Underlying IO failure.
    Io(io::Error),
    /// A line that could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::Io(e) => write!(f, "io error: {e}"),
            DatasetError::Parse { line, reason } => {
                write!(f, "parse error at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for DatasetError {}

impl From<io::Error> for DatasetError {
    fn from(e: io::Error) -> Self {
        DatasetError::Io(e)
    }
}

fn parse_pair(line: &str, lineno: usize) -> Result<Option<(u64, u64)>, DatasetError> {
    let t = line.trim();
    if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
        return Ok(None);
    }
    let mut it = t.split_whitespace();
    let a = it.next().ok_or_else(|| DatasetError::Parse {
        line: lineno,
        reason: "missing first field".into(),
    })?;
    let b = it.next().ok_or_else(|| DatasetError::Parse {
        line: lineno,
        reason: "missing second field".into(),
    })?;
    if it.next().is_some() {
        return Err(DatasetError::Parse {
            line: lineno,
            reason: "more than two fields".into(),
        });
    }
    let a: u64 = a.parse().map_err(|_| DatasetError::Parse {
        line: lineno,
        reason: format!("not an integer: {a:?}"),
    })?;
    let b: u64 = b.parse().map_err(|_| DatasetError::Parse {
        line: lineno,
        reason: format!("not an integer: {b:?}"),
    })?;
    Ok(Some((a, b)))
}

/// Reads an edge list. Node ids may be sparse; the graph has `max_id + 1`
/// nodes (isolated ids included), matching SNAP conventions.
///
/// Self-loops are skipped, duplicates collapsed.
pub fn read_edgelist<R: BufRead>(r: R) -> Result<Graph, DatasetError> {
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut max_id: u64 = 0;
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        if let Some((a, b)) = parse_pair(&line, i + 1)? {
            if a > NodeId::MAX as u64 || b > NodeId::MAX as u64 {
                return Err(DatasetError::Parse {
                    line: i + 1,
                    reason: format!("node id too large: {}", a.max(b)),
                });
            }
            max_id = max_id.max(a).max(b);
            if a != b {
                edges.push((a as NodeId, b as NodeId));
            }
        }
    }
    let n = if edges.is_empty() && max_id == 0 {
        0
    } else {
        max_id as usize + 1
    };
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for (u, v) in edges {
        b.add_edge(u, v).expect("ids bounded by max_id");
    }
    Ok(b.build())
}

/// Writes a graph as an edge list with a descriptive header comment.
pub fn write_edgelist<W: Write>(g: &Graph, mut w: W) -> io::Result<()> {
    writeln!(
        w,
        "# cgte edge list: {} nodes, {} edges",
        g.num_nodes(),
        g.num_edges()
    )?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    Ok(())
}

/// Converts a text edge list (+ optional `node category` file) into the
/// binary `.cgteg` container of [`cgte_graph::store`] — the `cgte ingest`
/// pipeline. Returns the parsed bundle so callers can report statistics.
///
/// The written CSR is exactly what [`read_edgelist`] +
/// [`cgte_graph::GraphBuilder`] produce, so loading the container back
/// yields byte-identical offset/neighbor arrays.
pub fn edgelist_to_cgteg<R: BufRead, C: BufRead, W: Write>(
    edges: R,
    cats: Option<C>,
    out: W,
) -> Result<cgte_graph::store::GraphBundle, DatasetError> {
    let graph = read_edgelist(edges)?;
    let partition = match cats {
        Some(c) => Some(read_categories(c, graph.num_nodes())?),
        None => None,
    };
    cgte_graph::store::write_bundle(out, &graph, partition.as_ref())?;
    Ok(cgte_graph::store::GraphBundle { graph, partition })
}

/// Reads a `node category` file into a [`Partition`] covering `num_nodes`
/// nodes.
///
/// Nodes absent from the file land in an implicit extra "unlabeled"
/// category appended after the largest mentioned category id (only if any
/// node is unlabeled).
pub fn read_categories<R: BufRead>(r: R, num_nodes: usize) -> Result<Partition, DatasetError> {
    let mut assignment: Vec<Option<CategoryId>> = vec![None; num_nodes];
    let mut max_cat: u64 = 0;
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        if let Some((v, c)) = parse_pair(&line, i + 1)? {
            if v as usize >= num_nodes {
                return Err(DatasetError::Parse {
                    line: i + 1,
                    reason: format!("node {v} out of range ({num_nodes} nodes)"),
                });
            }
            if c > CategoryId::MAX as u64 {
                return Err(DatasetError::Parse {
                    line: i + 1,
                    reason: format!("category id too large: {c}"),
                });
            }
            assignment[v as usize] = Some(c as CategoryId);
            max_cat = max_cat.max(c);
        }
    }
    let has_unlabeled = assignment.iter().any(Option::is_none);
    let unlabeled_cat = (max_cat + 1) as CategoryId;
    let full: Vec<CategoryId> = assignment
        .into_iter()
        .map(|a| a.unwrap_or(unlabeled_cat))
        .collect();
    let num_categories = max_cat as usize + 1 + usize::from(has_unlabeled);
    Partition::from_assignments(full, num_categories).map_err(|e| DatasetError::Parse {
        line: 0,
        reason: e.to_string(),
    })
}

/// Writes a partition as a `node category` file.
pub fn write_categories<W: Write>(p: &Partition, mut w: W) -> io::Result<()> {
    writeln!(
        w,
        "# cgte categories: {} nodes, {} categories",
        p.num_nodes(),
        p.num_categories()
    )?;
    for (v, &c) in p.assignments().iter().enumerate() {
        writeln!(w, "{v} {c}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trip_edgelist() {
        let g = GraphBuilder::from_edges(5, [(0, 1), (1, 2), (3, 4)]).unwrap();
        let mut buf = Vec::new();
        write_edgelist(&g, &mut buf).unwrap();
        let g2 = read_edgelist(Cursor::new(buf)).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn read_skips_comments_blanks_selfloops_duplicates() {
        let text = "# header\n% also comment\n\n0 1\n1 0\n2 2\n1 2\n";
        let g = read_edgelist(Cursor::new(text)).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2); // (0,1) deduped, (2,2) dropped
    }

    #[test]
    fn crlf_line_endings_are_accepted() {
        // Files exported on Windows end lines with \r\n; the parser must
        // treat them identically to \n (including on comment lines).
        let crlf = "# header\r\n0 1\r\n1 2\r\n\r\n2 3\r\n";
        let lf = "# header\n0 1\n1 2\n\n2 3\n";
        let a = read_edgelist(Cursor::new(crlf)).unwrap();
        let b = read_edgelist(Cursor::new(lf)).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.num_edges(), 3);
        let p = read_categories(Cursor::new("0 0\r\n1 1\r\n2 0\r\n3 1\r\n"), 4).unwrap();
        assert_eq!(p.num_categories(), 2);
    }

    #[test]
    fn stray_whitespace_is_tolerated() {
        // Leading/trailing blanks, tabs, and multi-space separators all
        // appear in real SNAP exports.
        let text = "  0\t1 \n\t1  2\t\n   \n2 \t 3\n";
        let g = read_edgelist(Cursor::new(text)).unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn bad_node_id_reports_line_and_token() {
        let err = read_edgelist(Cursor::new("0 1\n1 2\n3 x7\n")).unwrap_err();
        match err {
            DatasetError::Parse { line, reason } => {
                assert_eq!(line, 3);
                assert!(reason.contains("x7"), "reason names the token: {reason}");
            }
            other => panic!("expected parse error, got {other}"),
        }
        // Negative ids are not valid node ids.
        let err = read_edgelist(Cursor::new("0 -1\n")).unwrap_err();
        assert!(matches!(err, DatasetError::Parse { line: 1, .. }), "{err}");
        // Ids beyond NodeId range are rejected with the offending value.
        let err = read_edgelist(Cursor::new("0 99999999999\n")).unwrap_err();
        match err {
            DatasetError::Parse { line, reason } => {
                assert_eq!(line, 1);
                assert!(reason.contains("99999999999"), "{reason}");
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn truncated_line_reports_line_number() {
        let err = read_edgelist(Cursor::new("0 1\n1 2\n7\n")).unwrap_err();
        match err {
            DatasetError::Parse { line, reason } => {
                assert_eq!(line, 3);
                assert!(reason.contains("second field"), "{reason}");
            }
            other => panic!("expected parse error, got {other}"),
        }
        // A trailing third field is equally positioned.
        let err = read_edgelist(Cursor::new("0 1 junk\n")).unwrap_err();
        assert!(matches!(err, DatasetError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn ingest_cgteg_round_trip_is_csr_identical() {
        // The tentpole round trip: text edge list -> .cgteg -> load must
        // reproduce the exact CSR arrays GraphBuilder::from_edges yields.
        let text = "# toy\n0 1\n1 2\n2 0\n3 4\n1 3\n";
        let cats = "0 0\n1 0\n2 1\n3 1\n4 1\n";
        let mut cgteg = Vec::new();
        let bundle =
            edgelist_to_cgteg(Cursor::new(text), Some(Cursor::new(cats)), &mut cgteg).unwrap();
        let reference =
            GraphBuilder::from_edges(5, [(0, 1), (1, 2), (2, 0), (3, 4), (1, 3)]).unwrap();
        let path =
            std::env::temp_dir().join(format!("cgte-ingest-rt-{}.cgteg", std::process::id()));
        std::fs::write(&path, &cgteg).unwrap();
        // Both load paths of the redesigned loader must reproduce the
        // builder's CSR exactly (the mapped path falls back to heap on
        // platforms without cfg(cgte_mmap) — same assertions hold).
        for mmap in [false, true] {
            let loaded = cgte_graph::store::Loader::open(&path)
                .validate(cgte_graph::store::Validate::Full)
                .mmap(mmap)
                .load_bundle()
                .unwrap();
            assert_eq!(loaded.graph, reference, "mmap={mmap}");
            assert_eq!(loaded.graph.csr_offsets(), reference.csr_offsets());
            assert_eq!(loaded.graph.csr_neighbors(), reference.csr_neighbors());
            assert_eq!(loaded.partition, bundle.partition);
            assert_eq!(loaded.partition.unwrap().num_categories(), 2);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ingest_propagates_parse_errors() {
        let mut out = Vec::new();
        let err = edgelist_to_cgteg(
            Cursor::new("0 1\nbroken\n"),
            None::<Cursor<&[u8]>>,
            &mut out,
        )
        .unwrap_err();
        assert!(matches!(err, DatasetError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn read_reports_parse_errors_with_line_numbers() {
        let err = read_edgelist(Cursor::new("0 1\nfoo bar\n")).unwrap_err();
        match err {
            DatasetError::Parse { line, reason } => {
                assert_eq!(line, 2);
                assert!(reason.contains("foo"));
            }
            other => panic!("expected parse error, got {other}"),
        }
        assert!(read_edgelist(Cursor::new("0\n")).is_err());
        assert!(read_edgelist(Cursor::new("0 1 2\n")).is_err());
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = read_edgelist(Cursor::new("# nothing\n")).unwrap();
        assert_eq!(g.num_nodes(), 0);
    }

    #[test]
    fn sparse_ids_create_isolated_nodes() {
        let g = read_edgelist(Cursor::new("0 5\n")).unwrap();
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn round_trip_categories() {
        let p = Partition::from_assignments(vec![0, 2, 1, 2], 3).unwrap();
        let mut buf = Vec::new();
        write_categories(&p, &mut buf).unwrap();
        let p2 = read_categories(Cursor::new(buf), 4).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn unlabeled_nodes_get_extra_category() {
        let p = read_categories(Cursor::new("0 0\n2 1\n"), 4).unwrap();
        assert_eq!(p.num_categories(), 3); // cats 0, 1 + unlabeled 2
        assert_eq!(p.category_of(1), 2);
        assert_eq!(p.category_of(3), 2);
    }

    #[test]
    fn category_node_out_of_range_rejected() {
        assert!(read_categories(Cursor::new("9 0\n"), 3).is_err());
    }

    #[test]
    fn error_display_formats() {
        let e = DatasetError::Parse {
            line: 3,
            reason: "bad".into(),
        };
        assert!(e.to_string().contains("line 3"));
        let e: DatasetError = io::Error::other("disk").into();
        assert!(e.to_string().contains("disk"));
    }
}
