//! Dataset IO and synthetic stand-ins for the paper's empirical data.
//!
//! Three groups of functionality:
//!
//! - [`edgelist`]: SNAP-style edge-list and category-file readers/writers —
//!   the measurement-parsing helpers a downstream user needs to run the
//!   estimators on their own crawl output.
//! - [`standins`]: generators matched to the published statistics of the
//!   paper's four fully-known evaluation graphs (Table 1), used by the
//!   Fig. 4 reproduction. See DESIGN.md, substitution 1.
//! - [`facebook`]: a Facebook-like population simulator (regions +
//!   colleges, Zipf sizes, homophilous edges) and crawl-dataset builders
//!   reproducing the *shape* of the paper's Table 2 datasets. See
//!   DESIGN.md, substitution 2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod edgelist;
pub mod facebook;
mod layered;
pub mod standins;

pub use edgelist::{
    edgelist_to_cgteg, read_categories, read_edgelist, write_categories, write_edgelist,
    DatasetError,
};
pub use facebook::{CrawlDataset, CrawlType, FacebookSim, FacebookSimConfig};
pub use standins::{standin, standin_huge, standin_partition, StandinKind};
