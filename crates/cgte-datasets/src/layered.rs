//! Layered Chung–Lu construction shared by the stand-ins and the Facebook
//! simulator: a global expected-degree layer plus homophilous layers over
//! member groups, so generated graphs have both the prescribed degree
//! distribution *and* community structure.

use cgte_graph::generators::chung_lu;
use cgte_graph::{GraphBuilder, NodeId};
use rand::Rng;

/// Chung–Lu over an explicit member set: generates edges among `members`
/// with the given per-member weights and forwards them to `builder`.
pub(crate) fn chung_lu_over<R: Rng + ?Sized>(
    members: &[NodeId],
    weights: &[f64],
    builder: &mut GraphBuilder,
    rng: &mut R,
) {
    debug_assert_eq!(members.len(), weights.len());
    if members.len() < 2 {
        return;
    }
    // Sort members by descending weight; chung_lu preserves that order.
    let mut order: Vec<usize> = (0..members.len()).collect();
    order.sort_by(|&a, &b| weights[b].partial_cmp(&weights[a]).expect("finite"));
    let sorted_w: Vec<f64> = order.iter().map(|&i| weights[i]).collect();
    let local = chung_lu(&sorted_w, rng);
    for (a, b) in local.edges() {
        let u = members[order[a as usize]];
        let v = members[order[b as usize]];
        builder.add_edge(u, v).expect("member ids in range");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn edges_stay_within_member_set() {
        let mut rng = StdRng::seed_from_u64(1);
        let members: Vec<NodeId> = vec![3, 7, 11, 19, 23];
        let weights = vec![4.0; 5];
        let mut b = GraphBuilder::new(30);
        chung_lu_over(&members, &weights, &mut b, &mut rng);
        let g = b.build();
        for (u, v) in g.edges() {
            assert!(members.contains(&u) && members.contains(&v));
        }
    }

    #[test]
    fn tiny_member_sets_are_noops() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut b = GraphBuilder::new(5);
        chung_lu_over(&[2], &[3.0], &mut b, &mut rng);
        chung_lu_over(&[], &[], &mut b, &mut rng);
        assert_eq!(b.build().num_edges(), 0);
    }
}
