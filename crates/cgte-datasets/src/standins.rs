//! Synthetic stand-ins for the paper's Table 1 evaluation graphs.
//!
//! The paper's §6.3 uses four fully known empirical graphs (two Facebook
//! regional networks, a Gnutella P2P snapshot, and Epinions). Those files
//! are not redistributable here, so each is replaced by a generated graph
//! matched on the published node count and mean degree, with:
//!
//! - a **power-law degree-weight distribution** reproducing the heavy
//!   degree skew the paper's §6.3.2 analysis hinges on, and
//! - **planted homophilous blocks** (Zipf-sized, layered Chung–Lu) giving
//!   the strong community structure that makes the paper's §6.3.1
//!   community-derived categories the worst case for star sampling.
//!
//! Graphs are reduced to their giant component. Category partitions are
//! built the same way as in the paper: top-50 communities from a community
//! finder plus one rest category.

use crate::facebook::zipf_sizes;
use crate::layered::chung_lu_over;
use cgte_graph::algorithms::{
    giant_component, label_propagation, leading_eigenvector_communities, top_k_partition,
    CommunityOptions,
};
use cgte_graph::generators::{powerlaw_weights, scale_to_mean};
use cgte_graph::{Graph, GraphBuilder, NodeId, Partition};
use rand::Rng;

/// The four Table 1 datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StandinKind {
    /// Facebook Texas network \[62\]: 36 364 nodes, k_V = 87.5 (dense).
    FacebookTexas,
    /// Facebook New Orleans network \[64\]: 63 392 nodes, k_V = 25.8.
    FacebookNewOrleans,
    /// Gnutella P2P snapshot \[40\]: 62 561 nodes, k_V = 4.7 (sparse).
    P2p,
    /// Epinions trust graph \[54\]: 75 877 nodes, k_V = 10.7.
    Epinions,
}

impl StandinKind {
    /// All four datasets in Table 1 order.
    pub const ALL: [StandinKind; 4] = [
        StandinKind::FacebookTexas,
        StandinKind::FacebookNewOrleans,
        StandinKind::P2p,
        StandinKind::Epinions,
    ];

    /// Display name as in Table 1.
    pub fn name(self) -> &'static str {
        match self {
            StandinKind::FacebookTexas => "Facebook: Texas",
            StandinKind::FacebookNewOrleans => "Facebook: New Orleans",
            StandinKind::P2p => "P2P",
            StandinKind::Epinions => "Epinions",
        }
    }

    /// Published `(|V|, k_V)` from Table 1.
    pub fn published(self) -> (usize, f64) {
        match self {
            StandinKind::FacebookTexas => (36_364, 87.5),
            StandinKind::FacebookNewOrleans => (63_392, 25.8),
            StandinKind::P2p => (62_561, 4.7),
            StandinKind::Epinions => (75_877, 10.7),
        }
    }

    /// Power-law exponent for the degree-weight distribution.
    ///
    /// Social graphs (Facebook, Epinions) are heavier-tailed than the
    /// engineered Gnutella overlay; the exact exponents matter less than
    /// the presence of skew, which drives the §6.3.2 effects.
    fn gamma(self) -> f64 {
        match self {
            StandinKind::FacebookTexas => 2.4,
            StandinKind::FacebookNewOrleans => 2.4,
            StandinKind::P2p => 3.0,
            StandinKind::Epinions => 2.2,
        }
    }

    /// Fraction of each node's expected degree spent inside its planted
    /// block. Social graphs are strongly clustered; the P2P overlay much
    /// less so.
    fn homophily(self) -> f64 {
        match self {
            StandinKind::FacebookTexas => 0.6,
            StandinKind::FacebookNewOrleans => 0.6,
            StandinKind::P2p => 0.3,
            StandinKind::Epinions => 0.5,
        }
    }
}

/// Number of planted blocks per stand-in (enough to carve out the paper's
/// 50 largest communities at full scale).
const NUM_BLOCKS: usize = 64;

/// Generates a stand-in graph for `kind`, scaled down by `scale_div`
/// (1 = full published size). Returns the giant component.
///
/// The realized mean degree tracks the published `k_V` (exactly in
/// expectation before giant-component extraction).
///
/// # Panics
/// Panics if `scale_div == 0`.
pub fn standin<R: Rng + ?Sized>(kind: StandinKind, scale_div: usize, rng: &mut R) -> Graph {
    assert!(scale_div >= 1, "scale divisor must be positive");
    let (n_pub, kv) = kind.published();
    let n = (n_pub / scale_div).max(300);
    let w_max = (n as f64).sqrt() * kv.max(1.0);
    let mut w = powerlaw_weights(n, kind.gamma(), 1.0, w_max, rng);
    scale_to_mean(&mut w, kv);

    // Planted Zipf-sized blocks: `h` of each node's weight goes to its
    // block layer, the rest to the global layer.
    let h = kind.homophily();
    let blocks = zipf_sizes(n, NUM_BLOCKS.min(n / 4).max(1), 0.8);
    let mut b = GraphBuilder::with_capacity(n, (n as f64 * kv / 2.0) as usize);
    let global_w: Vec<f64> = w.iter().map(|x| x * (1.0 - h)).collect();
    chung_lu_over(
        &(0..n as NodeId).collect::<Vec<_>>(),
        &global_w,
        &mut b,
        rng,
    );
    let mut base = 0usize;
    for &s in &blocks {
        let members: Vec<NodeId> = (base..base + s).map(|v| v as NodeId).collect();
        let wts: Vec<f64> = members.iter().map(|&v| w[v as usize] * h).collect();
        chung_lu_over(&members, &wts, &mut b, rng);
        base += s;
    }
    giant_component(&b.build()).0
}

/// Generates a million-node stand-in: the published topology scaled **up**
/// by `scale_mul`, built by the thread-invariant parallel layered
/// Chung–Lu path ([`cgte_graph::generators::par_chung_lu_layers`]).
///
/// The construction mirrors [`standin`] — a global expected-degree layer
/// plus Zipf-sized homophilous block layers, reduced to the giant
/// component — but proposes every layer's edges concurrently in chunks
/// with counter-derived RNG streams, so the result depends only on
/// `(kind, scale_mul, seed)`, never on `threads`.
///
/// # Panics
/// Panics if `scale_mul == 0`.
pub fn standin_huge(kind: StandinKind, scale_mul: usize, seed: u64, threads: usize) -> Graph {
    use cgte_graph::generators::{par_chung_lu_layers, ChungLuLayer};
    use cgte_graph::parallel::stream_seed;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    assert!(scale_mul >= 1, "scale multiplier must be positive");
    let (n_pub, kv) = kind.published();
    let n = n_pub * scale_mul;
    let w_max = (n as f64).sqrt() * kv.max(1.0);
    // Weight sampling is serial (a few tens of ms even at 2M nodes) from
    // a dedicated stream, keeping layer proposal the only parallel stage.
    let mut wrng = StdRng::seed_from_u64(stream_seed(seed, 0x57A2));
    let mut w = powerlaw_weights(n, kind.gamma(), 1.0, w_max, &mut wrng);
    scale_to_mean(&mut w, kv);

    let h = kind.homophily();
    let blocks = zipf_sizes(n, NUM_BLOCKS.min(n / 4).max(1), 0.8);

    // Each layer wants its members sorted by descending weight (the
    // Miller–Hagberg row order); ties break on node id so the order is a
    // pure function of the weights.
    let sort_desc = |members: std::ops::Range<usize>, scale: f64| {
        let mut idx: Vec<NodeId> = members.clone().map(|v| v as NodeId).collect();
        idx.sort_unstable_by(|&a, &b| {
            w[b as usize]
                .partial_cmp(&w[a as usize])
                .expect("finite")
                .then(a.cmp(&b))
        });
        let wts: Vec<f64> = idx.iter().map(|&v| w[v as usize] * scale).collect();
        (idx, wts)
    };

    let mut owned: Vec<(Vec<NodeId>, Vec<f64>, u64)> = Vec::with_capacity(blocks.len() + 1);
    owned.push({
        let (ids, wts) = sort_desc(0..n, 1.0 - h);
        (ids, wts, 0)
    });
    let mut base = 0usize;
    for (bi, &s) in blocks.iter().enumerate() {
        let (ids, wts) = sort_desc(base..base + s, h);
        owned.push((ids, wts, 1 + bi as u64));
        base += s;
    }
    let layers: Vec<ChungLuLayer<'_>> = owned
        .iter()
        .map(|(ids, wts, salt)| ChungLuLayer {
            ids,
            weights: wts,
            salt: *salt,
        })
        .collect();
    let g = par_chung_lu_layers(n, &layers, stream_seed(seed, 0xED6E), threads);
    giant_component(&g).0
}

/// Builds the paper's §6.3.1 category partition for a stand-in: the `top_k`
/// largest communities become categories, the rest is grouped as one more.
///
/// `spectral = true` uses Newman's leading-eigenvector method (the paper's
/// \[47\]) — the recommended setting: on these dense homophilous graphs,
/// label propagation (`false`) tends to collapse into one giant community
/// and is kept only as a cheap first pass for very large inputs.
pub fn standin_partition<R: Rng + ?Sized>(
    g: &Graph,
    top_k: usize,
    spectral: bool,
    rng: &mut R,
) -> Partition {
    let labels = if spectral {
        let opts = CommunityOptions {
            max_communities: 4 * top_k,
            max_power_iters: 150,
            ..Default::default()
        };
        leading_eigenvector_communities(g, &opts, rng)
    } else {
        label_propagation(g, 50, rng)
    };
    top_k_partition(&labels, top_k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgte_graph::algorithms::{connected_components, modularity, DegreeStats};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn published_statistics_match_table1() {
        assert_eq!(StandinKind::FacebookTexas.published(), (36_364, 87.5));
        assert_eq!(StandinKind::P2p.published().0, 62_561);
        assert_eq!(StandinKind::ALL.len(), 4);
        for k in StandinKind::ALL {
            assert!(!k.name().is_empty());
        }
    }

    #[test]
    fn standin_mean_degree_tracks_published() {
        let mut rng = StdRng::seed_from_u64(1);
        // Scaled-down for test speed; CL mean degree is scale-free.
        for kind in [StandinKind::FacebookNewOrleans, StandinKind::Epinions] {
            let g = standin(kind, 20, &mut rng);
            let (_, kv) = kind.published();
            let got = g.mean_degree();
            assert!(
                (got - kv).abs() / kv < 0.25,
                "{}: mean degree {got} vs published {kv}",
                kind.name()
            );
        }
    }

    #[test]
    fn standin_is_connected_giant() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = standin(StandinKind::P2p, 30, &mut rng);
        assert_eq!(connected_components(&g).num_components, 1);
        assert!(g.num_nodes() > 500);
    }

    #[test]
    fn standin_degree_distribution_is_skewed() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = standin(StandinKind::Epinions, 20, &mut rng);
        let s = DegreeStats::of(&g);
        assert!(
            s.cv > 1.0,
            "Epinions stand-in should be high-CV, got {}",
            s.cv
        );
        assert!(
            s.max as f64 > 10.0 * s.mean,
            "hub missing: max {} mean {}",
            s.max,
            s.mean
        );
    }

    #[test]
    fn standin_has_community_structure() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = standin(StandinKind::FacebookNewOrleans, 40, &mut rng);
        let opts = CommunityOptions {
            max_communities: 40,
            max_power_iters: 150,
            ..Default::default()
        };
        let labels = leading_eigenvector_communities(&g, &opts, &mut rng);
        let q = modularity(&g, &labels);
        let found = labels.iter().map(|&c| c as usize + 1).max().unwrap_or(1);
        assert!(found >= 5, "expected several communities, found {found}");
        assert!(
            q > 0.15,
            "modularity {q} too weak for a planted-block graph"
        );
    }

    #[test]
    fn partition_has_topk_plus_rest_shape() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = standin(StandinKind::P2p, 60, &mut rng);
        let p = standin_partition(&g, 10, false, &mut rng);
        assert!(p.num_categories() <= 11);
        assert!(
            p.num_categories() >= 3,
            "found {} categories",
            p.num_categories()
        );
        assert_eq!(p.num_nodes(), g.num_nodes());
        // Categories ordered by descending size among the top-k.
        for c in 1..p.num_categories().saturating_sub(1) as u32 {
            assert!(p.category_size(c - 1) >= p.category_size(c));
        }
    }

    #[test]
    fn standin_huge_is_thread_invariant() {
        // scale_mul = 1 keeps the test CI-sized; thread-invariance is the
        // property (the multiplier only changes n).
        let a = standin_huge(StandinKind::P2p, 1, 99, 1);
        let b = standin_huge(StandinKind::P2p, 1, 99, 2);
        let c = standin_huge(StandinKind::P2p, 1, 99, 8);
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert!(a.num_nodes() > 10_000, "giant component too small");
        let (_, kv) = StandinKind::P2p.published();
        assert!(
            (a.mean_degree() - kv).abs() / kv < 0.3,
            "mean degree {} vs published {kv}",
            a.mean_degree()
        );
    }

    #[test]
    fn standin_huge_scales_node_count() {
        let g1 = standin_huge(StandinKind::P2p, 1, 5, 0);
        let g2 = standin_huge(StandinKind::P2p, 2, 5, 0);
        assert!(
            g2.num_nodes() > g1.num_nodes() * 3 / 2,
            "{} vs {}",
            g2.num_nodes(),
            g1.num_nodes()
        );
    }

    #[test]
    fn spectral_partition_on_small_standin() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = standin(StandinKind::P2p, 200, &mut rng);
        let p = standin_partition(&g, 5, true, &mut rng);
        assert_eq!(p.num_nodes(), g.num_nodes());
        assert!(p.num_categories() >= 2);
    }
}
