// Zero-copy mmap-backed graph loading needs three platform guarantees at
// once: POSIX mmap(2) (unix), pointer-width == 64 so file offsets stored as
// u64 can be reinterpreted as usize, and little-endian so the on-disk
// fixed-width LE payloads can be borrowed in place. Collapse the triple
// check into one `cgte_mmap` cfg so the source gates read as intent rather
// than as a platform matrix.
fn main() {
    println!("cargo:rustc-check-cfg=cfg(cgte_mmap)");
    let unix = std::env::var_os("CARGO_CFG_UNIX").is_some();
    let ptr64 = std::env::var("CARGO_CFG_TARGET_POINTER_WIDTH").as_deref() == Ok("64");
    let le = std::env::var("CARGO_CFG_TARGET_ENDIAN").as_deref() == Ok("little");
    if unix && ptr64 && le {
        println!("cargo:rustc-cfg=cgte_mmap");
    }
}
