//! Property tests for the parallel generators: for every generator × seed
//! × thread count, the CSR invariants hold (sorted, symmetric,
//! self-loop-free, degree sum = 2|E|) and the parallel output is
//! byte-identical to the serial reference (`threads = 1` of the same
//! chunked algorithm).

use cgte_graph::generators::{
    par_barabasi_albert, par_chung_lu, par_configuration_model_erased, par_gnp,
    par_planted_partition, powerlaw_weights, PlantedConfig,
};
use cgte_graph::{Graph, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREAD_COUNTS: [usize; 4] = [1, 2, 3, 8];

/// Asserts every CSR invariant the paper's model relies on.
fn assert_csr_invariants(g: &Graph, what: &str) {
    let mut degree_sum = 0usize;
    for v in 0..g.num_nodes() as NodeId {
        let adj = g.neighbors(v);
        degree_sum += adj.len();
        for w in adj.windows(2) {
            assert!(w[0] < w[1], "{what}: adjacency of {v} not strictly sorted");
        }
        for &u in adj {
            assert_ne!(u, v, "{what}: self-loop on {v}");
            assert!(
                (u as usize) < g.num_nodes(),
                "{what}: neighbor {u} out of range"
            );
            assert!(
                g.neighbors(u).binary_search(&v).is_ok(),
                "{what}: edge ({v},{u}) not symmetric"
            );
        }
    }
    assert_eq!(
        degree_sum,
        2 * g.num_edges(),
        "{what}: degree sum must equal 2|E|"
    );
}

/// Builds with every thread count and checks bit-identity + invariants.
fn check_thread_invariance(what: &str, build: impl Fn(usize) -> Graph) {
    let reference = build(1);
    assert_csr_invariants(&reference, what);
    for &t in &THREAD_COUNTS[1..] {
        let g = build(t);
        assert_eq!(
            g, reference,
            "{what}: threads={t} differs from the serial reference"
        );
    }
}

proptest! {
    #[test]
    fn par_chung_lu_invariants(seed in 0u64..1_000_000, n in 50usize..400) {
        let mut wrng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let w = powerlaw_weights(n, 2.5, 1.0, 30.0, &mut wrng);
        check_thread_invariance("par_chung_lu", |t| par_chung_lu(&w, seed, t));
    }

    #[test]
    fn par_gnp_invariants(seed in 0u64..1_000_000, n in 2usize..400) {
        let p = 8.0 / n as f64;
        let p = p.min(1.0);
        check_thread_invariance("par_gnp", |t| par_gnp(n, p, seed, t));
    }

    #[test]
    fn par_ba_invariants(seed in 0u64..1_000_000, n in 10usize..300, m in 1usize..5) {
        prop_assume!(n > m);
        check_thread_invariance("par_barabasi_albert", |t| {
            par_barabasi_albert(n, m, seed, t).expect("valid parameters")
        });
        // Preferential attachment keeps every attaching node at >= m edges.
        let g = par_barabasi_albert(n, m, seed, 1).unwrap();
        for v in 0..n {
            prop_assert!(g.degree(v as NodeId) >= m, "node {v} degree {}", g.degree(v as NodeId));
        }
    }

    #[test]
    fn par_configuration_invariants(seed in 0u64..1_000_000, n in 10usize..300) {
        let mut drng = StdRng::seed_from_u64(seed ^ 0x51AB);
        let mut deg = cgte_graph::generators::powerlaw_degree_sequence(n, 2.5, 1, 20, &mut drng);
        if deg.iter().sum::<usize>() % 2 != 0 {
            deg[0] += 1;
        }
        check_thread_invariance("par_configuration_model_erased", |t| {
            par_configuration_model_erased(&deg, seed, t).expect("even degree sum")
        });
        // Erased semantics: realized degrees never exceed the prescription.
        let g = par_configuration_model_erased(&deg, seed, 1).unwrap();
        for (v, &d) in deg.iter().enumerate() {
            prop_assert!(g.degree(v as NodeId) <= d);
        }
    }

    #[test]
    fn par_planted_invariants(seed in 0u64..1_000_000, k in 2usize..6, alpha in 0.0f64..1.0) {
        let cfg = PlantedConfig {
            category_sizes: vec![2 * k + 2, 4 * k + 2, 8 * k + 2],
            k,
            alpha,
        };
        check_thread_invariance("par_planted_partition", |t| {
            par_planted_partition(&cfg, seed, t).expect("feasible config").graph
        });
        // The ground-truth partition is thread-invariant too.
        let a = par_planted_partition(&cfg, seed, 1).unwrap();
        let b = par_planted_partition(&cfg, seed, 8).unwrap();
        for v in 0..a.graph.num_nodes() as NodeId {
            prop_assert_eq!(a.partition.category_of(v), b.partition.category_of(v));
        }
    }
}
