//! `.cgteg` — the persistent binary graph container.
//!
//! Large-graph frameworks (SNAP-derived toolkits, Ligra-style CSR loaders)
//! all converge on the same trick: serialize the CSR arrays once and mmap
//! or bulk-read them forever after, turning repeated experiment runs into
//! load-bound work. This module is our version of that container:
//!
//! ```text
//! magic   "CGTEG\0"            6 bytes
//! version u16                  1 (legacy) or 2 (current, aligned)
//! nsect   u32                  number of sections
//! section × nsect:
//!   name_len u16, name utf-8   e.g. "csr.offsets", "part.main"
//!   tag      u8                1 = u32, 2 = u64, 3 = f64, 4 = bytes
//!   count    u64               element count
//!   pad      0–7 zero bytes    v2 only: aligns payload to 8 (see below)
//!   payload  count × size      little-endian
//!   checksum u64               8-byte-block multiplicative mix over
//!                              name ‖ tag ‖ payload (see section_checksum;
//!                              v2 uses the 4-lane section_checksum_v2)
//! ```
//!
//! Everything is little-endian. The container is deliberately generic — a
//! flat list of named, typed, individually checksummed sections — so the
//! same format carries a bare graph (`csr.offsets` + `csr.targets`), a
//! graph with partition blocks (`part.<name>`), or richer layered bundles
//! (the scenario engine's disk cache stores whole Facebook-simulation
//! bundles, crawls included, as extra sections).
//!
//! **Version 2** inserts zero padding before every payload so it starts at
//! a file offset divisible by 8. Combined with the fixed-width
//! little-endian encoding, that lets [`Loader`] borrow the CSR arrays
//! *in place* from a page-aligned memory mapping instead of decoding them
//! into heap vectors. The pad length is derived from the stream position
//! (never stored); readers require the pad bytes to be zero, so a flipped
//! pad byte is detected even though pads are outside the checksum. v2 also
//! switches the per-section checksum to a 4-lane variant that breaks the
//! serial multiply dependency and verifies at memory bandwidth. Version 1
//! files remain fully readable (via the streamed heap path); sibling
//! formats built on [`Container::write_to_magic`] (the `.cgtes` session
//! snapshots) keep the v1 framing and checksum unchanged.
//!
//! Loading never panics on hostile input: magic/version/structure problems
//! surface as [`StoreError::Format`], bit rot as [`StoreError::Checksum`],
//! and CSR-invariant violations as [`StoreError::Graph`] — on the mapped
//! path exactly as on the streamed path. See [`Validate`] for how much CSR
//! structure each trust level proves.
//!
//! The one entry point is the [`Loader`] builder:
//!
//! ```no_run
//! use cgte_graph::store::{Loader, Validate};
//! let bundle = Loader::open("graph.cgteg")
//!     .validate(Validate::Full)
//!     .mmap(true)
//!     .load_bundle()?;
//! # Ok::<(), cgte_graph::store::StoreError>(())
//! ```

#[cfg(cgte_mmap)]
use crate::mmap::{MappedCsr, Mmap};
use crate::{Graph, NodeId, Partition};
use std::fs::File;
use std::io::{self, BufReader, Read, Write};
use std::path::{Path, PathBuf};
#[cfg(cgte_mmap)]
use std::sync::Arc;

/// File magic, first 6 bytes of every `.cgteg`.
pub const MAGIC: &[u8; 6] = b"CGTEG\0";
/// Current container version (aligned payloads, 4-lane checksum).
pub const VERSION: u16 = 2;
/// The legacy unaligned version, still readable.
pub const VERSION_V1: u16 = 1;

/// Section name of the CSR offset array (u64, `num_nodes + 1` entries).
pub const SEC_OFFSETS: &str = "csr.offsets";
/// Section name of the CSR target array (u32, `2 |E|` entries).
pub const SEC_TARGETS: &str = "csr.targets";

/// Section name of a named partition block: `data[0]` is the category
/// count, `data[1..]` the per-node assignments.
pub fn partition_section_name(name: &str) -> String {
    format!("part.{name}")
}

/// Errors surfaced while reading or decoding a container.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying IO failure.
    Io(io::Error),
    /// Malformed container: bad magic, unsupported version, truncated or
    /// structurally invalid section framing.
    Format(String),
    /// A section's payload does not match its recorded checksum.
    Checksum {
        /// Name of the corrupted section.
        section: String,
    },
    /// The CSR (or partition) content violates a graph invariant.
    Graph(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::Format(m) => write!(f, "malformed .cgteg: {m}"),
            StoreError::Checksum { section } => {
                write!(
                    f,
                    "checksum mismatch in section {section:?} (corrupted file?)"
                )
            }
            StoreError::Graph(m) => write!(f, "invalid graph data: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            StoreError::Format("truncated file".into())
        } else {
            StoreError::Io(e)
        }
    }
}

/// How thoroughly [`Loader`] checks CSR structure. Per-section checksums
/// are verified at every level; the levels differ only in how much graph
/// *structure* they additionally prove.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Validate {
    /// Prove every invariant, including adjacency symmetry (one extra
    /// `O(E)` transpose pass). Use for files from unknown sources.
    Full,
    /// Skip only the symmetry transpose; bounds, monotonicity, strict
    /// sortedness and self-loop freedom are still checked in `O(V + E)`.
    Structure,
    /// Checksums plus `O(1)` framing checks only (offset array non-empty
    /// and zero-based, final offset matching the target count, even target
    /// count). For files this process (or a sibling cache writer) wrote
    /// itself: the checksums already rule out bit rot, and every [`Graph`]
    /// access is bounds-checked, so a structurally impossible file ends in
    /// a clean panic rather than unsoundness. Skipping the `O(V + E)`
    /// structural passes is what makes a mapped load's cost independent of
    /// graph size.
    Trusted,
}

/// Typed payload of one section.
#[derive(Debug, Clone, PartialEq)]
pub enum SectionData {
    /// 32-bit unsigned integers (node ids, assignments).
    U32(Vec<u32>),
    /// 64-bit unsigned integers (offsets, counts).
    U64(Vec<u64>),
    /// 64-bit floats (model parameters); bit-exact round trip.
    F64(Vec<f64>),
    /// Raw bytes (strings, metadata).
    Bytes(Vec<u8>),
}

impl SectionData {
    fn tag(&self) -> u8 {
        match self {
            SectionData::U32(_) => 1,
            SectionData::U64(_) => 2,
            SectionData::F64(_) => 3,
            SectionData::Bytes(_) => 4,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            SectionData::U32(v) => v.len(),
            SectionData::U64(v) => v.len(),
            SectionData::F64(v) => v.len(),
            SectionData::Bytes(v) => v.len(),
        }
    }

    /// Whether the section holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Payload size in bytes.
    pub fn byte_len(&self) -> usize {
        match self {
            SectionData::U32(v) => v.len() * 4,
            SectionData::U64(v) => v.len() * 8,
            SectionData::F64(v) => v.len() * 8,
            SectionData::Bytes(v) => v.len(),
        }
    }

    fn payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.byte_len());
        match self {
            SectionData::U32(v) => {
                for x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            SectionData::U64(v) => {
                for x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            SectionData::F64(v) => {
                for x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            SectionData::Bytes(v) => out.extend_from_slice(v),
        }
        out
    }

    fn from_payload(tag: u8, count: usize, bytes: &[u8]) -> Result<SectionData, StoreError> {
        Ok(match tag {
            1 => SectionData::U32(
                bytes
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                    .collect(),
            ),
            2 => SectionData::U64(
                bytes
                    .chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
                    .collect(),
            ),
            3 => SectionData::F64(
                bytes
                    .chunks_exact(8)
                    .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
                    .collect(),
            ),
            4 => SectionData::Bytes(bytes.to_vec()),
            other => {
                return Err(StoreError::Format(format!(
                    "unknown section tag {other} ({count} elements)"
                )))
            }
        })
    }
}

/// One named, typed section.
#[derive(Debug, Clone, PartialEq)]
pub struct Section {
    /// Section name (looked up by readers; ignored names are skipped).
    pub name: String,
    /// Payload.
    pub data: SectionData,
}

impl Section {
    /// A u32 section.
    pub fn u32s(name: impl Into<String>, data: Vec<u32>) -> Self {
        Section {
            name: name.into(),
            data: SectionData::U32(data),
        }
    }

    /// A u64 section.
    pub fn u64s(name: impl Into<String>, data: Vec<u64>) -> Self {
        Section {
            name: name.into(),
            data: SectionData::U64(data),
        }
    }

    /// An f64 section.
    pub fn f64s(name: impl Into<String>, data: Vec<f64>) -> Self {
        Section {
            name: name.into(),
            data: SectionData::F64(data),
        }
    }

    /// A raw-bytes section (also used for strings).
    pub fn bytes(name: impl Into<String>, data: Vec<u8>) -> Self {
        Section {
            name: name.into(),
            data: SectionData::Bytes(data),
        }
    }

    /// A string section (bytes, utf-8).
    pub fn string(name: impl Into<String>, s: &str) -> Self {
        Section::bytes(name, s.as_bytes().to_vec())
    }
}

/// The per-section checksum: an FNV-style multiplicative mix consumed in
/// 8-byte blocks (with a byte-wise FNV-1a tail), so hashing a 40 MB
/// payload costs one multiply per word instead of one per byte — at CSR
/// sizes the checksum would otherwise dominate load time. Each chunk's
/// length is folded in so chunk boundaries stay significant.
fn section_checksum(chunks: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for chunk in chunks {
        let mut blocks = chunk.chunks_exact(8);
        for b in &mut blocks {
            let x = u64::from_le_bytes(b.try_into().expect("8-byte block"));
            h = (h ^ x).wrapping_mul(0x1000_0000_01b3);
            h ^= h >> 32;
        }
        for &b in blocks.remainder() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h = (h ^ chunk.len() as u64).wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The v2 per-section checksum: four independent [`section_checksum`]-style
/// lanes consuming interleaved 8-byte words of each 32-byte block. The
/// serial multiply in the single-lane mix caps verification around
/// 2 GB/s — slow enough to dominate a zero-copy load, where the checksum
/// is the *only* full pass over the CSR bytes. Four independent dependency
/// chains let the multiplies overlap and verification runs near memory
/// bandwidth. Detection strength is preserved: every per-lane operation
/// (xor with data, multiply by an odd prime, xor-shift) is a bijection of
/// the lane state, as is each step of the final fold, so any single flipped
/// byte — which perturbs exactly one lane, or the lane-0 tail — is
/// guaranteed to change the result.
fn section_checksum_v2(chunks: &[&[u8]]) -> u64 {
    const PRIME: u64 = 0x1000_0000_01b3;
    let mut lanes: [u64; 4] = [
        0xcbf2_9ce4_8422_2325,
        0x9ae1_6a3b_2f90_404f,
        0x2545_f491_4f6c_dd1d,
        0x27d4_eb2f_1656_67c5,
    ];
    for chunk in chunks {
        let mut blocks = chunk.chunks_exact(32);
        for b in &mut blocks {
            for (lane, word) in lanes.iter_mut().zip(b.chunks_exact(8)) {
                let x = u64::from_le_bytes(word.try_into().expect("8-byte word"));
                *lane = (*lane ^ x).wrapping_mul(PRIME);
                *lane ^= *lane >> 32;
            }
        }
        let mut words = blocks.remainder().chunks_exact(8);
        for word in &mut words {
            let x = u64::from_le_bytes(word.try_into().expect("8-byte word"));
            lanes[0] = (lanes[0] ^ x).wrapping_mul(PRIME);
            lanes[0] ^= lanes[0] >> 32;
        }
        for &b in words.remainder() {
            lanes[0] ^= b as u64;
            lanes[0] = lanes[0].wrapping_mul(PRIME);
        }
        lanes[0] = (lanes[0] ^ chunk.len() as u64).wrapping_mul(PRIME);
    }
    let mut h = lanes[0];
    for &lane in &lanes[1..] {
        h = (h ^ lane).wrapping_mul(PRIME);
        h ^= h >> 32;
    }
    h
}

/// Zero bytes needed after stream position `pos` so the next byte lands on
/// an 8-byte boundary (v2 payload alignment).
fn pad_to_8(pos: u64) -> usize {
    (pos.wrapping_neg() % 8) as usize
}

/// A parsed (or to-be-written) container: an ordered list of sections.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Container {
    /// Sections in file order.
    pub sections: Vec<Section>,
}

impl Container {
    /// An empty container.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a section.
    pub fn push(&mut self, s: Section) {
        self.sections.push(s);
    }

    /// Looks up a section's data by name (first match).
    pub fn get(&self, name: &str) -> Option<&SectionData> {
        self.sections
            .iter()
            .find(|s| s.name == name)
            .map(|s| &s.data)
    }

    /// Removes and returns a section's data by name (first match). Lets
    /// loaders move large payloads (the CSR target array) out of the
    /// container instead of copying them.
    pub fn take(&mut self, name: &str) -> Option<SectionData> {
        let i = self.sections.iter().position(|s| s.name == name)?;
        Some(self.sections.remove(i).data)
    }

    /// A required u32 section.
    pub fn u32s(&self, name: &str) -> Result<&[u32], StoreError> {
        match self.get(name) {
            Some(SectionData::U32(v)) => Ok(v),
            Some(_) => Err(StoreError::Format(format!("section {name:?} is not u32"))),
            None => Err(StoreError::Format(format!("missing section {name:?}"))),
        }
    }

    /// A required u64 section.
    pub fn u64s(&self, name: &str) -> Result<&[u64], StoreError> {
        match self.get(name) {
            Some(SectionData::U64(v)) => Ok(v),
            Some(_) => Err(StoreError::Format(format!("section {name:?} is not u64"))),
            None => Err(StoreError::Format(format!("missing section {name:?}"))),
        }
    }

    /// A required f64 section.
    pub fn f64s(&self, name: &str) -> Result<&[f64], StoreError> {
        match self.get(name) {
            Some(SectionData::F64(v)) => Ok(v),
            Some(_) => Err(StoreError::Format(format!("section {name:?} is not f64"))),
            None => Err(StoreError::Format(format!("missing section {name:?}"))),
        }
    }

    /// A required string (bytes, utf-8) section.
    pub fn string(&self, name: &str) -> Result<&str, StoreError> {
        match self.get(name) {
            Some(SectionData::Bytes(v)) => std::str::from_utf8(v)
                .map_err(|_| StoreError::Format(format!("section {name:?} is not utf-8"))),
            Some(_) => Err(StoreError::Format(format!("section {name:?} is not bytes"))),
            None => Err(StoreError::Format(format!("missing section {name:?}"))),
        }
    }

    /// Serializes the container in the current (v2) format: header, then
    /// every section with its payload padded to an 8-byte file offset and
    /// its 4-lane checksum. The pad length is recomputed from the running
    /// position, never stored.
    pub fn write_to<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        let nsect = u32::try_from(self.sections.len())
            .map_err(|_| io::Error::other("too many sections"))?;
        w.write_all(&nsect.to_le_bytes())?;
        let mut pos: u64 = 12; // magic + version + nsect
        for s in &self.sections {
            let name = s.name.as_bytes();
            let name_len = u16::try_from(name.len())
                .map_err(|_| io::Error::other(format!("section name too long: {:?}", s.name)))?;
            w.write_all(&name_len.to_le_bytes())?;
            w.write_all(name)?;
            let tag = s.data.tag();
            w.write_all(&[tag])?;
            w.write_all(&(s.data.len() as u64).to_le_bytes())?;
            pos += 2 + name.len() as u64 + 1 + 8;
            let pad = pad_to_8(pos);
            w.write_all(&[0u8; 8][..pad])?;
            pos += pad as u64;
            let payload = s.data.payload();
            w.write_all(&payload)?;
            pos += payload.len() as u64 + 8;
            let checksum = section_checksum_v2(&[name, &[tag], &payload]);
            w.write_all(&checksum.to_le_bytes())?;
        }
        Ok(())
    }

    /// Like [`Container::write_to`], but with a caller-chosen magic and
    /// version — the same section framing and checksums carry sibling
    /// formats (the `.cgtes` session snapshots use `CGTES\0`).
    pub fn write_to_magic<W: Write>(
        &self,
        mut w: W,
        magic: &[u8; 6],
        version: u16,
    ) -> io::Result<()> {
        w.write_all(magic)?;
        w.write_all(&version.to_le_bytes())?;
        let nsect = u32::try_from(self.sections.len())
            .map_err(|_| io::Error::other("too many sections"))?;
        w.write_all(&nsect.to_le_bytes())?;
        for s in &self.sections {
            let name = s.name.as_bytes();
            let name_len = u16::try_from(name.len())
                .map_err(|_| io::Error::other(format!("section name too long: {:?}", s.name)))?;
            w.write_all(&name_len.to_le_bytes())?;
            w.write_all(name)?;
            let tag = s.data.tag();
            w.write_all(&[tag])?;
            w.write_all(&(s.data.len() as u64).to_le_bytes())?;
            let payload = s.data.payload();
            w.write_all(&payload)?;
            let checksum = section_checksum(&[name, &[tag], &payload]);
            w.write_all(&checksum.to_le_bytes())?;
        }
        Ok(())
    }

    /// Parses a container (version 1 or 2), verifying the magic, section
    /// framing and every per-section checksum. Truncated or corrupted
    /// input yields an error — never a panic.
    pub fn read_from<R: Read>(r: R) -> Result<Container, StoreError> {
        let mut r = CountingReader { inner: r, pos: 0 };
        let mut magic = [0u8; 6];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(StoreError::Format(format!(
                "bad magic {magic:?} (expected {MAGIC:?})"
            )));
        }
        let version = read_u16(&mut r)?;
        if version != VERSION && version != VERSION_V1 {
            return Err(StoreError::Format(format!(
                "unsupported version {version} (this build reads versions {VERSION_V1} and {VERSION})"
            )));
        }
        let nsect = read_u32(&mut r)?;
        let mut sections = Vec::new();
        for i in 0..nsect {
            let name_len = read_u16(&mut r)? as usize;
            let mut name_buf = vec![0u8; name_len];
            r.read_exact(&mut name_buf)?;
            let name = String::from_utf8(name_buf)
                .map_err(|_| StoreError::Format(format!("section {i} name is not utf-8")))?;
            let mut tag = [0u8; 1];
            r.read_exact(&mut tag)?;
            let tag = tag[0];
            let count = read_u64(&mut r)?;
            let elem_size: u64 = match tag {
                1 => 4,
                2 | 3 => 8,
                4 => 1,
                other => {
                    return Err(StoreError::Format(format!(
                        "section {name:?} has unknown tag {other}"
                    )))
                }
            };
            let byte_len = count
                .checked_mul(elem_size)
                .ok_or_else(|| StoreError::Format(format!("section {name:?} count overflows")))?;
            if version >= VERSION {
                // v2 alignment pad; must read back as zeros (pads are not
                // checksummed, so this is what keeps them tamper-evident).
                let mut pad_buf = [0u8; 8];
                let pad = pad_to_8(r.pos);
                r.read_exact(&mut pad_buf[..pad])?;
                if pad_buf[..pad].iter().any(|&b| b != 0) {
                    return Err(StoreError::Format(format!(
                        "section {name:?} has nonzero pad bytes"
                    )));
                }
            }
            // Read via `take` so a corrupted (huge) count cannot trigger a
            // matching up-front allocation: beyond the pre-reserve cap the
            // buffer grows only as real bytes arrive, and a short read is
            // a clean truncation error. Honest section sizes (the cap is
            // far above any real graph's) are reserved exactly, so the
            // bulk read lands in one allocation with no regrow copies.
            const RESERVE_CAP: u64 = 1 << 28;
            let mut payload = Vec::new();
            payload.reserve_exact(byte_len.min(RESERVE_CAP) as usize);
            let read = (&mut r)
                .take(byte_len)
                .read_to_end(&mut payload)
                .map_err(StoreError::Io)?;
            if read as u64 != byte_len {
                return Err(StoreError::Format(format!(
                    "section {name:?} truncated ({read} of {byte_len} bytes)"
                )));
            }
            let checksum = read_u64(&mut r)?;
            let expected = if version >= VERSION {
                section_checksum_v2(&[name.as_bytes(), &[tag], &payload])
            } else {
                section_checksum(&[name.as_bytes(), &[tag], &payload])
            };
            if expected != checksum {
                return Err(StoreError::Checksum { section: name });
            }
            let data = SectionData::from_payload(tag, count as usize, &payload)?;
            sections.push(Section { name, data });
        }
        Ok(Container { sections })
    }

    /// Like [`Container::read_from`], but for a sibling format with its
    /// own magic and version (see [`Container::write_to_magic`]).
    pub fn read_from_magic<R: Read>(
        mut r: R,
        expect_magic: &[u8; 6],
        expect_version: u16,
    ) -> Result<Container, StoreError> {
        let mut magic = [0u8; 6];
        r.read_exact(&mut magic)?;
        if &magic != expect_magic {
            return Err(StoreError::Format(format!(
                "bad magic {magic:?} (expected {expect_magic:?})"
            )));
        }
        let version = read_u16(&mut r)?;
        if version != expect_version {
            return Err(StoreError::Format(format!(
                "unsupported version {version} (this build reads version {expect_version})"
            )));
        }
        let nsect = read_u32(&mut r)?;
        let mut sections = Vec::new();
        for i in 0..nsect {
            let name_len = read_u16(&mut r)? as usize;
            let mut name_buf = vec![0u8; name_len];
            r.read_exact(&mut name_buf)?;
            let name = String::from_utf8(name_buf)
                .map_err(|_| StoreError::Format(format!("section {i} name is not utf-8")))?;
            let mut tag = [0u8; 1];
            r.read_exact(&mut tag)?;
            let tag = tag[0];
            let count = read_u64(&mut r)?;
            let elem_size: u64 = match tag {
                1 => 4,
                2 | 3 => 8,
                4 => 1,
                other => {
                    return Err(StoreError::Format(format!(
                        "section {name:?} has unknown tag {other}"
                    )))
                }
            };
            let byte_len = count
                .checked_mul(elem_size)
                .ok_or_else(|| StoreError::Format(format!("section {name:?} count overflows")))?;
            // Read via `take` so a corrupted (huge) count cannot trigger a
            // matching up-front allocation: beyond the pre-reserve cap the
            // buffer grows only as real bytes arrive, and a short read is
            // a clean truncation error. Honest section sizes (the cap is
            // far above any real graph's) are reserved exactly, so the
            // bulk read lands in one allocation with no regrow copies.
            const RESERVE_CAP: u64 = 1 << 28;
            let mut payload = Vec::new();
            payload.reserve_exact(byte_len.min(RESERVE_CAP) as usize);
            let read = (&mut r)
                .take(byte_len)
                .read_to_end(&mut payload)
                .map_err(StoreError::Io)?;
            if read as u64 != byte_len {
                return Err(StoreError::Format(format!(
                    "section {name:?} truncated ({read} of {byte_len} bytes)"
                )));
            }
            let checksum = read_u64(&mut r)?;
            if section_checksum(&[name.as_bytes(), &[tag], &payload]) != checksum {
                return Err(StoreError::Checksum { section: name });
            }
            let data = SectionData::from_payload(tag, count as usize, &payload)?;
            sections.push(Section { name, data });
        }
        Ok(Container { sections })
    }
}

/// A lightweight table-of-contents view of a `.cgteg` file, produced by
/// [`scan_summary`] without materializing the (large) CSR payloads.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StoreSummary {
    /// Container version the file was written with (1 or 2).
    pub version: u16,
    /// `(name, element count, payload bytes)` of every section, in order.
    pub sections: Vec<(String, usize, usize)>,
    /// Node count derived from the CSR offsets section, if present.
    pub num_nodes: Option<usize>,
    /// Edge count derived from the CSR targets section, if present.
    pub num_edges: Option<usize>,
    /// The `meta.kind` string, if present.
    pub kind: Option<String>,
    /// The `meta.key` string, if present (the scenario cache's content
    /// key / collision guard).
    pub key: Option<String>,
    /// Names of the partition blocks (`part.<name>` sections).
    pub partitions: Vec<String>,
}

/// Scans a container's framing without loading section payloads: small
/// metadata sections (`meta.*`) are read, everything else is **seeked
/// past** — `O(metadata)` memory *and* I/O regardless of graph size,
/// which is what lets a server list a directory of million-node graphs
/// without reading any of them.
///
/// Checksums of skipped sections are **not** verified; the full
/// [`Container::read_from`] path re-validates everything at load time.
pub fn scan_summary<R: Read + io::Seek>(mut r: R) -> Result<StoreSummary, StoreError> {
    let mut magic = [0u8; 6];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(StoreError::Format(format!(
            "bad magic {magic:?} (not a .cgteg file)"
        )));
    }
    let version = read_u16(&mut r)?;
    if version != VERSION && version != VERSION_V1 {
        return Err(StoreError::Format(format!(
            "unsupported version {version} (this build reads versions {VERSION_V1} and {VERSION})"
        )));
    }
    let nsect = read_u32(&mut r)?;
    let mut out = StoreSummary {
        version,
        ..StoreSummary::default()
    };
    for i in 0..nsect {
        let name_len = read_u16(&mut r)? as usize;
        let mut name_buf = vec![0u8; name_len];
        r.read_exact(&mut name_buf)?;
        let name = String::from_utf8(name_buf)
            .map_err(|_| StoreError::Format(format!("section {i} name is not utf-8")))?;
        let mut tag = [0u8; 1];
        r.read_exact(&mut tag)?;
        let tag = tag[0];
        let count = read_u64(&mut r)?;
        let elem_size: u64 = match tag {
            1 => 4,
            2 | 3 => 8,
            4 => 1,
            other => {
                return Err(StoreError::Format(format!(
                    "section {name:?} has unknown tag {other}"
                )))
            }
        };
        let byte_len = count
            .checked_mul(elem_size)
            .ok_or_else(|| StoreError::Format(format!("section {name:?} count overflows")))?;
        if version >= VERSION {
            let pos = r.stream_position().map_err(StoreError::Io)?;
            let pad = pad_to_8(pos) as u64;
            if pad > 0 {
                r.seek(io::SeekFrom::Start(pos + pad))
                    .map_err(StoreError::Io)?;
            }
        }
        // Metadata strings are tiny; cap defensively so a hostile count
        // cannot balloon the scan.
        const META_CAP: u64 = 1 << 16;
        if tag == 4 && name.starts_with("meta.") && byte_len <= META_CAP {
            let mut payload = vec![0u8; byte_len as usize];
            r.read_exact(&mut payload)?;
            if let Ok(s) = std::str::from_utf8(&payload) {
                match name.as_str() {
                    "meta.kind" => out.kind = Some(s.to_string()),
                    "meta.key" => out.key = Some(s.to_string()),
                    _ => {}
                }
            }
        } else {
            let pos = r.stream_position().map_err(StoreError::Io)?;
            let end = r.seek(io::SeekFrom::End(0)).map_err(StoreError::Io)?;
            if end.saturating_sub(pos) < byte_len {
                return Err(StoreError::Format(format!(
                    "section {name:?} truncated ({} of {byte_len} bytes)",
                    end.saturating_sub(pos)
                )));
            }
            r.seek(io::SeekFrom::Start(pos + byte_len))
                .map_err(StoreError::Io)?;
        }
        let _checksum = read_u64(&mut r)?;
        match name.as_str() {
            SEC_OFFSETS => out.num_nodes = Some((count as usize).saturating_sub(1)),
            SEC_TARGETS => out.num_edges = Some(count as usize / 2),
            _ => {
                if let Some(p) = name.strip_prefix("part.") {
                    out.partitions.push(p.to_string());
                }
            }
        }
        out.sections.push((name, count as usize, byte_len as usize));
    }
    Ok(out)
}

/// Wraps a reader with a running byte position, so the streamed v2 reader
/// can recompute each section's pad length (pads are position-derived,
/// never stored) without requiring `Seek`.
struct CountingReader<R> {
    inner: R,
    pos: u64,
}

impl<R: Read> Read for CountingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.pos += n as u64;
        Ok(n)
    }
}

fn read_u16<R: Read>(r: &mut R) -> Result<u16, StoreError> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, StoreError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, StoreError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

// ---------------------------------------------------------------------------
// Graph / partition codecs

/// The two CSR sections of a graph.
pub fn graph_sections(g: &Graph) -> Vec<Section> {
    vec![
        Section::u64s(
            SEC_OFFSETS,
            g.csr_offsets().iter().map(|&o| o as u64).collect(),
        ),
        Section::u32s(SEC_TARGETS, g.csr_neighbors().to_vec()),
    ]
}

/// Encodes a partition as one section: `data[0]` is the category count,
/// `data[1..]` the per-node category assignments.
pub fn partition_section(name: &str, p: &Partition) -> Section {
    let mut data = Vec::with_capacity(p.num_nodes() + 1);
    data.push(p.num_categories() as u32);
    data.extend_from_slice(p.assignments());
    Section::u32s(partition_section_name(name), data)
}

/// Decodes the named partition block, if present, checking that it covers
/// exactly `num_nodes` nodes.
pub fn partition_from_container(
    c: &Container,
    name: &str,
    num_nodes: usize,
) -> Result<Option<Partition>, StoreError> {
    let sec = partition_section_name(name);
    let Some(data) = c.get(&sec) else {
        return Ok(None);
    };
    let SectionData::U32(v) = data else {
        return Err(StoreError::Format(format!("section {sec:?} is not u32")));
    };
    let Some((&ncat, assign)) = v.split_first() else {
        return Err(StoreError::Graph(format!("partition {name:?} is empty")));
    };
    if assign.len() != num_nodes {
        return Err(StoreError::Graph(format!(
            "partition {name:?} covers {} nodes, graph has {num_nodes}",
            assign.len()
        )));
    }
    Partition::from_assignments(assign.to_vec(), ncat as usize)
        .map(Some)
        .map_err(|e| StoreError::Graph(e.to_string()))
}

/// Reconstructs the graph from the CSR sections, proving the invariants
/// the in-memory [`Graph`] relies on (see [`Validate`]).
#[deprecated(note = "use `store::Loader` (open → validate → load_graph) instead")]
pub fn graph_from_container(c: &Container, validate: Validate) -> Result<Graph, StoreError> {
    graph_from_container_impl(c, validate)
}

/// Like [`graph_from_container`], but **moves** the CSR sections out of
/// the container instead of copying the (large) target array.
#[deprecated(note = "use `store::Loader` (open → validate → load) instead")]
pub fn graph_from_container_owned(
    c: &mut Container,
    validate: Validate,
) -> Result<Graph, StoreError> {
    graph_from_container_owned_impl(c, validate)
}

fn graph_from_container_impl(c: &Container, validate: Validate) -> Result<Graph, StoreError> {
    let offsets64 = c.u64s(SEC_OFFSETS)?;
    let targets = c.u32s(SEC_TARGETS)?;
    let offsets = validate_csr(offsets64, targets, validate)?;
    Ok(Graph::from_csr_trusted(offsets, targets.to_vec()))
}

/// The hot owned-decode path behind [`Loader::load`] for streamed (v1 or
/// non-mmap) loads: moves the CSR sections out of the container instead of
/// copying the (large) target array.
fn graph_from_container_owned_impl(
    c: &mut Container,
    validate: Validate,
) -> Result<Graph, StoreError> {
    let offsets64 = match c.take(SEC_OFFSETS) {
        Some(SectionData::U64(v)) => v,
        Some(_) => {
            return Err(StoreError::Format(format!(
                "section {SEC_OFFSETS:?} is not u64"
            )))
        }
        None => {
            return Err(StoreError::Format(format!(
                "missing section {SEC_OFFSETS:?}"
            )))
        }
    };
    let targets = match c.take(SEC_TARGETS) {
        Some(SectionData::U32(v)) => v,
        Some(_) => {
            return Err(StoreError::Format(format!(
                "section {SEC_TARGETS:?} is not u32"
            )))
        }
        None => {
            return Err(StoreError::Format(format!(
                "missing section {SEC_TARGETS:?}"
            )))
        }
    };
    let offsets = validate_csr(&offsets64, &targets, validate)?;
    Ok(Graph::from_csr_trusted(offsets, targets))
}

/// Converts the on-disk u64 offsets to `usize` (the streamed path's half
/// of [`validate_csr`]; the mapped path reinterprets in place instead).
fn offsets_to_usize(offsets64: &[u64]) -> Result<Vec<usize>, StoreError> {
    let mut offsets = Vec::with_capacity(offsets64.len());
    for &o in offsets64 {
        offsets.push(
            usize::try_from(o).map_err(|_| {
                StoreError::Graph(format!("offset {o} exceeds this platform's usize"))
            })?,
        );
    }
    Ok(offsets)
}

/// Verifies CSR invariants (per [`Validate`]) on the final `usize`/`u32`
/// views — shared verbatim by the streamed (decoded vectors) and mapped
/// (borrowed slices) load paths.
fn check_csr(offsets: &[usize], targets: &[NodeId], validate: Validate) -> Result<(), StoreError> {
    if offsets.is_empty() {
        return Err(StoreError::Graph("offset array is empty".into()));
    }
    let n = offsets.len() - 1;
    if n > NodeId::MAX as usize {
        return Err(StoreError::Graph(format!(
            "{n} nodes exceed NodeId capacity"
        )));
    }
    if offsets[0] != 0 {
        return Err(StoreError::Graph("offsets do not start at 0".into()));
    }
    if *offsets.last().expect("non-empty") != targets.len() {
        return Err(StoreError::Graph(format!(
            "last offset {} does not match target count {}",
            offsets.last().expect("non-empty"),
            targets.len()
        )));
    }
    if !targets.len().is_multiple_of(2) {
        return Err(StoreError::Graph(
            "odd target count (undirected edges are stored twice)".into(),
        ));
    }
    if validate == Validate::Trusted {
        return Ok(());
    }
    if !offsets.windows(2).all(|w| w[0] <= w[1]) {
        return Err(StoreError::Graph("offsets are not monotone".into()));
    }
    // Bounds first, over the flat array (vectorizes well), then per-list
    // structure: strictly ascending (no duplicates) and self-loop free.
    if let Some(&bad) = targets.iter().find(|&&u| u as usize >= n) {
        return Err(StoreError::Graph(format!(
            "target {bad} out of range ({n} nodes)"
        )));
    }
    for v in 0..n {
        let adj = &targets[offsets[v]..offsets[v + 1]];
        if !adj.windows(2).all(|w| w[0] < w[1]) {
            return Err(StoreError::Graph(format!(
                "adjacency of node {v} is not strictly sorted"
            )));
        }
        if adj.binary_search(&(v as NodeId)).is_ok() {
            return Err(StoreError::Graph(format!("self-loop on node {v}")));
        }
    }
    if validate == Validate::Full {
        // Symmetry via one O(E) transpose pass: because source nodes are
        // visited in ascending order, the transpose of a symmetric CSR is
        // itself — any mismatch is an asymmetric edge.
        let mut cursor = offsets[..n].to_vec();
        let mut transpose = vec![0 as NodeId; targets.len()];
        for u in 0..n {
            for &v in &targets[offsets[u]..offsets[u + 1]] {
                let vi = v as usize;
                if cursor[vi] == offsets[vi + 1] {
                    return Err(StoreError::Graph(format!(
                        "edge ({u},{v}) is not symmetric"
                    )));
                }
                transpose[cursor[vi]] = u as NodeId;
                cursor[vi] += 1;
            }
        }
        if transpose != *targets {
            return Err(StoreError::Graph("adjacency is not symmetric".into()));
        }
    }
    Ok(())
}

/// Verifies CSR invariants (per [`Validate`]) and returns the offsets
/// converted to `usize`.
fn validate_csr(
    offsets64: &[u64],
    targets: &[u32],
    validate: Validate,
) -> Result<Vec<usize>, StoreError> {
    let offsets = offsets_to_usize(offsets64)?;
    check_csr(&offsets, targets, validate)?;
    Ok(offsets)
}

// ---------------------------------------------------------------------------
// Convenience bundle API (cgte ingest / file= scenario sources)

/// A graph plus its optional primary partition — what `cgte ingest`
/// writes and `file =` scenario sources read.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphBundle {
    /// The graph.
    pub graph: Graph,
    /// The `main` partition block, when the file carries one.
    pub partition: Option<Partition>,
}

/// Writes a graph (+ optional `main` partition) as a `.cgteg` stream.
pub fn write_bundle<W: Write>(
    w: W,
    graph: &Graph,
    partition: Option<&Partition>,
) -> io::Result<()> {
    let mut c = Container::new();
    for s in graph_sections(graph) {
        c.push(s);
    }
    if let Some(p) = partition {
        c.push(partition_section("main", p));
    }
    c.write_to(w)
}

/// Reads a `.cgteg` stream back into a graph (+ `main` partition).
#[deprecated(note = "use `store::Loader` (open → validate → load_bundle) instead")]
pub fn read_bundle<R: Read>(r: R, validate: Validate) -> Result<GraphBundle, StoreError> {
    read_bundle_impl(r, validate)
}

fn read_bundle_impl<R: Read>(r: R, validate: Validate) -> Result<GraphBundle, StoreError> {
    let mut c = Container::read_from(r)?;
    let graph = graph_from_container_owned_impl(&mut c, validate)?;
    let partition = partition_from_container(&c, "main", graph.num_nodes())?;
    Ok(GraphBundle { graph, partition })
}

// ---------------------------------------------------------------------------
// Loader — the one entry point for reading `.cgteg` files from disk

/// Everything a `.cgteg` file holds: the graph, plus every non-CSR section
/// (partition blocks, metadata, scenario-cache extras) decoded owned into
/// `rest`. On a mapped load the graph borrows the CSR arrays from the
/// mapping; `rest` is always heap-owned (those sections are small).
#[derive(Debug)]
pub struct LoadedStore {
    /// The graph, heap-owned or mmap-backed (see [`Graph::is_mapped`]).
    pub graph: Graph,
    /// All remaining sections, CSR removed.
    pub rest: Container,
}

/// Builder-style loader for `.cgteg` files — the single entry point that
/// replaces the old `read_bundle` / `graph_from_container*` free
/// functions.
///
/// ```no_run
/// use cgte_graph::store::{Loader, Validate};
/// let g = Loader::open("graph.cgteg")
///     .validate(Validate::Full)
///     .mmap(true)
///     .load_graph()?;
/// # Ok::<(), cgte_graph::store::StoreError>(())
/// ```
///
/// With `mmap(true)` the CSR payloads of a v2 file are borrowed zero-copy
/// from a shared read-only mapping: section checksums are verified against
/// the mapped bytes *before* any borrow is handed out, then the configured
/// [`Validate`] level proves CSR structure on the mapped view — exactly
/// the checks the streamed path runs. The loader silently falls back to
/// the streamed heap decode for v1 files, when the `mmap` syscall fails,
/// or on platforms without `mmap` support (non-unix, 32-bit, or
/// big-endian); corruption and format errors always propagate rather than
/// falling back. [`Graph::is_mapped`] reports which path served a load.
#[derive(Debug, Clone)]
pub struct Loader {
    path: PathBuf,
    validate: Validate,
    mmap: bool,
}

impl Loader {
    /// Starts a loader for the given file with [`Validate::Full`] checking
    /// and the streamed (heap) path; chain [`Loader::validate`] /
    /// [`Loader::mmap`] to adjust.
    pub fn open(path: impl AsRef<Path>) -> Loader {
        Loader {
            path: path.as_ref().to_path_buf(),
            validate: Validate::Full,
            mmap: false,
        }
    }

    /// Sets the CSR validation level (default [`Validate::Full`]).
    pub fn validate(mut self, v: Validate) -> Loader {
        self.validate = v;
        self
    }

    /// Requests the zero-copy mapped path (default off). See the type docs
    /// for when the loader falls back to the heap decode.
    pub fn mmap(mut self, on: bool) -> Loader {
        self.mmap = on;
        self
    }

    /// The file this loader reads.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Scans the file's table of contents without reading section payloads
    /// — `O(metadata)` I/O regardless of graph size.
    pub fn summary(&self) -> Result<StoreSummary, StoreError> {
        scan_summary(BufReader::new(File::open(&self.path)?))
    }

    /// Reads the whole container heap-owned (every section decoded),
    /// ignoring the mmap setting — for callers that need raw sections
    /// rather than a graph.
    pub fn load_container(&self) -> Result<Container, StoreError> {
        Container::read_from(BufReader::new(File::open(&self.path)?))
    }

    /// Loads the graph plus all remaining sections.
    pub fn load(&self) -> Result<LoadedStore, StoreError> {
        #[cfg(cgte_mmap)]
        if self.mmap {
            if let Some(loaded) = self.load_mapped()? {
                return Ok(loaded);
            }
        }
        let mut rest = self.load_container()?;
        let graph = graph_from_container_owned_impl(&mut rest, self.validate)?;
        Ok(LoadedStore { graph, rest })
    }

    /// Loads just the graph.
    pub fn load_graph(&self) -> Result<Graph, StoreError> {
        Ok(self.load()?.graph)
    }

    /// Loads the graph plus its optional `main` partition (what
    /// `cgte ingest` writes and `file =` scenario sources read).
    pub fn load_bundle(&self) -> Result<GraphBundle, StoreError> {
        let loaded = self.load()?;
        let partition = partition_from_container(&loaded.rest, "main", loaded.graph.num_nodes())?;
        Ok(GraphBundle {
            graph: loaded.graph,
            partition,
        })
    }

    /// The mapped path: `Ok(None)` means "fall back to the heap decode"
    /// (v1 file or mmap syscall failure); corruption is an error.
    #[cfg(cgte_mmap)]
    fn load_mapped(&self) -> Result<Option<LoadedStore>, StoreError> {
        let file = File::open(&self.path)?;
        let map = match Mmap::map(&file) {
            Ok(m) => Arc::new(m),
            Err(_) => return Ok(None),
        };
        let bytes = map.bytes();
        let Some(secs) = parse_mapped_sections(bytes)? else {
            return Ok(None); // v1 framing: no alignment guarantee, decode owned
        };
        let find = |name: &str, tag: u8, kind: &str| -> Result<&MappedSection, StoreError> {
            let sec = secs
                .iter()
                .find(|s| s.name == name)
                .ok_or_else(|| StoreError::Format(format!("missing section {name:?}")))?;
            if sec.tag != tag {
                return Err(StoreError::Format(format!(
                    "section {name:?} is not {kind}"
                )));
            }
            Ok(sec)
        };
        let off = find(SEC_OFFSETS, 2, "u64")?;
        let tgt = find(SEC_TARGETS, 1, "u32")?;
        let csr = MappedCsr::new(
            Arc::clone(&map),
            off.payload_start,
            off.count,
            tgt.payload_start,
            tgt.count,
        )
        .map_err(StoreError::Format)?;
        check_csr(csr.offsets(), csr.targets(), self.validate)?;
        let graph = Graph::from_mapped(csr);
        let mut rest = Container::new();
        for s in &secs {
            if s.name == SEC_OFFSETS || s.name == SEC_TARGETS {
                continue;
            }
            let payload = &bytes[s.payload_start..s.payload_start + s.payload_len];
            let data = SectionData::from_payload(s.tag, s.count, payload)?;
            rest.push(Section {
                name: s.name.clone(),
                data,
            });
        }
        Ok(Some(LoadedStore { graph, rest }))
    }
}

/// Byte ranges of one section inside a mapped v2 file.
#[cfg(cgte_mmap)]
struct MappedSection {
    name: String,
    tag: u8,
    count: usize,
    payload_start: usize,
    payload_len: usize,
}

/// Walks a v2 container's framing over the mapped bytes, verifying every
/// per-section checksum and pad **before** any payload range is handed
/// out. Returns `Ok(None)` for v1 files (valid, but unaligned — the
/// caller decodes them owned instead).
#[cfg(cgte_mmap)]
fn parse_mapped_sections(bytes: &[u8]) -> Result<Option<Vec<MappedSection>>, StoreError> {
    let truncated = || StoreError::Format("truncated file".into());
    let get = |start: usize, len: usize| -> Result<&[u8], StoreError> {
        bytes
            .get(start..start.checked_add(len).ok_or_else(truncated)?)
            .ok_or_else(truncated)
    };
    let magic = get(0, 6)?;
    if magic != MAGIC {
        return Err(StoreError::Format(format!(
            "bad magic {magic:?} (expected {MAGIC:?})"
        )));
    }
    let version = u16::from_le_bytes(get(6, 2)?.try_into().expect("2 bytes"));
    if version == VERSION_V1 {
        return Ok(None);
    }
    if version != VERSION {
        return Err(StoreError::Format(format!(
            "unsupported version {version} (this build reads versions {VERSION_V1} and {VERSION})"
        )));
    }
    let nsect = u32::from_le_bytes(get(8, 4)?.try_into().expect("4 bytes"));
    let mut pos: usize = 12;
    // Reserve conservatively: a corrupted (huge) nsect must not translate
    // into a matching allocation — the loop below fails on the first
    // out-of-bounds section read instead.
    let mut secs = Vec::with_capacity(nsect.min(64) as usize);
    for i in 0..nsect {
        let name_len = u16::from_le_bytes(get(pos, 2)?.try_into().expect("2 bytes")) as usize;
        pos += 2;
        let name = std::str::from_utf8(get(pos, name_len)?)
            .map_err(|_| StoreError::Format(format!("section {i} name is not utf-8")))?
            .to_string();
        pos += name_len;
        let tag = get(pos, 1)?[0];
        pos += 1;
        let count = u64::from_le_bytes(get(pos, 8)?.try_into().expect("8 bytes"));
        pos += 8;
        let elem_size: u64 = match tag {
            1 => 4,
            2 | 3 => 8,
            4 => 1,
            other => {
                return Err(StoreError::Format(format!(
                    "section {name:?} has unknown tag {other}"
                )))
            }
        };
        let byte_len = count
            .checked_mul(elem_size)
            .ok_or_else(|| StoreError::Format(format!("section {name:?} count overflows")))?;
        let byte_len = usize::try_from(byte_len)
            .map_err(|_| StoreError::Format(format!("section {name:?} count overflows")))?;
        let pad = pad_to_8(pos as u64);
        if get(pos, pad)?.iter().any(|&b| b != 0) {
            return Err(StoreError::Format(format!(
                "section {name:?} has nonzero pad bytes"
            )));
        }
        pos += pad;
        let payload = get(pos, byte_len)?;
        let payload_start = pos;
        pos += byte_len;
        let checksum = u64::from_le_bytes(get(pos, 8)?.try_into().expect("8 bytes"));
        pos += 8;
        if section_checksum_v2(&[name.as_bytes(), &[tag], payload]) != checksum {
            return Err(StoreError::Checksum { section: name });
        }
        secs.push(MappedSection {
            name,
            tag,
            count: count as usize,
            payload_start,
            payload_len: byte_len,
        });
    }
    Ok(Some(secs))
}

#[cfg(test)]
mod tests {
    use super::*;
    // The deprecated free functions delegate to these; testing the impls
    // keeps the suite warning-free (the shims get one dedicated test).
    use super::{
        graph_from_container_impl as graph_from_container, read_bundle_impl as read_bundle,
    };
    use crate::GraphBuilder;

    fn sample_graph() -> Graph {
        GraphBuilder::from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (2, 3)]).unwrap()
    }

    fn temp_file(tag: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("cgte-store-{tag}-{}", std::process::id()));
        std::fs::write(&path, bytes).unwrap();
        path
    }

    #[test]
    fn bundle_round_trips_bit_exactly() {
        let g = sample_graph();
        let p = Partition::from_assignments(vec![0, 0, 0, 1, 1, 1], 2).unwrap();
        let mut buf = Vec::new();
        write_bundle(&mut buf, &g, Some(&p)).unwrap();
        let back = read_bundle(&buf[..], Validate::Full).unwrap();
        assert_eq!(back.graph, g);
        assert_eq!(back.graph.csr_offsets(), g.csr_offsets());
        assert_eq!(back.graph.csr_neighbors(), g.csr_neighbors());
        assert_eq!(back.partition.as_ref(), Some(&p));
    }

    #[test]
    fn bundle_without_partition() {
        let g = sample_graph();
        let mut buf = Vec::new();
        write_bundle(&mut buf, &g, None).unwrap();
        let back = read_bundle(&buf[..], Validate::Trusted).unwrap();
        assert_eq!(back.graph, g);
        assert!(back.partition.is_none());
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = GraphBuilder::new(0).build();
        let mut buf = Vec::new();
        write_bundle(&mut buf, &g, None).unwrap();
        let back = read_bundle(&buf[..], Validate::Full).unwrap();
        assert_eq!(back.graph.num_nodes(), 0);
        assert_eq!(back.graph.num_edges(), 0);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_bundle(&b"NOTCGTEG AT ALL"[..], Validate::Full).unwrap_err();
        assert!(matches!(err, StoreError::Format(_)), "{err}");
    }

    #[test]
    fn wrong_version_is_rejected() {
        let g = sample_graph();
        let mut buf = Vec::new();
        write_bundle(&mut buf, &g, None).unwrap();
        buf[6] = 99; // version low byte
        let err = read_bundle(&buf[..], Validate::Full).unwrap_err();
        match err {
            StoreError::Format(m) => assert!(m.contains("version"), "{m}"),
            other => panic!("expected format error, got {other}"),
        }
    }

    #[test]
    fn every_truncation_point_fails_cleanly() {
        let g = sample_graph();
        let p = Partition::from_assignments(vec![0, 0, 0, 1, 1, 1], 2).unwrap();
        let mut buf = Vec::new();
        write_bundle(&mut buf, &g, Some(&p)).unwrap();
        for len in 0..buf.len() {
            assert!(
                read_bundle(&buf[..len], Validate::Full).is_err(),
                "truncation at {len} bytes must fail"
            );
        }
    }

    #[test]
    fn every_single_byte_flip_fails_cleanly() {
        // Exhaustive bit-rot sweep: flipping any byte must produce an
        // error (usually a checksum mismatch), never a panic or a
        // silently different graph.
        let g = sample_graph();
        let p = Partition::from_assignments(vec![0, 0, 0, 1, 1, 1], 2).unwrap();
        let mut buf = Vec::new();
        write_bundle(&mut buf, &g, Some(&p)).unwrap();
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0xFF;
            match read_bundle(&bad[..], Validate::Full) {
                Err(_) => {}
                Ok(b) => {
                    // A flip confined to a checksum-covered payload must be
                    // caught; the only acceptable Ok is a flip that somehow
                    // reconstructs the identical input (impossible for XOR
                    // with 0xFF), so any Ok must still equal the original.
                    assert_eq!(b.graph, g, "byte {i} flip silently changed the graph");
                    assert_eq!(b.partition.as_ref(), Some(&p));
                    panic!("byte {i} flip was not detected");
                }
            }
        }
    }

    #[test]
    fn corrupted_checksum_reports_section() {
        let g = sample_graph();
        let mut buf = Vec::new();
        write_bundle(&mut buf, &g, None).unwrap();
        // Corrupt one payload byte of the final section (its checksum is
        // the last 8 bytes).
        let idx = buf.len() - 12;
        buf[idx] ^= 0x01;
        let err = read_bundle(&buf[..], Validate::Full).unwrap_err();
        assert!(matches!(err, StoreError::Checksum { .. }), "{err}");
    }

    #[test]
    fn asymmetric_csr_is_rejected_by_full_validation() {
        // Hand-craft a container whose lists are sorted and in range but
        // not symmetric: 0 -> 1 without 1 -> 0.
        let mut c = Container::new();
        c.push(Section::u64s(SEC_OFFSETS, vec![0, 1, 1, 2]));
        c.push(Section::u32s(SEC_TARGETS, vec![1, 0]));
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        let parsed = Container::read_from(&buf[..]).unwrap();
        let err = graph_from_container(&parsed, Validate::Full).unwrap_err();
        assert!(matches!(err, StoreError::Graph(_)), "{err}");
    }

    #[test]
    fn unsorted_or_out_of_range_targets_rejected() {
        for targets in [vec![2, 1, 0, 0], vec![9, 9, 0, 0]] {
            let mut c = Container::new();
            c.push(Section::u64s(SEC_OFFSETS, vec![0, 2, 3, 4]));
            c.push(Section::u32s(SEC_TARGETS, targets));
            let mut buf = Vec::new();
            c.write_to(&mut buf).unwrap();
            let parsed = Container::read_from(&buf[..]).unwrap();
            assert!(graph_from_container(&parsed, Validate::Structure).is_err());
        }
    }

    #[test]
    fn self_loop_rejected() {
        let mut c = Container::new();
        c.push(Section::u64s(SEC_OFFSETS, vec![0, 1, 2]));
        c.push(Section::u32s(SEC_TARGETS, vec![0, 0]));
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        let parsed = Container::read_from(&buf[..]).unwrap();
        let err = graph_from_container(&parsed, Validate::Structure).unwrap_err();
        match err {
            StoreError::Graph(m) => assert!(m.contains("self-loop"), "{m}"),
            other => panic!("expected graph error, got {other}"),
        }
    }

    #[test]
    fn partition_block_mismatch_rejected() {
        let g = sample_graph();
        let mut c = Container::new();
        for s in graph_sections(&g) {
            c.push(s);
        }
        // Partition covering the wrong node count.
        let p = Partition::trivial(3);
        c.push(partition_section("main", &p));
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        let parsed = Container::read_from(&buf[..]).unwrap();
        let graph = graph_from_container(&parsed, Validate::Full).unwrap();
        assert!(partition_from_container(&parsed, "main", graph.num_nodes()).is_err());
    }

    #[test]
    fn generic_sections_round_trip() {
        let mut c = Container::new();
        c.push(Section::f64s("floats", vec![1.5, f64::NAN, -0.0]));
        c.push(Section::string("meta.kind", "facebook"));
        c.push(Section::u64s("counts", vec![3, 2]));
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        let back = Container::read_from(&buf[..]).unwrap();
        let f = back.f64s("floats").unwrap();
        assert_eq!(f[0], 1.5);
        assert!(f[1].is_nan());
        assert_eq!(f[2].to_bits(), (-0.0f64).to_bits());
        assert_eq!(back.string("meta.kind").unwrap(), "facebook");
        assert_eq!(back.u64s("counts").unwrap(), &[3, 2]);
        assert!(back.get("absent").is_none());
        assert!(back.u32s("counts").is_err(), "type mismatch is an error");
    }

    fn v1_bundle_bytes(g: &Graph, p: Option<&Partition>) -> Vec<u8> {
        let mut c = Container::new();
        for s in graph_sections(g) {
            c.push(s);
        }
        if let Some(p) = p {
            c.push(partition_section("main", p));
        }
        let mut buf = Vec::new();
        // write_to_magic keeps the legacy framing: no pads, old checksum.
        c.write_to_magic(&mut buf, MAGIC, VERSION_V1).unwrap();
        buf
    }

    #[test]
    fn v1_files_remain_readable() {
        let g = sample_graph();
        let p = Partition::from_assignments(vec![0, 0, 0, 1, 1, 1], 2).unwrap();
        let buf = v1_bundle_bytes(&g, Some(&p));
        let back = read_bundle(&buf[..], Validate::Full).unwrap();
        assert_eq!(back.graph, g);
        assert_eq!(back.partition.as_ref(), Some(&p));
        // The mapped path must fall back to the heap decode for v1.
        let path = temp_file("v1compat", &buf);
        let bundle = Loader::open(&path).mmap(true).load_bundle().unwrap();
        assert_eq!(bundle.graph, g);
        assert!(!bundle.graph.is_mapped());
        assert_eq!(
            Loader::open(&path).summary().unwrap().version,
            VERSION_V1,
            "summary reports the on-disk version"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v2_payloads_start_on_8_byte_boundaries() {
        let g = sample_graph();
        let p = Partition::from_assignments(vec![0, 0, 0, 1, 1, 1], 2).unwrap();
        let mut buf = Vec::new();
        write_bundle(&mut buf, &g, Some(&p)).unwrap();
        assert_eq!(u16::from_le_bytes([buf[6], buf[7]]), VERSION);
        let nsect = u32::from_le_bytes(buf[8..12].try_into().unwrap());
        let mut pos = 12usize;
        for _ in 0..nsect {
            let name_len = u16::from_le_bytes(buf[pos..pos + 2].try_into().unwrap()) as usize;
            pos += 2 + name_len;
            let tag = buf[pos];
            pos += 1;
            let count = u64::from_le_bytes(buf[pos..pos + 8].try_into().unwrap()) as usize;
            pos += 8;
            let elem: usize = match tag {
                1 => 4,
                2 | 3 => 8,
                4 => 1,
                other => panic!("unknown tag {other}"),
            };
            let pad = (8 - pos % 8) % 8;
            assert!(buf[pos..pos + pad].iter().all(|&b| b == 0), "pad not zero");
            pos += pad;
            assert_eq!(pos % 8, 0, "payload must start 8-aligned");
            pos += count * elem + 8;
        }
        assert_eq!(pos, buf.len(), "walker must consume the whole file");
    }

    #[test]
    fn loader_summary_reports_toc() {
        let g = sample_graph();
        let p = Partition::from_assignments(vec![0, 0, 0, 1, 1, 1], 2).unwrap();
        let mut buf = Vec::new();
        write_bundle(&mut buf, &g, Some(&p)).unwrap();
        let path = temp_file("summary", &buf);
        let s = Loader::open(&path).summary().unwrap();
        assert_eq!(s.version, VERSION);
        assert_eq!(s.num_nodes, Some(6));
        assert_eq!(s.num_edges, Some(6));
        assert_eq!(s.partitions, vec!["main".to_string()]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trusted_skips_structural_checks() {
        // Unsorted targets with consistent framing: Trusted (checksums +
        // O(1) checks) accepts, Structure and Full reject.
        let mut c = Container::new();
        c.push(Section::u64s(SEC_OFFSETS, vec![0, 2, 3, 4]));
        c.push(Section::u32s(SEC_TARGETS, vec![2, 1, 0, 0]));
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        let parsed = Container::read_from(&buf[..]).unwrap();
        assert!(graph_from_container(&parsed, Validate::Trusted).is_ok());
        assert!(graph_from_container(&parsed, Validate::Structure).is_err());
        assert!(graph_from_container(&parsed, Validate::Full).is_err());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_still_work() {
        let g = sample_graph();
        let mut buf = Vec::new();
        write_bundle(&mut buf, &g, None).unwrap();
        let bundle = super::read_bundle(&buf[..], Validate::Full).unwrap();
        assert_eq!(bundle.graph, g);
        let mut c = Container::read_from(&buf[..]).unwrap();
        assert_eq!(super::graph_from_container(&c, Validate::Full).unwrap(), g);
        assert_eq!(
            super::graph_from_container_owned(&mut c, Validate::Full).unwrap(),
            g
        );
    }

    #[cfg(cgte_mmap)]
    #[test]
    fn mapped_load_matches_heap_and_built() {
        let g = sample_graph();
        let p = Partition::from_assignments(vec![0, 0, 0, 1, 1, 1], 2).unwrap();
        let mut buf = Vec::new();
        write_bundle(&mut buf, &g, Some(&p)).unwrap();
        let path = temp_file("mapped-eq", &buf);
        let heap = Loader::open(&path).load_bundle().unwrap();
        let mapped = Loader::open(&path).mmap(true).load_bundle().unwrap();
        assert!(!heap.graph.is_mapped());
        assert!(mapped.graph.is_mapped());
        assert_eq!(mapped.graph, g);
        assert_eq!(mapped.graph, heap.graph);
        assert_eq!(mapped.graph.csr_offsets(), g.csr_offsets());
        assert_eq!(mapped.graph.csr_neighbors(), g.csr_neighbors());
        assert_eq!(mapped.partition.as_ref(), Some(&p));
        // Non-CSR sections arrive owned in `rest` on both paths.
        let loaded = Loader::open(&path).mmap(true).load().unwrap();
        assert!(loaded.rest.get("part.main").is_some());
        assert!(loaded.rest.get(SEC_OFFSETS).is_none());
        std::fs::remove_file(&path).ok();
    }

    #[cfg(cgte_mmap)]
    #[test]
    fn mapped_empty_graph_round_trips() {
        let g = GraphBuilder::new(0).build();
        let mut buf = Vec::new();
        write_bundle(&mut buf, &g, None).unwrap();
        let path = temp_file("mapped-empty", &buf);
        let back = Loader::open(&path).mmap(true).load_graph().unwrap();
        assert!(back.is_mapped());
        assert_eq!(back.num_nodes(), 0);
        assert_eq!(back.num_edges(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[cfg(cgte_mmap)]
    #[test]
    fn mapped_every_truncation_point_fails_cleanly() {
        let g = sample_graph();
        let p = Partition::from_assignments(vec![0, 0, 0, 1, 1, 1], 2).unwrap();
        let mut buf = Vec::new();
        write_bundle(&mut buf, &g, Some(&p)).unwrap();
        let path = temp_file("mapped-trunc", b"");
        for len in 0..buf.len() {
            std::fs::write(&path, &buf[..len]).unwrap();
            assert!(
                Loader::open(&path).mmap(true).load_bundle().is_err(),
                "mapped truncation at {len} bytes must fail"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[cfg(cgte_mmap)]
    #[test]
    fn mapped_every_single_byte_flip_fails_cleanly() {
        // The mapped twin of the streamed bit-rot sweep: any flipped byte
        // (framing, pad, payload or checksum) must surface as an error
        // before a Graph borrowing the mapping is handed out.
        let g = sample_graph();
        let p = Partition::from_assignments(vec![0, 0, 0, 1, 1, 1], 2).unwrap();
        let mut buf = Vec::new();
        write_bundle(&mut buf, &g, Some(&p)).unwrap();
        let path = temp_file("mapped-flip", b"");
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0xFF;
            std::fs::write(&path, &bad).unwrap();
            assert!(
                Loader::open(&path).mmap(true).load_bundle().is_err(),
                "mapped byte {i} flip was not detected"
            );
        }
        std::fs::remove_file(&path).ok();
    }
}
