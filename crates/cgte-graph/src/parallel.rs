//! Deterministic parallel graph construction.
//!
//! The serial generators in [`crate::generators`] draw from one sequential
//! RNG stream, which caps graph size at whatever a single core can build.
//! This module provides the million-node path: edge *proposal* is split
//! into chunks whose boundaries depend only on the generator parameters
//! (never on the worker count), each chunk is driven by its own
//! counter-derived RNG stream, and the proposals are assembled into CSR by
//! a parallel bucket/counting sort. Because the proposed edge multiset and
//! the final per-node sort are both independent of scheduling, the
//! resulting [`Graph`] is **bit-identical for every `threads` setting** —
//! `threads` only changes wall-clock time. The property tests in
//! `tests/parallel_generators.rs` pin this for every generator.
//!
//! Workers are plain scoped threads fed by an atomic chunk cursor (the
//! same vendored `crossbeam` primitives the scenario scheduler uses).

use crate::{Graph, NodeId};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// SplitMix64 finalizer: a high-quality 64-bit mixer, used to derive
/// independent per-chunk seeds from `(base seed, chunk salt)`.
#[inline]
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed of one chunk's RNG stream. Streams for distinct
/// `(seed, salt)` pairs are independent for every statistical purpose in
/// this workspace.
#[inline]
pub fn stream_seed(seed: u64, salt: u64) -> u64 {
    mix64(seed ^ mix64(salt).rotate_left(17))
}

/// Resolves a `threads` argument: `0` means all available cores.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Runs `work(chunk_index)` for every chunk on `threads` workers and
/// returns the outputs **in chunk order**, so the caller sees the same
/// sequence regardless of how chunks were interleaved across workers.
///
/// The chunk count must be a function of the problem size only — that is
/// what makes the overall output thread-invariant.
pub fn run_chunks<T, F>(num_chunks: usize, threads: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = resolve_threads(threads).min(num_chunks.max(1));
    if threads <= 1 {
        return (0..num_chunks).map(&work).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..num_chunks).map(|_| Mutex::new(None)).collect();
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= num_chunks {
                    break;
                }
                let out = work(i);
                *slots[i].lock().expect("chunk slot poisoned") = Some(out);
            });
        }
    })
    .expect("chunk worker panicked");
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("chunk slot poisoned")
                .expect("every chunk completed")
        })
        .collect()
}

/// Picks a chunk count for an `items`-sized iteration space: enough chunks
/// to load-balance any realistic worker count, few enough that per-chunk
/// overhead is noise. Depends only on `items`.
pub(crate) fn chunk_count(items: usize) -> usize {
    // ~8k items per chunk, capped at 1024 chunks.
    (items / 8192).clamp(1, 1024)
}

/// Splits `0..items` into `chunks` near-equal contiguous ranges; returns
/// the half-open range of chunk `c`.
#[inline]
pub(crate) fn chunk_range(items: usize, chunks: usize, c: usize) -> std::ops::Range<usize> {
    let lo = items * c / chunks;
    let hi = items * (c + 1) / chunks;
    lo..hi
}

/// Assembles a CSR [`Graph`] from chunked undirected edge proposals, in
/// parallel.
///
/// Duplicate proposals are collapsed and self-loops dropped, exactly like
/// [`crate::GraphBuilder::build`]. The assembly is a bucket/counting sort:
///
/// 1. **scatter** (parallel over chunks): every proposal `{u, v}` becomes
///    two directed entries, bucketed by a fixed partition of the node
///    space;
/// 2. **count + fill** (parallel over buckets): each bucket counts its
///    per-node entries, prefix-sums local offsets, scatters neighbors into
///    place, then sorts and dedups each adjacency list;
/// 3. **concatenate** (serial): per-bucket degrees and neighbor arrays are
///    spliced into the final CSR.
///
/// Step 2's per-list `sort_unstable` makes the result a pure function of
/// the proposed edge *multiset*, so any chunk interleaving yields the same
/// graph.
///
/// # Panics
/// Panics if a proposal references a node `>= num_nodes`.
pub fn assemble_csr(num_nodes: usize, chunks: Vec<Vec<(NodeId, NodeId)>>, threads: usize) -> Graph {
    let threads = resolve_threads(threads);
    let n = num_nodes;
    if n == 0 {
        return crate::GraphBuilder::new(0).build();
    }
    for c in &chunks {
        for &(u, v) in c {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge ({u},{v}) out of range for {n} nodes"
            );
        }
    }
    // Bucket count is free to depend on `threads`: buckets are contiguous
    // node ranges and the per-node output is order-canonical, so the
    // partition never shows in the result.
    let want_buckets = (threads * 4).clamp(1, 256).min(n);
    let bucket_width = n.div_ceil(want_buckets);
    let buckets = n.div_ceil(bucket_width);

    let bucket_of = |v: NodeId| -> usize { v as usize / bucket_width };

    // Phase 1: scatter directed entries into per-worker per-bucket piles.
    let chunks = Mutex::new(chunks.into_iter().map(Some).collect::<Vec<_>>());
    let cursor = AtomicUsize::new(0);
    let total_chunks = {
        let guard = chunks.lock().expect("chunks");
        guard.len()
    };
    let piles: Vec<Vec<Vec<u64>>> = {
        let workers = threads.min(total_chunks.max(1));
        let run_one = |_w: usize| -> Vec<Vec<u64>> {
            let mut local: Vec<Vec<u64>> = (0..buckets).map(|_| Vec::new()).collect();
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= total_chunks {
                    break;
                }
                let chunk = chunks.lock().expect("chunks")[i].take().expect("chunk");
                for (u, v) in chunk {
                    if u == v {
                        continue; // defensive: generators never propose these
                    }
                    local[bucket_of(u)].push(((u as u64) << 32) | v as u64);
                    local[bucket_of(v)].push(((v as u64) << 32) | u as u64);
                }
            }
            local
        };
        if workers <= 1 {
            vec![run_one(0)]
        } else {
            let slots: Vec<Mutex<Option<Vec<Vec<u64>>>>> =
                (0..workers).map(|_| Mutex::new(None)).collect();
            crossbeam::scope(|scope| {
                for (w, slot) in slots.iter().enumerate() {
                    scope.spawn(move |_| {
                        *slot.lock().expect("pile slot") = Some(run_one(w));
                    });
                }
            })
            .expect("scatter worker panicked");
            slots
                .into_iter()
                .map(|s| s.into_inner().expect("pile slot").expect("worker ran"))
                .collect()
        }
    };

    // Phase 2: per bucket, counting sort by node, then canonicalize lists.
    let per_bucket: Vec<(Vec<u32>, Vec<NodeId>)> = run_chunks(buckets, threads, |b| {
        let lo = b * bucket_width;
        let hi = ((b + 1) * bucket_width).min(n);
        let width = hi - lo;
        let mut counts = vec![0u32; width];
        let mut total = 0usize;
        for pile in &piles {
            for &e in &pile[b] {
                counts[(e >> 32) as usize - lo] += 1;
                total += 1;
            }
        }
        let mut offsets = vec![0usize; width + 1];
        for i in 0..width {
            offsets[i + 1] = offsets[i] + counts[i] as usize;
        }
        let mut cursors = offsets.clone();
        let mut buf = vec![0 as NodeId; total];
        for pile in &piles {
            for &e in &pile[b] {
                let u = (e >> 32) as usize - lo;
                buf[cursors[u]] = e as u32;
                cursors[u] += 1;
            }
        }
        // Sort + dedup each adjacency list in place, compacting as we go.
        let mut deg = vec![0u32; width];
        let mut out = Vec::with_capacity(total);
        for i in 0..width {
            let list = &mut buf[offsets[i]..offsets[i + 1]];
            list.sort_unstable();
            let before = out.len();
            let mut prev: Option<NodeId> = None;
            for &x in list.iter() {
                if prev != Some(x) {
                    out.push(x);
                    prev = Some(x);
                }
            }
            deg[i] = (out.len() - before) as u32;
        }
        (deg, out)
    });

    // Phase 3: splice buckets into the final CSR.
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0usize);
    let mut acc = 0usize;
    for (deg, _) in &per_bucket {
        for &d in deg {
            acc += d as usize;
            offsets.push(acc);
        }
    }
    let mut neighbors = Vec::with_capacity(acc);
    for (_, out) in per_bucket {
        neighbors.extend_from_slice(&out);
    }
    Graph::from_csr(offsets, neighbors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn stream_seeds_are_distinct() {
        let a = stream_seed(7, 0);
        let b = stream_seed(7, 1);
        let c = stream_seed(8, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn run_chunks_preserves_order() {
        let out = run_chunks(100, 4, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        let out = run_chunks(5, 1, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn assemble_matches_builder_on_duplicates() {
        // The same edge proposed from two chunks, plus scrambled orders.
        let chunks = vec![
            vec![(0, 1), (2, 0), (3, 1)],
            vec![(1, 0), (4, 2), (2, 4)],
            vec![],
            vec![(3, 4)],
        ];
        let g = assemble_csr(5, chunks, 3);
        let want = GraphBuilder::from_edges(5, [(0, 1), (0, 2), (1, 3), (2, 4), (3, 4)]).unwrap();
        assert_eq!(g, want);
    }

    #[test]
    fn assemble_thread_invariant() {
        let mk = || {
            (0..16)
                .map(|c| {
                    (0..50)
                        .map(|i| {
                            let u = mix64(c * 100 + i) % 97;
                            let v = mix64(c * 100 + i + 7919) % 97;
                            (u as NodeId, v as NodeId)
                        })
                        .filter(|(u, v)| u != v)
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        };
        let g1 = assemble_csr(97, mk(), 1);
        let g2 = assemble_csr(97, mk(), 2);
        let g8 = assemble_csr(97, mk(), 8);
        assert_eq!(g1, g2);
        assert_eq!(g1, g8);
    }

    #[test]
    fn assemble_empty_inputs() {
        assert_eq!(assemble_csr(0, vec![], 4).num_nodes(), 0);
        let g = assemble_csr(3, vec![vec![]], 4);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn assemble_rejects_out_of_range() {
        assemble_csr(2, vec![vec![(0, 5)]], 1);
    }
}
