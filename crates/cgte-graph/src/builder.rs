//! Incremental construction of [`Graph`]s.

use crate::{Graph, GraphError, NodeId};

/// Builds a [`Graph`] from a stream of undirected edges.
///
/// The builder enforces the paper's simple-graph model: self-loops are
/// rejected eagerly, and duplicate edges are removed (silently by default,
/// or loudly via [`GraphBuilder::add_edge_strict`]). Node count is fixed up
/// front so generators can preallocate.
///
/// # Example
///
/// ```
/// use cgte_graph::GraphBuilder;
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1).unwrap();
/// b.add_edge(1, 2).unwrap();
/// assert!(b.add_edge(1, 1).is_err());       // self-loop
/// b.add_edge(0, 1).unwrap();                // duplicate: ignored at build
/// let g = b.build();
/// assert_eq!(g.num_edges(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_nodes: usize,
    /// Each undirected edge stored once as `(min, max)`.
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `num_nodes` nodes and no edges.
    pub fn new(num_nodes: usize) -> Self {
        assert!(
            num_nodes <= NodeId::MAX as usize,
            "node count {num_nodes} exceeds NodeId capacity"
        );
        GraphBuilder {
            num_nodes,
            edges: Vec::new(),
        }
    }

    /// Creates a builder with preallocated capacity for `num_edges` edges.
    pub fn with_capacity(num_nodes: usize, num_edges: usize) -> Self {
        let mut b = Self::new(num_nodes);
        b.edges.reserve(num_edges);
        b
    }

    /// Number of nodes the built graph will have.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of edges added so far (duplicates included until `build`).
    pub fn num_edges_added(&self) -> usize {
        self.edges.len()
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// Returns an error for out-of-range endpoints or self-loops. Duplicates
    /// are accepted here and dropped during [`GraphBuilder::build`].
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        if u as usize >= self.num_nodes {
            return Err(GraphError::NodeOutOfRange {
                node: u as u64,
                num_nodes: self.num_nodes as u64,
            });
        }
        if v as usize >= self.num_nodes {
            return Err(GraphError::NodeOutOfRange {
                node: v as u64,
                num_nodes: self.num_nodes as u64,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u as u64 });
        }
        self.edges.push(if u < v { (u, v) } else { (v, u) });
        Ok(())
    }

    /// Like [`GraphBuilder::add_edge`] but also fails on duplicates.
    ///
    /// `O(E)` per call; intended for tests and small graphs where duplicate
    /// insertion indicates a logic error.
    pub fn add_edge_strict(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        let key = if u < v { (u, v) } else { (v, u) };
        if self.edges.contains(&key) {
            return Err(GraphError::DuplicateEdge {
                u: u as u64,
                v: v as u64,
            });
        }
        self.add_edge(u, v)
    }

    /// Whether the edge `{u, v}` has already been added. `O(E)`.
    pub fn contains_edge(&self, u: NodeId, v: NodeId) -> bool {
        let key = if u < v { (u, v) } else { (v, u) };
        self.edges.contains(&key)
    }

    /// Finalizes the CSR graph: sorts, deduplicates, and symmetrizes.
    ///
    /// Runs in `O(E log E)`; consumes the builder.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();

        let n = self.num_nodes;
        let mut degree = vec![0usize; n];
        for &(u, v) in &self.edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        for v in 0..n {
            offsets.push(offsets[v] + degree[v]);
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0 as NodeId; self.edges.len() * 2];
        // Edges are sorted by (u, v); filling in order keeps each node's
        // forward neighbors sorted, but back-edges arrive in u-order, which
        // is also ascending, so every adjacency list ends up sorted except
        // for the interleaving of forward and backward entries. Sort each
        // list to be safe (cheap: lists are short on average).
        for &(u, v) in &self.edges {
            neighbors[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        for v in 0..n {
            neighbors[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Graph::from_csr(offsets, neighbors)
    }

    /// Builds from an explicit edge list over `num_nodes` nodes.
    ///
    /// Convenience for tests and loaders.
    pub fn from_edges<I>(num_nodes: usize, edges: I) -> Result<Graph, GraphError>
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let mut b = GraphBuilder::new(num_nodes);
        for (u, v) in edges {
            b.add_edge(u, v)?;
        }
        Ok(b.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        assert_eq!(
            b.add_edge(0, 2),
            Err(GraphError::NodeOutOfRange {
                node: 2,
                num_nodes: 2
            })
        );
        assert_eq!(
            b.add_edge(5, 0),
            Err(GraphError::NodeOutOfRange {
                node: 5,
                num_nodes: 2
            })
        );
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new(2);
        assert_eq!(b.add_edge(1, 1), Err(GraphError::SelfLoop { node: 1 }));
    }

    #[test]
    fn deduplicates_on_build() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 0).unwrap(); // same undirected edge
        b.add_edge(0, 1).unwrap();
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    fn strict_detects_duplicates() {
        let mut b = GraphBuilder::new(3);
        b.add_edge_strict(0, 1).unwrap();
        assert_eq!(
            b.add_edge_strict(1, 0),
            Err(GraphError::DuplicateEdge { u: 1, v: 0 })
        );
    }

    #[test]
    fn contains_edge_is_orientation_free() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(2, 0).unwrap();
        assert!(b.contains_edge(0, 2));
        assert!(b.contains_edge(2, 0));
        assert!(!b.contains_edge(0, 1));
    }

    #[test]
    fn from_edges_builds_triangle() {
        let g = GraphBuilder::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap();
        assert_eq!(g.num_edges(), 3);
        for v in 0..3 {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn adjacency_lists_are_sorted() {
        // Insert in scrambled order; CSR must come out sorted.
        let g = GraphBuilder::from_edges(6, [(5, 0), (3, 0), (0, 1), (4, 0), (0, 2)]).unwrap();
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut b = GraphBuilder::with_capacity(4, 10);
        b.add_edge(0, 3).unwrap();
        assert_eq!(b.num_nodes(), 4);
        assert_eq!(b.num_edges_added(), 1);
        let g = b.build();
        assert!(g.has_edge(0, 3));
    }
}
