//! Configuration model: random graphs with a prescribed degree sequence.

use crate::{Graph, GraphBuilder, GraphError, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashMap;

fn norm(u: NodeId, v: NodeId) -> (NodeId, NodeId) {
    if u < v {
        (u, v)
    } else {
        (v, u)
    }
}

/// Pairs stubs uniformly at random, returning the raw multigraph edge list
/// (self-loops and parallel edges included).
fn pair_stubs<R: Rng + ?Sized>(
    degrees: &[usize],
    rng: &mut R,
) -> Result<Vec<(NodeId, NodeId)>, GraphError> {
    let total: usize = degrees.iter().sum();
    if !total.is_multiple_of(2) {
        return Err(GraphError::InvalidParameter {
            reason: format!("degree sum {total} is odd"),
        });
    }
    if degrees.len() > NodeId::MAX as usize {
        return Err(GraphError::InvalidParameter {
            reason: "too many nodes".into(),
        });
    }
    let mut stubs: Vec<NodeId> = Vec::with_capacity(total);
    for (v, &d) in degrees.iter().enumerate() {
        stubs.extend(std::iter::repeat_n(v as NodeId, d));
    }
    stubs.shuffle(rng);
    Ok(stubs.chunks_exact(2).map(|c| (c[0], c[1])).collect())
}

/// Erased configuration model: pair stubs, then drop self-loops and collapse
/// parallel edges.
///
/// Fast and simple; the realized degrees are slightly below the prescribed
/// ones for heavy-tailed sequences. This is the standard choice when only the
/// *shape* of the degree distribution matters, e.g. for the empirical
/// dataset stand-ins (DESIGN.md substitution 1).
pub fn configuration_model_erased<R: Rng + ?Sized>(
    degrees: &[usize],
    rng: &mut R,
) -> Result<Graph, GraphError> {
    let edges = pair_stubs(degrees, rng)?;
    let mut b = GraphBuilder::with_capacity(degrees.len(), edges.len());
    for (u, v) in edges {
        if u != v {
            b.add_edge(u, v)?; // duplicates collapsed by build()
        }
    }
    Ok(b.build())
}

/// Configuration model with degree-preserving rewiring: pair stubs, then
/// remove self-loops and parallel edges by double-edge swaps so the realized
/// degree sequence equals the prescribed one exactly.
///
/// Used by [`super::k_regular`], where exact degrees matter (the paper's
/// §6.2.1 graphs are exactly k-regular inside each category). Fails with
/// [`GraphError::InvalidParameter`] if rewiring cannot converge (e.g. the
/// sequence is not graphical or is so dense that no swap is available).
pub fn configuration_model_rewired<R: Rng + ?Sized>(
    degrees: &[usize],
    rng: &mut R,
) -> Result<Graph, GraphError> {
    let mut edges = pair_stubs(degrees, rng)?;
    if edges.is_empty() {
        return Ok(GraphBuilder::new(degrees.len()).build());
    }
    // Multiplicity of each normalized edge; self-loops keyed as (v, v).
    let mut count: HashMap<(NodeId, NodeId), u32> = HashMap::with_capacity(edges.len());
    for &(u, v) in &edges {
        *count.entry(norm(u, v)).or_insert(0) += 1;
    }
    let is_bad = |count: &HashMap<(NodeId, NodeId), u32>, u: NodeId, v: NodeId| {
        u == v || count[&norm(u, v)] > 1
    };

    const MAX_PASSES: usize = 500;
    for _pass in 0..MAX_PASSES {
        let bad: Vec<usize> = (0..edges.len())
            .filter(|&i| is_bad(&count, edges[i].0, edges[i].1))
            .collect();
        if bad.is_empty() {
            let mut b = GraphBuilder::with_capacity(degrees.len(), edges.len());
            for (u, v) in edges {
                b.add_edge(u, v)?;
            }
            return Ok(b.build());
        }
        for &i in &bad {
            // The earlier swaps of this pass may have fixed edge i already.
            let (a, bb) = edges[i];
            if !is_bad(&count, a, bb) {
                continue;
            }
            let j = rng.gen_range(0..edges.len());
            if j == i {
                continue;
            }
            let (c, d) = edges[j];
            // Propose (a,b),(c,d) -> (a,d),(c,b).
            let (e1, e2) = ((a, d), (c, bb));
            if e1.0 == e1.1 || e2.0 == e2.1 {
                continue;
            }
            let k1 = norm(e1.0, e1.1);
            let k2 = norm(e2.0, e2.1);
            if k1 == k2 {
                continue;
            }
            if count.get(&k1).copied().unwrap_or(0) > 0 || count.get(&k2).copied().unwrap_or(0) > 0
            {
                continue;
            }
            // Apply the swap.
            for key in [norm(a, bb), norm(c, d)] {
                let e = count.get_mut(&key).expect("edge present");
                *e -= 1;
                if *e == 0 {
                    count.remove(&key);
                }
            }
            *count.entry(k1).or_insert(0) += 1;
            *count.entry(k2).or_insert(0) += 1;
            edges[i] = e1;
            edges[j] = e2;
        }
    }
    Err(GraphError::InvalidParameter {
        reason:
            "configuration model rewiring did not converge (sequence too dense or not graphical)"
                .into(),
    })
}

/// Samples a power-law degree sequence `P(k) ∝ k^(-gamma)` on
/// `[k_min, k_max]` via inverse-CDF sampling of the continuous power law,
/// floored to integers. The sum is forced even by incrementing one node if
/// needed.
///
/// # Panics
/// Panics unless `gamma > 1`, `1 <= k_min <= k_max`, and `n > 0` when a
/// parity fix might be needed.
pub fn powerlaw_degree_sequence<R: Rng + ?Sized>(
    n: usize,
    gamma: f64,
    k_min: usize,
    k_max: usize,
    rng: &mut R,
) -> Vec<usize> {
    assert!(gamma > 1.0, "gamma must exceed 1, got {gamma}");
    assert!(k_min >= 1 && k_min <= k_max, "need 1 <= k_min <= k_max");
    let a = 1.0 - gamma;
    let lo = (k_min as f64).powf(a);
    let hi = ((k_max + 1) as f64).powf(a);
    let mut deg: Vec<usize> = (0..n)
        .map(|_| {
            let u: f64 = rng.gen();
            let x = (lo + u * (hi - lo)).powf(1.0 / a);
            (x.floor() as usize).clamp(k_min, k_max)
        })
        .collect();
    if deg.iter().sum::<usize>() % 2 != 0 {
        let i = rng.gen_range(0..n);
        if deg[i] < k_max {
            deg[i] += 1;
        } else {
            deg[i] -= 1;
        }
    }
    deg
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn odd_degree_sum_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(configuration_model_erased(&[1, 1, 1], &mut rng).is_err());
        assert!(configuration_model_rewired(&[3], &mut rng).is_err());
    }

    #[test]
    fn erased_model_bounds_degrees() {
        let mut rng = StdRng::seed_from_u64(2);
        let deg = vec![3usize; 100];
        let g = configuration_model_erased(&deg, &mut rng).unwrap();
        assert_eq!(g.num_nodes(), 100);
        for v in 0..100 {
            assert!(g.degree(v) <= 3);
        }
        // Most degree mass survives erasure on a sparse sequence.
        assert!(g.total_volume() as f64 > 0.9 * 300.0);
    }

    #[test]
    fn rewired_model_exact_degrees() {
        let mut rng = StdRng::seed_from_u64(3);
        let deg = vec![4usize; 60];
        let g = configuration_model_rewired(&deg, &mut rng).unwrap();
        for v in 0..60 {
            assert_eq!(g.degree(v), 4, "node {v}");
        }
    }

    #[test]
    fn rewired_model_heterogeneous_degrees() {
        let mut rng = StdRng::seed_from_u64(4);
        let deg: Vec<usize> = (0..80).map(|i| 1 + (i % 5)).collect();
        let want: usize = deg.iter().sum();
        let g = if want.is_multiple_of(2) {
            configuration_model_rewired(&deg, &mut rng).unwrap()
        } else {
            let mut d = deg.clone();
            d[0] += 1;
            configuration_model_rewired(&d, &mut rng).unwrap()
        };
        assert_eq!(g.num_nodes(), 80);
    }

    #[test]
    fn empty_sequence() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = configuration_model_rewired(&[0, 0, 0, 0], &mut rng).unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn powerlaw_sequence_in_range_and_even() {
        let mut rng = StdRng::seed_from_u64(6);
        let deg = powerlaw_degree_sequence(5000, 2.5, 2, 100, &mut rng);
        assert_eq!(deg.len(), 5000);
        assert!(deg.iter().all(|&k| (2..=100).contains(&k)));
        assert_eq!(deg.iter().sum::<usize>() % 2, 0);
        // Heavy tail: some nodes well above the minimum.
        assert!(deg.iter().any(|&k| k >= 20));
        // But most nodes near the minimum.
        let small = deg.iter().filter(|&&k| k <= 4).count();
        assert!(
            small > 2500,
            "power law should concentrate at k_min, got {small}"
        );
    }

    #[test]
    fn powerlaw_mean_decreases_with_gamma() {
        let mut rng = StdRng::seed_from_u64(7);
        let mean = |gamma: f64, rng: &mut StdRng| {
            let d = powerlaw_degree_sequence(20000, gamma, 2, 500, rng);
            d.iter().sum::<usize>() as f64 / d.len() as f64
        };
        let m_light = mean(3.5, &mut rng);
        let m_heavy = mean(2.1, &mut rng);
        assert!(
            m_heavy > m_light,
            "heavier tail should raise the mean: {m_heavy} vs {m_light}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let deg = vec![3usize; 40];
        let g1 = configuration_model_rewired(&deg, &mut StdRng::seed_from_u64(11)).unwrap();
        let g2 = configuration_model_rewired(&deg, &mut StdRng::seed_from_u64(11)).unwrap();
        assert_eq!(g1, g2);
    }
}
