//! Barabási–Albert preferential attachment graphs.

use crate::{Graph, GraphBuilder, GraphError, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Samples a Barabási–Albert graph: starting from a small clique, each new
/// node attaches to `m` existing nodes chosen with probability proportional
/// to their current degree.
///
/// Implemented with the repeated-nodes list, so attachment is `O(1)` per
/// stub. Duplicate targets within a step are resampled, keeping the graph
/// simple and every new node at exactly `m` new edges.
///
/// Fails if `m == 0` or `n <= m`.
pub fn barabasi_albert<R: Rng + ?Sized>(
    n: usize,
    m: usize,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if m == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "m must be positive".into(),
        });
    }
    if n <= m {
        return Err(GraphError::InvalidParameter {
            reason: format!("need n > m (n={n}, m={m})"),
        });
    }
    let mut b = GraphBuilder::with_capacity(n, m * (n - m) + m * (m + 1) / 2);
    // Seed: clique on m+1 nodes so every seed node has degree >= m.
    let mut repeated: Vec<NodeId> = Vec::with_capacity(2 * m * n);
    for u in 0..=(m as NodeId) {
        for v in (u + 1)..=(m as NodeId) {
            b.add_edge(u, v)?;
            repeated.push(u);
            repeated.push(v);
        }
    }
    let mut targets: Vec<NodeId> = Vec::with_capacity(m);
    for v in (m + 1)..n {
        targets.clear();
        // Sample m distinct targets by degree-proportional draws.
        let mut guard = 0usize;
        while targets.len() < m {
            let t = *repeated.choose(rng).expect("repeated list non-empty");
            if !targets.contains(&t) {
                targets.push(t);
            }
            guard += 1;
            if guard > 100 * m + 1000 {
                // Practically unreachable for n > m; defensive fallback to
                // uniform choice among remaining nodes.
                let t = rng.gen_range(0..v as NodeId);
                if !targets.contains(&t) {
                    targets.push(t);
                }
            }
        }
        for &t in &targets {
            b.add_edge(v as NodeId, t)?;
            repeated.push(v as NodeId);
            repeated.push(t);
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::connected_components;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn node_and_edge_counts() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 500;
        let m = 3;
        let g = barabasi_albert(n, m, &mut rng).unwrap();
        assert_eq!(g.num_nodes(), n);
        // clique edges + m per subsequent node
        assert_eq!(g.num_edges(), m * (m + 1) / 2 + m * (n - m - 1));
    }

    #[test]
    fn min_degree_is_m() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = barabasi_albert(300, 4, &mut rng).unwrap();
        for v in 0..300 {
            assert!(g.degree(v) >= 4, "node {v} degree {}", g.degree(v));
        }
    }

    #[test]
    fn is_connected() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = barabasi_albert(400, 2, &mut rng).unwrap();
        assert_eq!(connected_components(&g).num_components, 1);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = barabasi_albert(2000, 3, &mut rng).unwrap();
        // The hub should dwarf the median degree.
        assert!(g.max_degree() > 40, "max degree {}", g.max_degree());
    }

    #[test]
    fn invalid_parameters() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(barabasi_albert(5, 0, &mut rng).is_err());
        assert!(barabasi_albert(3, 3, &mut rng).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let g1 = barabasi_albert(100, 2, &mut StdRng::seed_from_u64(7)).unwrap();
        let g2 = barabasi_albert(100, 2, &mut StdRng::seed_from_u64(7)).unwrap();
        assert_eq!(g1, g2);
    }
}
