//! Random graph generators.
//!
//! All generators are deterministic given an RNG; pass a seeded
//! [`rand::rngs::StdRng`] for reproducible experiments.
//!
//! - [`planted`]: the paper's synthetic model (§6.2.1) — per-category
//!   k-regular random graphs plus random inter-category edges, with the
//!   community-tightness knob α.
//! - [`kregular`]: k-regular random graphs via stub pairing + rewiring.
//! - [`configuration`]: configuration model for arbitrary degree sequences,
//!   plus power-law degree sequence sampling.
//! - [`erdos_renyi`]: G(n, m) and G(n, p).
//! - [`chung_lu`]: expected-degree (Chung–Lu) model, used for the empirical
//!   dataset stand-ins.
//! - [`barabasi_albert`]: preferential attachment.
//! - [`par`]-prefixed variants (`par_chung_lu`, `par_gnp`,
//!   `par_barabasi_albert`, `par_configuration_model_erased`,
//!   `par_planted_partition`): chunked, thread-invariant parallel
//!   counterparts for million-node graphs (see [`crate::parallel`]).

mod barabasi_albert;
mod chung_lu;
mod configuration;
mod erdos_renyi;
mod kregular;
mod par;
mod planted;

pub use barabasi_albert::barabasi_albert;
pub use chung_lu::{chung_lu, powerlaw_weights, scale_to_mean};
pub use configuration::{
    configuration_model_erased, configuration_model_rewired, powerlaw_degree_sequence,
};
pub use erdos_renyi::{gnm, gnp};
pub use kregular::k_regular;
pub use par::{
    par_barabasi_albert, par_chung_lu, par_chung_lu_layers, par_configuration_model_erased,
    par_gnp, par_planted_partition, ChungLuLayer,
};
pub use planted::{planted_partition, PlantedConfig, PlantedGraph, PAPER_CATEGORY_SIZES};
