//! k-regular random graphs.

use super::configuration::configuration_model_rewired;
use crate::{Graph, GraphBuilder, GraphError, NodeId};
use rand::Rng;

/// Samples a random simple `k`-regular graph on `n` nodes.
///
/// Inside each category, the paper's synthetic model (§6.2.1) is exactly
/// this. Implemented as the rewired configuration model with a constant
/// degree sequence; `k = n - 1` (the complete graph) is special-cased since
/// no swap could ever succeed at full density.
///
/// Fails if `n·k` is odd or `k >= n`.
pub fn k_regular<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Result<Graph, GraphError> {
    if k >= n && !(n == 0 && k == 0) {
        return Err(GraphError::InvalidParameter {
            reason: format!("k-regular graph needs k < n (k={k}, n={n})"),
        });
    }
    if !n.saturating_mul(k).is_multiple_of(2) {
        return Err(GraphError::InvalidParameter {
            reason: format!("n*k must be even (n={n}, k={k})"),
        });
    }
    if k == 0 {
        return Ok(GraphBuilder::new(n).build());
    }
    if k == n - 1 {
        // Complete graph.
        let mut b = GraphBuilder::with_capacity(n, n * (n - 1) / 2);
        for u in 0..n as NodeId {
            for v in (u + 1)..n as NodeId {
                b.add_edge(u, v)?;
            }
        }
        return Ok(b.build());
    }
    configuration_model_rewired(&vec![k; n], rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::connected_components;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn degrees_are_exactly_k() {
        let mut rng = StdRng::seed_from_u64(1);
        for &(n, k) in &[(50usize, 5usize), (100, 20), (64, 3), (10, 4)] {
            let g = k_regular(n, k, &mut rng).unwrap();
            assert_eq!(g.num_nodes(), n);
            assert_eq!(g.num_edges(), n * k / 2);
            for v in 0..n {
                assert_eq!(g.degree(v as NodeId), k, "n={n} k={k} node {v}");
            }
        }
    }

    #[test]
    fn complete_graph_special_case() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = k_regular(50, 49, &mut rng).unwrap();
        assert_eq!(g.num_edges(), 50 * 49 / 2);
        for v in 0..50 {
            assert_eq!(g.degree(v), 49);
        }
    }

    #[test]
    fn zero_regular() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = k_regular(10, 0, &mut rng).unwrap();
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(k_regular(5, 5, &mut rng).is_err()); // k >= n
        assert!(k_regular(5, 3, &mut rng).is_err()); // odd n*k
    }

    #[test]
    fn dense_regular_graph_converges() {
        // High density but below complete: stresses the rewiring loop.
        let mut rng = StdRng::seed_from_u64(5);
        let g = k_regular(20, 16, &mut rng).unwrap();
        for v in 0..20 {
            assert_eq!(g.degree(v), 16);
        }
    }

    #[test]
    fn random_regular_graphs_are_usually_connected() {
        // Random k-regular graphs with k >= 3 are connected w.h.p.
        let mut rng = StdRng::seed_from_u64(6);
        let g = k_regular(200, 3, &mut rng).unwrap();
        assert_eq!(connected_components(&g).num_components, 1);
    }
}
