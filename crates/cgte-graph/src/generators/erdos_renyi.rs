//! Erdős–Rényi random graphs.

use crate::{Graph, GraphBuilder, GraphError, NodeId};
use rand::Rng;
use std::collections::HashSet;

/// Samples `G(n, m)`: a uniformly random simple graph with exactly `m` edges.
///
/// Rejection-samples node pairs, which is efficient while `m` is far below
/// the maximum `n(n-1)/2`; fails if `m` exceeds that maximum.
pub fn gnm<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Result<Graph, GraphError> {
    let max = n.saturating_mul(n.saturating_sub(1)) / 2;
    if m > max {
        return Err(GraphError::InvalidParameter {
            reason: format!("G(n={n}, m={m}) impossible: max {max} edges"),
        });
    }
    if n == 0 {
        return Ok(GraphBuilder::new(0).build());
    }
    let mut seen: HashSet<(NodeId, NodeId)> = HashSet::with_capacity(m * 2);
    let mut b = GraphBuilder::with_capacity(n, m);
    // Dense fallback: if m is more than half of max, sample the complement.
    if m * 2 > max {
        let mut all: Vec<(NodeId, NodeId)> = Vec::with_capacity(max);
        for u in 0..n as NodeId {
            for v in (u + 1)..n as NodeId {
                all.push((u, v));
            }
        }
        use rand::seq::SliceRandom;
        all.shuffle(rng);
        for &(u, v) in all.iter().take(m) {
            b.add_edge(u, v)?;
        }
        return Ok(b.build());
    }
    while seen.len() < m {
        let u = rng.gen_range(0..n as NodeId);
        let v = rng.gen_range(0..n as NodeId);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            b.add_edge(key.0, key.1)?;
        }
    }
    Ok(b.build())
}

/// Samples `G(n, p)`: each of the `n(n-1)/2` possible edges independently
/// with probability `p`.
///
/// Uses geometric skip-sampling, `O(n + E)` in expectation.
///
/// # Panics
/// Panics if `p` is not in `\[0, 1\]`.
pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
    let mut b = GraphBuilder::new(n);
    if p == 0.0 || n < 2 {
        return b.build();
    }
    if p == 1.0 {
        for u in 0..n as NodeId {
            for v in (u + 1)..n as NodeId {
                b.add_edge(u, v).expect("in range");
            }
        }
        return b.build();
    }
    // Iterate potential edges in lexicographic order with geometric jumps.
    let log_q = (1.0 - p).ln();
    let mut v: i64 = 1;
    let mut w: i64 = -1;
    let n = n as i64;
    while v < n {
        let r: f64 = rng.gen_range(f64::EPSILON..1.0);
        w += 1 + (r.ln() / log_q).floor() as i64;
        while w >= v && v < n {
            w -= v;
            v += 1;
        }
        if v < n {
            b.add_edge(w as NodeId, v as NodeId).expect("in range");
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gnm_exact_edge_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = gnm(100, 250, &mut rng).unwrap();
        assert_eq!(g.num_nodes(), 100);
        assert_eq!(g.num_edges(), 250);
    }

    #[test]
    fn gnm_rejects_impossible() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(gnm(4, 7, &mut rng).is_err()); // max is 6
        assert!(gnm(4, 6, &mut rng).is_ok()); // complete graph, dense path
    }

    #[test]
    fn gnm_zero_nodes_and_edges() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(gnm(0, 0, &mut rng).unwrap().num_nodes(), 0);
        assert_eq!(gnm(5, 0, &mut rng).unwrap().num_edges(), 0);
    }

    #[test]
    fn gnm_dense_path_produces_simple_graph() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = gnm(10, 40, &mut rng).unwrap(); // max 45, dense branch
        assert_eq!(g.num_edges(), 40);
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(gnp(50, 0.0, &mut rng).num_edges(), 0);
        let g = gnp(10, 1.0, &mut rng);
        assert_eq!(g.num_edges(), 45);
    }

    #[test]
    fn gnp_edge_count_near_expectation() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 400;
        let p = 0.05;
        let g = gnp(n, p, &mut rng);
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.num_edges() as f64;
        // 5 sigma tolerance.
        let sigma = (expected * (1.0 - p)).sqrt();
        assert!(
            (got - expected).abs() < 5.0 * sigma,
            "edges {got} vs expected {expected}"
        );
    }

    #[test]
    fn gnp_small_graphs() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(gnp(0, 0.5, &mut rng).num_nodes(), 0);
        assert_eq!(gnp(1, 0.5, &mut rng).num_edges(), 0);
    }

    #[test]
    fn generators_are_deterministic_given_seed() {
        let g1 = gnm(50, 100, &mut StdRng::seed_from_u64(9)).unwrap();
        let g2 = gnm(50, 100, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(g1, g2);
        let h1 = gnp(50, 0.1, &mut StdRng::seed_from_u64(9));
        let h2 = gnp(50, 0.1, &mut StdRng::seed_from_u64(9));
        assert_eq!(h1, h2);
    }
}
