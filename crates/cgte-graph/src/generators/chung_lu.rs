//! Chung–Lu expected-degree random graphs.

use crate::{Graph, GraphBuilder, NodeId};
use rand::Rng;

/// Samples a Chung–Lu graph: edge `{u, v}` appears independently with
/// probability `min(1, w_u · w_v / Σw)`.
///
/// Uses the Miller–Hagberg skip-sampling construction, `O(n + E)` in
/// expectation, which requires weights sorted in **descending** order; this
/// function sorts internally and returns node ids in descending-weight
/// order (node 0 has the largest expected degree).
///
/// The empirical dataset stand-ins (DESIGN.md substitution 1) use this model
/// with power-law weights to reproduce the heavy-tailed degree
/// distributions of the paper's Facebook/P2P/Epinions graphs.
///
/// # Panics
/// Panics if any weight is negative or not finite.
pub fn chung_lu<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> Graph {
    assert!(
        weights.iter().all(|w| w.is_finite() && *w >= 0.0),
        "weights must be finite and non-negative"
    );
    let n = weights.len();
    let mut w: Vec<f64> = weights.to_vec();
    w.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
    let total: f64 = w.iter().sum();
    let mut b = GraphBuilder::new(n);
    if total <= 0.0 || n < 2 {
        return b.build();
    }
    for u in 0..n - 1 {
        if w[u] <= 0.0 {
            break; // all remaining weights are 0 (sorted descending)
        }
        let mut v = u + 1;
        let mut p = (w[u] * w[v] / total).min(1.0);
        while v < n && p > 0.0 {
            if p < 1.0 {
                let r: f64 = rng.gen_range(f64::EPSILON..1.0);
                v += (r.ln() / (1.0 - p).ln()).floor() as usize;
            }
            if v < n {
                let q = (w[u] * w[v] / total).min(1.0);
                let r: f64 = rng.gen();
                if r < q / p {
                    b.add_edge(u as NodeId, v as NodeId).expect("in range");
                }
                p = q;
                v += 1;
            }
        }
    }
    b.build()
}

/// Samples `n` power-law weights `P(w) ∝ w^(-gamma)` on `[w_min, w_max]`
/// (continuous inverse-CDF sampling). Companion to [`chung_lu`].
///
/// # Panics
/// Panics unless `gamma > 1` and `0 < w_min <= w_max`.
pub fn powerlaw_weights<R: Rng + ?Sized>(
    n: usize,
    gamma: f64,
    w_min: f64,
    w_max: f64,
    rng: &mut R,
) -> Vec<f64> {
    assert!(gamma > 1.0, "gamma must exceed 1");
    assert!(w_min > 0.0 && w_min <= w_max, "need 0 < w_min <= w_max");
    let a = 1.0 - gamma;
    let lo = w_min.powf(a);
    let hi = w_max.powf(a);
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen();
            (lo + u * (hi - lo)).powf(1.0 / a)
        })
        .collect()
}

/// Rescales weights so their mean equals `target_mean`, preserving shape.
///
/// Used by the stand-ins to match a dataset's published mean degree `k_V`
/// exactly in expectation.
///
/// # Panics
/// Panics if the weights sum to zero while a positive mean is requested.
pub fn scale_to_mean(weights: &mut [f64], target_mean: f64) {
    let n = weights.len();
    if n == 0 {
        return;
    }
    let mean: f64 = weights.iter().sum::<f64>() / n as f64;
    assert!(
        mean > 0.0 || target_mean == 0.0,
        "cannot scale zero weights to positive mean"
    );
    if mean > 0.0 {
        let s = target_mean / mean;
        for w in weights {
            *w *= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_weights_match_gnp() {
        // Constant weights w: edge prob = w^2 / (n w) = w / n.
        let mut rng = StdRng::seed_from_u64(1);
        let n = 500;
        let w = vec![10.0; n];
        let g = chung_lu(&w, &mut rng);
        let p = 10.0 / n as f64;
        let expected = p * (n * (n - 1) / 2) as f64;
        let sigma = (expected * (1.0 - p)).sqrt();
        assert!(
            ((g.num_edges() as f64) - expected).abs() < 5.0 * sigma,
            "{} vs {expected}",
            g.num_edges()
        );
    }

    #[test]
    fn realized_mean_degree_tracks_weights() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut w = powerlaw_weights(3000, 2.5, 2.0, 200.0, &mut rng);
        scale_to_mean(&mut w, 12.0);
        let g = chung_lu(&w, &mut rng);
        let mean = g.mean_degree();
        assert!(
            (mean - 12.0).abs() < 1.5,
            "mean degree {mean} should be near 12"
        );
    }

    #[test]
    fn heavy_tail_survives() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut w = powerlaw_weights(5000, 2.2, 2.0, 500.0, &mut rng);
        scale_to_mean(&mut w, 10.0);
        let g = chung_lu(&w, &mut rng);
        assert!(
            g.max_degree() > 50,
            "expected a heavy tail, max degree {}",
            g.max_degree()
        );
    }

    #[test]
    fn zero_and_tiny_inputs() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(chung_lu(&[], &mut rng).num_nodes(), 0);
        assert_eq!(chung_lu(&[5.0], &mut rng).num_edges(), 0);
        assert_eq!(chung_lu(&[0.0, 0.0, 0.0], &mut rng).num_edges(), 0);
    }

    #[test]
    fn scale_to_mean_exact() {
        let mut w = vec![1.0, 2.0, 3.0];
        scale_to_mean(&mut w, 10.0);
        let mean: f64 = w.iter().sum::<f64>() / 3.0;
        assert!((mean - 10.0).abs() < 1e-12);
    }

    #[test]
    fn powerlaw_weights_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let w = powerlaw_weights(1000, 3.0, 1.5, 40.0, &mut rng);
        assert!(w.iter().all(|&x| (1.5..=40.0).contains(&x)));
    }

    #[test]
    fn deterministic_given_seed() {
        let w = vec![3.0; 100];
        let g1 = chung_lu(&w, &mut StdRng::seed_from_u64(9));
        let g2 = chung_lu(&w, &mut StdRng::seed_from_u64(9));
        assert_eq!(g1, g2);
    }
}
