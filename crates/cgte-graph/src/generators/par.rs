//! Parallel, thread-invariant counterparts of the random generators.
//!
//! Every `par_*` function here proposes edges in chunks whose boundaries
//! depend only on the generator parameters; chunk `c` draws from its own
//! RNG stream derived as `stream_seed(seed, salt_c)`. The proposals are
//! assembled by [`crate::parallel::assemble_csr`], whose output is a pure
//! function of the proposed edge multiset. Together this makes every
//! `par_*` generator produce a **bit-identical graph for every `threads`
//! value** (including `1`, which is the serial reference the benchmarks
//! compare against).
//!
//! The `par_*` functions draw *different* streams than their serial
//! namesakes — they are new samplers from the same distributions, not
//! drop-in replays. The serial generators remain the pinned streams behind
//! the golden figure outputs; the parallel ones power the `scale(huge)`
//! tier and the `cgte bench` harness.
//!
//! Distribution caveats at this scale (all documented per function):
//! duplicate proposals that straddle chunk boundaries are collapsed during
//! assembly, so counting-variant generators (`par_planted_partition`'s
//! inter-category edges, the erased configuration model) can fall a
//! vanishing fraction short of their nominal edge counts.

use crate::parallel::{assemble_csr, chunk_count, chunk_range, run_chunks, stream_seed};
use crate::{Graph, GraphError, NodeId, Partition};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

use super::planted::{PlantedConfig, PlantedGraph};

/// One Chung–Lu layer for [`par_chung_lu_layers`]: a member set sorted by
/// **descending** weight, with a per-layer stream salt.
pub struct ChungLuLayer<'a> {
    /// Member node ids (global), sorted by descending weight.
    pub ids: &'a [NodeId],
    /// The members' weights, same order (descending).
    pub weights: &'a [f64],
    /// Distinguishes this layer's RNG streams from other layers'.
    pub salt: u64,
}

/// Samples the union of several Chung–Lu layers in parallel and assembles
/// the CSR graph over `num_nodes` nodes.
///
/// This is the construction behind the million-node stand-ins: a global
/// expected-degree layer plus homophilous block layers, all proposed
/// concurrently and assembled once.
pub fn par_chung_lu_layers(
    num_nodes: usize,
    layers: &[ChungLuLayer<'_>],
    seed: u64,
    threads: usize,
) -> Graph {
    // Task list: (layer index, chunk seed, row range). Chunk boundaries
    // depend only on layer sizes.
    let mut tasks: Vec<(usize, u64, std::ops::Range<usize>)> = Vec::new();
    for (li, layer) in layers.iter().enumerate() {
        assert_eq!(
            layer.ids.len(),
            layer.weights.len(),
            "layer {li}: ids and weights must align"
        );
        // The skip-sampling acceptance test below is only correct for
        // descending weights (it needs q <= p); an unsorted layer would
        // silently bias the graph, so reject it loudly.
        assert!(
            layer.weights.windows(2).all(|w| w[0] >= w[1]),
            "layer {li}: weights must be sorted in descending order"
        );
        let n = layer.ids.len();
        if n < 2 {
            continue;
        }
        let total: f64 = layer.weights.iter().sum();
        if total <= 0.0 {
            continue;
        }
        let layer_seed = stream_seed(seed, layer.salt);
        let chunks = chunk_count(n);
        for c in 0..chunks {
            tasks.push((
                li,
                stream_seed(layer_seed, c as u64),
                chunk_range(n, chunks, c),
            ));
        }
    }
    let totals: Vec<f64> = layers.iter().map(|l| l.weights.iter().sum()).collect();
    let proposals: Vec<Vec<(NodeId, NodeId)>> = run_chunks(tasks.len(), threads, |t| {
        let (li, chunk_seed, ref range) = tasks[t];
        let layer = &layers[li];
        let w = layer.weights;
        let ids = layer.ids;
        let n = w.len();
        let total = totals[li];
        let mut rng = StdRng::seed_from_u64(chunk_seed);
        let mut out = Vec::new();
        for u in range.clone() {
            if u + 1 >= n {
                break;
            }
            if w[u] <= 0.0 {
                continue;
            }
            let mut v = u + 1;
            let mut p = (w[u] * w[v] / total).min(1.0);
            while v < n && p > 0.0 {
                if p < 1.0 {
                    let r: f64 = rng.gen_range(f64::EPSILON..1.0);
                    v += (r.ln() / (1.0 - p).ln()).floor() as usize;
                }
                if v < n {
                    let q = (w[u] * w[v] / total).min(1.0);
                    let r: f64 = rng.gen();
                    if r < q / p {
                        out.push((ids[u], ids[v]));
                    }
                    p = q;
                    v += 1;
                }
            }
        }
        out
    });
    assemble_csr(num_nodes, proposals, threads)
}

/// Parallel Chung–Lu expected-degree graph: the thread-invariant
/// counterpart of [`super::chung_lu`].
///
/// Like the serial version, weights are sorted descending internally and
/// node ids come out in descending-weight order.
///
/// # Panics
/// Panics if any weight is negative or not finite.
pub fn par_chung_lu(weights: &[f64], seed: u64, threads: usize) -> Graph {
    assert!(
        weights.iter().all(|w| w.is_finite() && *w >= 0.0),
        "weights must be finite and non-negative"
    );
    let mut w: Vec<f64> = weights.to_vec();
    w.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
    let ids: Vec<NodeId> = (0..w.len() as NodeId).collect();
    let layer = ChungLuLayer {
        ids: &ids,
        weights: &w,
        salt: 0,
    };
    par_chung_lu_layers(weights.len(), &[layer], seed, threads)
}

/// Parallel `G(n, p)`: the thread-invariant counterpart of [`super::gnp`].
///
/// Rows are chunked; each row skip-samples its partners `v > u`
/// geometrically from the chunk's stream.
///
/// # Panics
/// Panics if `p` is not in `[0, 1]`.
pub fn par_gnp(n: usize, p: f64, seed: u64, threads: usize) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
    if n < 2 || p == 0.0 {
        return assemble_csr(n, Vec::new(), threads);
    }
    let chunks = chunk_count(n);
    let proposals = run_chunks(chunks, threads, |c| {
        let mut rng = StdRng::seed_from_u64(stream_seed(seed, c as u64));
        let mut out = Vec::new();
        for u in chunk_range(n, chunks, c) {
            if p >= 1.0 {
                for v in u + 1..n {
                    out.push((u as NodeId, v as NodeId));
                }
                continue;
            }
            let log_q = (1.0 - p).ln();
            let mut v = u + 1;
            while v < n {
                let r: f64 = rng.gen_range(f64::EPSILON..1.0);
                let skip = (r.ln() / log_q).floor() as usize;
                v = v.saturating_add(skip);
                if v < n {
                    out.push((u as NodeId, v as NodeId));
                    v += 1;
                }
            }
        }
        out
    });
    assemble_csr(n, proposals, threads)
}

/// Hash-based bounded draw: uniform in `[0, bound)` as a pure function of
/// the inputs (no RNG object, so any worker can evaluate any draw).
#[inline]
fn hdraw(seed: u64, a: u64, b: u64, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let x = stream_seed(stream_seed(seed, a), b);
    ((u128::from(x) * u128::from(bound)) >> 64) as u64
}

/// Parallel Barabási–Albert preferential attachment, thread-invariant.
///
/// Uses static stub resolution (Sanders–Schulz style): the `j`-th stub of
/// node `v` indexes a uniform position in the virtual repeated-endpoint
/// array of all earlier edges; odd positions resolve recursively through
/// the referenced edge's own hash draws, so every edge's target is a pure
/// function of `(seed, n, m)` — no sequential state, hence trivially
/// chunkable by node ranges.
///
/// Within one node's `m` stubs, duplicate targets are rejected
/// deterministically by re-drawing (bounded, with a uniform fallback), so
/// nodes keep degree `>= m` exactly as in the serial generator.
///
/// Fails if `m == 0` or `n <= m`.
pub fn par_barabasi_albert(
    n: usize,
    m: usize,
    seed: u64,
    threads: usize,
) -> Result<Graph, GraphError> {
    if m == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "m must be positive".into(),
        });
    }
    if n <= m {
        return Err(GraphError::InvalidParameter {
            reason: format!("need n > m (n={n}, m={m})"),
        });
    }
    // Seed clique on 0..=m, edges in row order.
    let mut clique: Vec<(NodeId, NodeId)> = Vec::with_capacity(m * (m + 1) / 2);
    for u in 0..=(m as NodeId) {
        for v in (u + 1)..=(m as NodeId) {
            clique.push((u, v));
        }
    }
    // Edge indices: the clique owns [0, e0); node v > m owns the range
    // [e0 + (v-m-1)·m, e0 + (v-m)·m).
    let e0 = clique.len() as u64;
    let mu = m as u64;

    // Resolves the accepted targets of node v's stubs `0..=upto` in one
    // pass, without shared state (a pure function of `seed`). `depth`
    // caps pathological chase chains with a deterministic uniform
    // fallback.
    fn resolve_stubs(
        v: u64,
        upto: u64,
        depth: u32,
        seed: u64,
        m: u64,
        e0: u64,
        clique: &[(NodeId, NodeId)],
    ) -> Vec<NodeId> {
        let base = e0 + (v - m - 1) * m;
        let pool = 2 * base;
        let mut chosen: Vec<NodeId> = Vec::with_capacity(upto as usize + 1);
        for jj in 0..=upto {
            let e = base + jj;
            let mut accepted = None;
            for a in 0..64u64 {
                let t = if depth >= 48 {
                    // Deep chase: deterministic uniform fallback.
                    hdraw(seed, e, 1 << 40 | a, v) as NodeId
                } else {
                    let r = hdraw(seed, e, a, pool);
                    let g = r / 2;
                    if r.is_multiple_of(2) {
                        if g < e0 {
                            clique[g as usize].0
                        } else {
                            (m + 1 + (g - e0) / m) as NodeId
                        }
                    } else {
                        target(g, depth + 1, seed, m, e0, clique)
                    }
                };
                if !chosen.contains(&t) {
                    accepted = Some(t);
                    break;
                }
            }
            let t = accepted.unwrap_or_else(|| {
                // 64 duplicate draws in a row: pick the smallest unused id.
                (0..v as NodeId)
                    .find(|t| !chosen.contains(t))
                    .expect("v > m >= chosen.len()")
            });
            chosen.push(t);
        }
        chosen
    }

    // The random endpoint ("target") of edge f, for chase resolution.
    fn target(
        f: u64,
        depth: u32,
        seed: u64,
        m: u64,
        e0: u64,
        clique: &[(NodeId, NodeId)],
    ) -> NodeId {
        if f < e0 {
            return clique[f as usize].1;
        }
        let v = m + 1 + (f - e0) / m;
        let j = (f - e0) % m;
        resolve_stubs(v, j, depth, seed, m, e0, clique)[j as usize]
    }

    let attach_nodes = n - m - 1;
    let chunks = chunk_count(attach_nodes.max(1));
    let clique_ref = &clique;
    let proposals = run_chunks(chunks, threads, move |c| {
        let mut out = Vec::new();
        if c == 0 {
            out.extend_from_slice(clique_ref);
        }
        for i in chunk_range(attach_nodes, chunks, c) {
            let v = (mu + 1) + i as u64;
            // One chain resolution per node yields all m accepted targets
            // (calling `target` per stub would recompute the prefix
            // quadratically).
            let targets = resolve_stubs(v, mu - 1, 0, seed, mu, e0, clique_ref);
            for t in targets {
                out.push((v as NodeId, t));
            }
        }
        out
    });
    Ok(assemble_csr(n, proposals, threads))
}

/// Parallel erased configuration model, thread-invariant: stubs are paired
/// by sorting them under counter-derived random keys (equivalent in
/// distribution to a uniform stub shuffle), then self-loops are dropped
/// and parallel edges collapsed, like
/// [`super::configuration_model_erased`].
pub fn par_configuration_model_erased(
    degrees: &[usize],
    seed: u64,
    threads: usize,
) -> Result<Graph, GraphError> {
    let total: usize = degrees.iter().sum();
    if !total.is_multiple_of(2) {
        return Err(GraphError::InvalidParameter {
            reason: format!("degree sum {total} is odd"),
        });
    }
    if degrees.len() > NodeId::MAX as usize {
        return Err(GraphError::InvalidParameter {
            reason: "too many nodes".into(),
        });
    }
    let n = degrees.len();
    if total == 0 {
        return Ok(assemble_csr(n, Vec::new(), threads));
    }
    // Stub s -> owning node, via the degree prefix sums.
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(0usize);
    for &d in degrees {
        prefix.push(prefix.last().unwrap() + d);
    }
    let owner_of = |s: usize| -> NodeId {
        // partition_point returns the first index with prefix > s.
        (prefix.partition_point(|&p| p <= s) - 1) as NodeId
    };

    // Keyed stubs, bucketed by key high bits (a counting sort's first
    // pass); each bucket is then sorted, and the bucket concatenation is
    // the globally key-sorted stub order.
    const BUCKET_BITS: u32 = 8;
    let buckets = 1usize << BUCKET_BITS;
    let chunks = chunk_count(total);
    let keyed: Vec<Vec<(u64, u32)>> = run_chunks(chunks, threads, |c| {
        chunk_range(total, chunks, c)
            .map(|s| (stream_seed(seed, s as u64), s as u32))
            .collect()
    });
    let mut scattered: Vec<Vec<(u64, u32)>> = vec![Vec::new(); buckets];
    for chunk in keyed {
        for (k, s) in chunk {
            scattered[(k >> (64 - BUCKET_BITS)) as usize].push((k, s));
        }
    }
    // Hand each bucket to its sorting task by move (taken under a Mutex —
    // run_chunks closures only get `&self` captures), avoiding a second
    // copy of the keyed-stub array.
    let piles: Vec<std::sync::Mutex<Vec<(u64, u32)>>> =
        scattered.into_iter().map(std::sync::Mutex::new).collect();
    let sorted: Vec<Vec<(u64, u32)>> = run_chunks(buckets, threads, |b| {
        let mut v = std::mem::take(&mut *piles[b].lock().expect("pile lock"));
        v.sort_unstable();
        v
    });
    let mut order: Vec<u32> = Vec::with_capacity(total);
    for b in sorted {
        order.extend(b.into_iter().map(|(_, s)| s));
    }
    // Pair consecutive stubs in key order.
    let pairs = total / 2;
    let pchunks = chunk_count(pairs);
    let order_ref = &order;
    let proposals = run_chunks(pchunks, threads, move |c| {
        let mut out = Vec::new();
        for i in chunk_range(pairs, pchunks, c) {
            let u = owner_of(order_ref[2 * i] as usize);
            let v = owner_of(order_ref[2 * i + 1] as usize);
            if u != v {
                out.push((u, v));
            }
        }
        out
    });
    Ok(assemble_csr(n, proposals, threads))
}

/// Parallel planted-partition generator (§6.2.1), thread-invariant: each
/// category's k-regular subgraph is generated from its own stream (the
/// categories are the chunks), inter-category edges are proposed in
/// quota chunks, and the label permutation draws a dedicated stream.
///
/// The inter-category edge count can fall short of the nominal `N·k/10`
/// by cross-chunk duplicate collapses — a vanishing fraction at the scale
/// this path targets (the serial [`super::planted_partition`] stays exact).
///
/// Fails if any category cannot host a k-regular graph.
pub fn par_planted_partition(
    config: &PlantedConfig,
    seed: u64,
    threads: usize,
) -> Result<PlantedGraph, GraphError> {
    let n = config.num_nodes();
    let k = config.k;
    for (c, &s) in config.category_sizes.iter().enumerate() {
        if k >= s {
            return Err(GraphError::InvalidParameter {
                reason: format!("category {c} of size {s} cannot be {k}-regular"),
            });
        }
        if !(s * k).is_multiple_of(2) {
            return Err(GraphError::InvalidParameter {
                reason: format!("category {c}: size*k = {} is odd", s * k),
            });
        }
    }
    let partition = Partition::blocks(n, &config.category_sizes)?;
    let ncat = config.category_sizes.len();
    let mut bases = Vec::with_capacity(ncat + 1);
    bases.push(0usize);
    for &s in &config.category_sizes {
        bases.push(bases.last().unwrap() + s);
    }

    // Intra-category chunks: one per category, each with its own stream.
    let sizes = &config.category_sizes;
    let bases_ref = &bases;
    let intra: Vec<Result<Vec<(NodeId, NodeId)>, GraphError>> =
        run_chunks(ncat, threads, move |c| {
            let mut rng = StdRng::seed_from_u64(stream_seed(seed, 0x1000 + c as u64));
            let local = super::k_regular(sizes[c], k, &mut rng)?;
            let base = bases_ref[c] as NodeId;
            Ok(local.edges().map(|(u, v)| (u + base, v + base)).collect())
        });
    let mut proposals: Vec<Vec<(NodeId, NodeId)>> = Vec::new();
    for r in intra {
        proposals.push(r?);
    }

    // Inter-category quota chunks. Same-category pairs and within-chunk
    // duplicates are rejected; cross-chunk duplicates (rare) collapse in
    // assembly.
    let target = n * k / 10;
    let qchunks = chunk_count(target.max(1));
    let cat_of = |v: NodeId| -> usize { bases_ref.partition_point(|&b| b <= v as usize) - 1 };
    let inter: Vec<Vec<(NodeId, NodeId)>> = run_chunks(qchunks, threads, move |c| {
        let quota = chunk_range(target, qchunks, c).len();
        let mut rng = StdRng::seed_from_u64(stream_seed(seed, 0x2000 + c as u64));
        let mut local: HashSet<(NodeId, NodeId)> = HashSet::with_capacity(quota * 2);
        let mut out = Vec::with_capacity(quota);
        while out.len() < quota {
            let u = rng.gen_range(0..n as NodeId);
            let v = rng.gen_range(0..n as NodeId);
            if cat_of(u) == cat_of(v) {
                continue;
            }
            let key = if u < v { (u, v) } else { (v, u) };
            if local.insert(key) {
                out.push(key);
            }
        }
        out
    });
    proposals.extend(inter);

    let graph = assemble_csr(n, proposals, threads);
    let mut perm_rng = StdRng::seed_from_u64(stream_seed(seed, 0x3000));
    let partition = partition.permute_labels(config.alpha, &mut perm_rng);
    Ok(PlantedGraph { graph, partition })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_chung_lu_matches_serial_statistics() {
        let mut w =
            super::super::powerlaw_weights(4000, 2.5, 2.0, 100.0, &mut StdRng::seed_from_u64(1));
        super::super::scale_to_mean(&mut w, 10.0);
        let g = par_chung_lu(&w, 42, 1);
        let mean = g.mean_degree();
        assert!((mean - 10.0).abs() < 1.5, "mean degree {mean}");
    }

    #[test]
    fn par_gnp_edge_count_near_expectation() {
        let n = 3000;
        let p = 0.004;
        let g = par_gnp(n, p, 7, 1);
        let expected = p * (n * (n - 1) / 2) as f64;
        let sigma = (expected * (1.0 - p)).sqrt();
        let got = g.num_edges() as f64;
        assert!(
            (got - expected).abs() < 5.0 * sigma,
            "edges {got} vs {expected}"
        );
    }

    #[test]
    fn par_gnp_extremes() {
        assert_eq!(par_gnp(40, 0.0, 1, 2).num_edges(), 0);
        assert_eq!(par_gnp(10, 1.0, 1, 2).num_edges(), 45);
        assert_eq!(par_gnp(0, 0.5, 1, 2).num_nodes(), 0);
        assert_eq!(par_gnp(1, 0.5, 1, 2).num_edges(), 0);
    }

    #[test]
    fn par_ba_counts_and_min_degree() {
        let n = 600;
        let m = 3;
        let g = par_barabasi_albert(n, m, 5, 1).unwrap();
        assert_eq!(g.num_nodes(), n);
        for v in 0..n {
            assert!(
                g.degree(v as NodeId) >= m,
                "node {v}: {}",
                g.degree(v as NodeId)
            );
        }
        assert!(g.max_degree() > 3 * m, "hub missing: {}", g.max_degree());
        assert!(par_barabasi_albert(3, 3, 5, 1).is_err());
        assert!(par_barabasi_albert(5, 0, 5, 1).is_err());
    }

    #[test]
    fn par_configuration_respects_degree_bound() {
        let deg = vec![4usize; 500];
        let g = par_configuration_model_erased(&deg, 3, 1).unwrap();
        assert_eq!(g.num_nodes(), 500);
        for v in 0..500 {
            assert!(g.degree(v) <= 4);
        }
        assert!(g.total_volume() as f64 > 0.9 * 2000.0);
        assert!(par_configuration_model_erased(&[1, 1, 1], 3, 1).is_err());
    }

    #[test]
    fn par_planted_structure() {
        let cfg = PlantedConfig {
            category_sizes: vec![40, 80, 160],
            k: 6,
            alpha: 0.0,
        };
        let pg = par_planted_partition(&cfg, 11, 1).unwrap();
        assert_eq!(pg.graph.num_nodes(), 280);
        let target = 280 * 6 / 2 + 280 * 6 / 10;
        let got = pg.graph.num_edges();
        assert!(
            got <= target && got + 8 >= target,
            "edges {got} vs nominal {target}"
        );
        let cg = crate::CategoryGraph::exact(&pg.graph, &pg.partition);
        let intra: u64 = (0..3).map(|c| cg.intra_edge_count(c)).sum();
        assert!(intra > 3 * cg.total_cut_edges());
        assert!(par_planted_partition(
            &PlantedConfig {
                category_sizes: vec![5, 50],
                k: 6,
                alpha: 0.0
            },
            1,
            1
        )
        .is_err());
    }
}
