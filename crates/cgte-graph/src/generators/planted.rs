//! The paper's synthetic graph model (§6.2.1).

use super::kregular::k_regular;
use crate::{Graph, GraphBuilder, GraphError, NodeId, Partition};
use rand::Rng;
use std::collections::HashSet;

/// The ten category sizes of the paper's synthetic model (§6.2.1): from 50
/// to 50 000, totalling `N = 88 850` nodes.
pub const PAPER_CATEGORY_SIZES: [usize; 10] =
    [50, 100, 200, 500, 1000, 2000, 5000, 10_000, 20_000, 50_000];

/// Configuration of the planted-partition model.
///
/// With the defaults of [`PlantedConfig::paper`], reproduces the graphs of
/// Fig. 3: nodes in each category form a k-regular random graph, `N·k/10`
/// uniform inter-category edges are added (so `|E| = 0.6·N·k`), and a
/// fraction `alpha` of category labels is randomly permuted to weaken the
/// community structure.
#[derive(Debug, Clone, PartialEq)]
pub struct PlantedConfig {
    /// Category sizes; their sum is the node count `N`.
    pub category_sizes: Vec<usize>,
    /// Intra-category regular degree `k` (paper sweeps 5..=49).
    pub k: usize,
    /// Fraction of nodes whose category labels are shuffled (paper's α).
    pub alpha: f64,
}

impl PlantedConfig {
    /// The paper's exact configuration: `N = 88 850`, 10 categories of sizes
    /// 50…50 000, given `k` and `alpha`.
    pub fn paper(k: usize, alpha: f64) -> Self {
        PlantedConfig {
            category_sizes: PAPER_CATEGORY_SIZES.to_vec(),
            k,
            alpha,
        }
    }

    /// A proportionally scaled-down configuration for quick runs: category
    /// sizes are `PAPER_CATEGORY_SIZES / scale_div`, floored at `k + 1` so
    /// each category can still host a k-regular graph.
    pub fn scaled(scale_div: usize, k: usize, alpha: f64) -> Self {
        assert!(scale_div >= 1);
        let category_sizes = PAPER_CATEGORY_SIZES
            .iter()
            .map(|&s| {
                let mut t = (s / scale_div).max(k + 1);
                if !(t * k).is_multiple_of(2) {
                    t += 1; // keep n·k even per category
                }
                t
            })
            .collect();
        PlantedConfig {
            category_sizes,
            k,
            alpha,
        }
    }

    /// A proportionally scaled-**up** configuration for the `scale(huge)`
    /// tier: category sizes are `PAPER_CATEGORY_SIZES × scale_mul` (parity
    /// fixed so each category stays k-regular-feasible). `scale_mul = 12`
    /// gives ≈1.07M nodes, `scale_mul = 22` ≈1.95M.
    pub fn scaled_up(scale_mul: usize, k: usize, alpha: f64) -> Self {
        assert!(scale_mul >= 1);
        let category_sizes = PAPER_CATEGORY_SIZES
            .iter()
            .map(|&s| {
                let mut t = (s * scale_mul).max(k + 1);
                if !(t * k).is_multiple_of(2) {
                    t += 1; // keep n·k even per category
                }
                t
            })
            .collect();
        PlantedConfig {
            category_sizes,
            k,
            alpha,
        }
    }

    /// Total node count `N`.
    pub fn num_nodes(&self) -> usize {
        self.category_sizes.iter().sum()
    }
}

/// A generated planted-partition graph with its ground-truth partition.
#[derive(Debug, Clone)]
pub struct PlantedGraph {
    /// The generated graph `G`.
    pub graph: Graph,
    /// The (post-α-permutation) category partition used as ground truth.
    pub partition: Partition,
}

/// Samples a graph from the planted-partition model of §6.2.1.
///
/// Fails if any category cannot host a k-regular graph (`k >= size` or
/// `size·k` odd).
pub fn planted_partition<R: Rng + ?Sized>(
    config: &PlantedConfig,
    rng: &mut R,
) -> Result<PlantedGraph, GraphError> {
    let n = config.num_nodes();
    let k = config.k;
    for (c, &s) in config.category_sizes.iter().enumerate() {
        if k >= s {
            return Err(GraphError::InvalidParameter {
                reason: format!("category {c} of size {s} cannot be {k}-regular"),
            });
        }
        if !(s * k).is_multiple_of(2) {
            return Err(GraphError::InvalidParameter {
                reason: format!("category {c}: size*k = {} is odd", s * k),
            });
        }
    }
    let partition = Partition::blocks(n, &config.category_sizes)?;
    let mut b = GraphBuilder::with_capacity(n, n * k / 2 + n * k / 10);

    // Intra-category k-regular random graphs, relocated to global ids.
    let mut base: usize = 0;
    for &s in &config.category_sizes {
        let local = k_regular(s, k, rng)?;
        for (u, v) in local.edges() {
            b.add_edge(u + base as NodeId, v + base as NodeId)?;
        }
        base += s;
    }

    // N*k/10 uniform random inter-category edges (distinct, between
    // different categories). Intra edges cannot collide with these, so only
    // inter-inter duplicates need rejection.
    let target = n * k / 10;
    let mut inter: HashSet<(NodeId, NodeId)> = HashSet::with_capacity(target * 2);
    while inter.len() < target {
        let u = rng.gen_range(0..n as NodeId);
        let v = rng.gen_range(0..n as NodeId);
        if partition.category_of(u) == partition.category_of(v) {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if inter.insert(key) {
            b.add_edge(key.0, key.1)?;
        }
    }

    let graph = b.build();
    let partition = partition.permute_labels(config.alpha, rng);
    Ok(PlantedGraph { graph, partition })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::connected_components;
    use crate::CategoryGraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small() -> PlantedConfig {
        PlantedConfig {
            category_sizes: vec![20, 40, 80, 160],
            k: 6,
            alpha: 0.0,
        }
    }

    #[test]
    fn paper_sizes_sum_to_88850() {
        assert_eq!(PAPER_CATEGORY_SIZES.iter().sum::<usize>(), 88_850);
        assert_eq!(PlantedConfig::paper(20, 0.5).num_nodes(), 88_850);
    }

    #[test]
    fn edge_count_is_point_six_nk() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = small();
        let n = cfg.num_nodes();
        let g = planted_partition(&cfg, &mut rng).unwrap();
        assert_eq!(g.graph.num_nodes(), n);
        assert_eq!(g.graph.num_edges(), n * cfg.k / 2 + n * cfg.k / 10);
    }

    #[test]
    fn alpha_zero_keeps_block_structure() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = small();
        let g = planted_partition(&cfg, &mut rng).unwrap();
        // With alpha = 0, intra-category edges dominate each category.
        let cg = CategoryGraph::exact(&g.graph, &g.partition);
        let intra: u64 = (0..4).map(|c| cg.intra_edge_count(c)).sum();
        let inter = cg.total_cut_edges();
        assert!(intra > 3 * inter, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn alpha_one_destroys_block_structure() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut cfg = small();
        cfg.alpha = 1.0;
        let g = planted_partition(&cfg, &mut rng).unwrap();
        let cg = CategoryGraph::exact(&g.graph, &g.partition);
        let intra: u64 = (0..4).map(|c| cg.intra_edge_count(c)).sum();
        let inter = cg.total_cut_edges();
        // After a full shuffle, most edges cross category boundaries.
        assert!(inter > intra, "inter {inter} should exceed intra {intra}");
    }

    #[test]
    fn partition_sizes_survive_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut cfg = small();
        cfg.alpha = 0.7;
        let g = planted_partition(&cfg, &mut rng).unwrap();
        assert_eq!(
            g.partition.sizes(),
            &[20, 40, 80, 160].map(|s: usize| s as u64)
        );
    }

    #[test]
    fn generated_graph_is_connected() {
        // The paper notes its instances were connected; with inter-category
        // edges at N*k/10 this holds w.h.p. at small scale too.
        let mut rng = StdRng::seed_from_u64(5);
        let g = planted_partition(&small(), &mut rng).unwrap();
        assert_eq!(connected_components(&g.graph).num_components, 1);
    }

    #[test]
    fn rejects_infeasible_categories() {
        let mut rng = StdRng::seed_from_u64(6);
        let cfg = PlantedConfig {
            category_sizes: vec![5, 100],
            k: 6,
            alpha: 0.0,
        };
        assert!(planted_partition(&cfg, &mut rng).is_err());
        let cfg = PlantedConfig {
            category_sizes: vec![7, 100],
            k: 5,
            alpha: 0.0,
        };
        assert!(planted_partition(&cfg, &mut rng).is_err()); // 7*5 odd
    }

    #[test]
    fn scaled_config_is_feasible() {
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = PlantedConfig::scaled(50, 5, 0.5);
        let g = planted_partition(&cfg, &mut rng).unwrap();
        assert_eq!(g.partition.num_categories(), 10);
        assert!(g.graph.num_nodes() >= 10 * 6);
    }
}
