//! Graph substrate for coarse-grained topology estimation.
//!
//! This crate provides everything the estimators in [`cgte-core`] need from a
//! graph, without any knowledge of sampling or estimation itself:
//!
//! - [`Graph`]: an undirected, static graph in compressed sparse row (CSR)
//!   form with sorted adjacency lists (`O(log deg)` edge queries).
//! - [`GraphBuilder`]: incremental construction from edges, with self-loop
//!   and duplicate-edge rejection.
//! - [`Partition`]: an assignment of every node to exactly one category.
//! - [`CategoryGraph`]: the exact coarse-grained topology of a graph under a
//!   partition — category sizes, volumes, inter-category edge counts and the
//!   normalized edge weights `w(A,B) = |E_AB| / (|A|·|B|)` of Eq. (3) in the
//!   paper.
//! - [`generators`]: random graph models, including the planted-partition
//!   model of §6.2.1 used throughout the paper's simulations.
//! - [`algorithms`]: connectivity, degree statistics, and the
//!   leading-eigenvector community detection the paper uses to build
//!   worst-case category partitions (§6.3.1).
//!
//! The design follows the paper's notation closely; citations such as
//! "Eq. (3)" refer to equation numbers in Kurant et al.,
//! *Coarse-Grained Topology Estimation via Graph Sampling*.
//!
//! # Example
//!
//! ```
//! use cgte_graph::{GraphBuilder, Partition, CategoryGraph};
//!
//! // Build the toy graph of the paper's Fig. 1 style: two triangles joined.
//! let mut b = GraphBuilder::new(6);
//! for &(u, v) in &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)] {
//!     b.add_edge(u, v).unwrap();
//! }
//! let g = b.build();
//! let p = Partition::from_assignments(vec![0, 0, 0, 1, 1, 1], 2).unwrap();
//! let cg = CategoryGraph::exact(&g, &p);
//! assert_eq!(cg.edge_count_between(0, 1), 1);        // one cut edge
//! assert!((cg.weight(0, 1) - 1.0 / 9.0).abs() < 1e-12); // w = 1/(3*3)
//! ```

// `deny` rather than `forbid`: the mmap module below is the single,
// explicitly-allowed exception (raw mmap/munmap for zero-copy loads);
// everything else in the crate stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod category_graph;
mod category_matrix;
mod error;
mod graph;
#[cfg(cgte_mmap)]
#[allow(unsafe_code)]
mod mmap;
mod partition;

pub mod algorithms;
pub mod generators;
pub mod parallel;
pub mod store;

pub use builder::GraphBuilder;
pub use category_graph::{CategoryEdge, CategoryGraph};
pub use category_matrix::CategoryMatrix;
pub use error::GraphError;
pub use graph::{Graph, NodeId};
pub use partition::{CategoryId, Partition};
