//! Clustering and degree-correlation statistics.
//!
//! §1 of the paper lists clustering coefficients and degree-degree
//! correlations among the *local* properties that node samples estimate
//! well; these exact computations provide the ground truth for such
//! estimators and characterize the generated graphs.

use crate::{Graph, NodeId};

/// Number of triangles through node `v` — edges among its neighbors.
///
/// `O(deg(v) · max_deg · log)` via sorted-adjacency intersection.
pub fn triangles_at(g: &Graph, v: NodeId) -> u64 {
    let nbrs = g.neighbors(v);
    let mut count = 0u64;
    for (i, &a) in nbrs.iter().enumerate() {
        for &b in &nbrs[i + 1..] {
            if g.has_edge(a, b) {
                count += 1;
            }
        }
    }
    count
}

/// Local clustering coefficient of `v`: triangles through `v` divided by
/// `deg(v)·(deg(v)−1)/2`. Zero for degree < 2.
pub fn local_clustering(g: &Graph, v: NodeId) -> f64 {
    let d = g.degree(v);
    if d < 2 {
        return 0.0;
    }
    let possible = (d * (d - 1) / 2) as f64;
    triangles_at(g, v) as f64 / possible
}

/// Average local clustering coefficient (Watts–Strogatz).
pub fn average_clustering(g: &Graph) -> f64 {
    let n = g.num_nodes();
    if n == 0 {
        return 0.0;
    }
    (0..n as NodeId)
        .map(|v| local_clustering(g, v))
        .sum::<f64>()
        / n as f64
}

/// Global clustering coefficient (transitivity):
/// `3 × #triangles / #connected-triples`.
pub fn global_clustering(g: &Graph) -> f64 {
    let mut triangles3 = 0u64; // each triangle counted once per vertex = 3x
    let mut triples = 0u64;
    for v in 0..g.num_nodes() as NodeId {
        let d = g.degree(v) as u64;
        triples += d * d.saturating_sub(1) / 2;
        triangles3 += triangles_at(g, v);
    }
    if triples == 0 {
        0.0
    } else {
        triangles3 as f64 / triples as f64
    }
}

/// Degree assortativity (Pearson correlation of endpoint degrees over
/// edges). Returns 0 for degenerate graphs (no edges or constant degrees).
pub fn degree_assortativity(g: &Graph) -> f64 {
    let m = g.num_edges() as f64;
    if m == 0.0 {
        return 0.0;
    }
    // Accumulate over each edge both orientations, the standard formula.
    let (mut sum_xy, mut sum_x, mut sum_x2) = (0.0f64, 0.0f64, 0.0f64);
    for (u, v) in g.edges() {
        let (a, b) = (g.degree(u) as f64, g.degree(v) as f64);
        sum_xy += 2.0 * a * b;
        sum_x += a + b;
        sum_x2 += a * a + b * b;
    }
    let inv = 1.0 / (2.0 * m);
    let num = inv * sum_xy - (inv * sum_x).powi(2);
    let den = inv * sum_x2 - (inv * sum_x).powi(2);
    if den.abs() < 1e-300 {
        0.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle_plus_tail() -> Graph {
        // Triangle {0,1,2} with a tail 2-3.
        GraphBuilder::from_edges(4, [(0, 1), (1, 2), (0, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn triangles_counted() {
        let g = triangle_plus_tail();
        assert_eq!(triangles_at(&g, 0), 1);
        assert_eq!(triangles_at(&g, 2), 1);
        assert_eq!(triangles_at(&g, 3), 0);
    }

    #[test]
    fn local_clustering_values() {
        let g = triangle_plus_tail();
        assert!((local_clustering(&g, 0) - 1.0).abs() < 1e-12);
        // Node 2 has degree 3: 1 triangle of 3 possible pairs.
        assert!((local_clustering(&g, 2) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(local_clustering(&g, 3), 0.0);
    }

    #[test]
    fn complete_graph_fully_clustered() {
        let mut b = GraphBuilder::new(5);
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                b.add_edge(u, v).unwrap();
            }
        }
        let g = b.build();
        assert!((average_clustering(&g) - 1.0).abs() < 1e-12);
        assert!((global_clustering(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tree_has_zero_clustering() {
        let g = GraphBuilder::from_edges(5, [(0, 1), (0, 2), (0, 3), (3, 4)]).unwrap();
        assert_eq!(average_clustering(&g), 0.0);
        assert_eq!(global_clustering(&g), 0.0);
    }

    #[test]
    fn global_clustering_of_triangle_tail() {
        let g = triangle_plus_tail();
        // Triples: deg(0)=2 ->1, deg(1)=2 ->1, deg(2)=3 ->3, deg(3)=1 ->0: 5.
        // 3*triangles = 3.
        assert!((global_clustering(&g) - 3.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn star_graph_is_disassortative() {
        let mut b = GraphBuilder::new(6);
        for v in 1..6 {
            b.add_edge(0, v).unwrap();
        }
        let g = b.build();
        assert!(degree_assortativity(&g) < 0.0);
    }

    #[test]
    fn regular_graph_assortativity_degenerate() {
        // 4-cycle: all degrees equal; correlation undefined -> 0.
        let g = GraphBuilder::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert_eq!(degree_assortativity(&g), 0.0);
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(average_clustering(&g), 0.0);
        assert_eq!(global_clustering(&g), 0.0);
        assert_eq!(degree_assortativity(&g), 0.0);
    }
}
