//! Degree statistics.

use crate::{Graph, NodeId};

/// Summary statistics of a graph's degree distribution.
///
/// §6.3.2 of the paper attributes estimator behaviour to degree skew; these
/// statistics let tests assert that stand-in graphs reproduce it.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree `k_V`.
    pub mean: f64,
    /// Degree variance (population).
    pub variance: f64,
    /// Coefficient of variation `σ/μ` — the skew proxy used in tests.
    pub cv: f64,
}

impl DegreeStats {
    /// Computes statistics over all nodes of `g`.
    ///
    /// Returns all-zero statistics for the empty graph.
    pub fn of(g: &Graph) -> DegreeStats {
        let n = g.num_nodes();
        if n == 0 {
            return DegreeStats {
                min: 0,
                max: 0,
                mean: 0.0,
                variance: 0.0,
                cv: 0.0,
            };
        }
        let mut min = usize::MAX;
        let mut max = 0usize;
        let mut sum = 0.0f64;
        let mut sum2 = 0.0f64;
        for v in 0..n {
            let d = g.degree(v as NodeId);
            min = min.min(d);
            max = max.max(d);
            sum += d as f64;
            sum2 += (d * d) as f64;
        }
        let mean = sum / n as f64;
        let variance = (sum2 / n as f64 - mean * mean).max(0.0);
        let cv = if mean > 0.0 {
            variance.sqrt() / mean
        } else {
            0.0
        };
        DegreeStats {
            min,
            max,
            mean,
            variance,
            cv,
        }
    }
}

/// Degree histogram: `hist[k]` is the number of nodes with degree `k`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in 0..g.num_nodes() {
        hist[g.degree(v as NodeId)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn stats_of_regular_graph_have_zero_variance() {
        // 4-cycle: all degrees 2.
        let g = GraphBuilder::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let s = DegreeStats::of(&g);
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 2);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!(s.variance < 1e-12);
        assert!(s.cv < 1e-12);
    }

    #[test]
    fn stats_of_star_are_skewed() {
        let mut b = GraphBuilder::new(11);
        for v in 1..11 {
            b.add_edge(0, v).unwrap();
        }
        let s = DegreeStats::of(&b.build());
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 10);
        assert!(s.cv > 1.0, "star graph should be high-CV, got {}", s.cv);
    }

    #[test]
    fn stats_of_empty_graph() {
        let s = DegreeStats::of(&GraphBuilder::new(0).build());
        assert_eq!(s.max, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn histogram_sums_to_node_count() {
        let g = GraphBuilder::from_edges(5, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), 5);
        assert_eq!(h[0], 1); // isolated node 4
        assert_eq!(h[1], 2); // path endpoints
        assert_eq!(h[2], 2); // interior
    }
}
