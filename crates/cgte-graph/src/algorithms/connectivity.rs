//! Connectivity: components, giant component, BFS.

use crate::{Graph, GraphBuilder, NodeId};
use std::collections::VecDeque;

/// The connected components of a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    /// `component_of[v]` is the component index of node `v` (dense, from 0).
    pub component_of: Vec<u32>,
    /// Number of components.
    pub num_components: usize,
    /// `sizes[c]` is the node count of component `c`.
    pub sizes: Vec<usize>,
}

impl Components {
    /// Index of the largest component (ties broken by lower index).
    pub fn giant_index(&self) -> Option<usize> {
        self.sizes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
    }
}

/// Computes connected components by BFS in `O(N + E)`.
pub fn connected_components(g: &Graph) -> Components {
    let n = g.num_nodes();
    let mut component_of = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    let mut queue = VecDeque::new();
    for start in 0..n {
        if component_of[start] != u32::MAX {
            continue;
        }
        let c = sizes.len() as u32;
        let mut size = 0usize;
        component_of[start] = c;
        queue.push_back(start as NodeId);
        while let Some(u) = queue.pop_front() {
            size += 1;
            for &v in g.neighbors(u) {
                if component_of[v as usize] == u32::MAX {
                    component_of[v as usize] = c;
                    queue.push_back(v);
                }
            }
        }
        sizes.push(size);
    }
    Components {
        component_of,
        num_components: sizes.len(),
        sizes,
    }
}

/// Extracts the largest connected component as a new graph with dense ids.
///
/// Returns the subgraph and the mapping `old_id[new] = old`. The paper's
/// crawling samplers require a connected graph; stand-in generators call
/// this after construction.
pub fn giant_component(g: &Graph) -> (Graph, Vec<NodeId>) {
    let comps = connected_components(g);
    let Some(giant) = comps.giant_index() else {
        return (GraphBuilder::new(0).build(), Vec::new());
    };
    let giant = giant as u32;
    let mut new_id = vec![NodeId::MAX; g.num_nodes()];
    let mut old_id = Vec::new();
    for (v, &comp) in comps.component_of.iter().enumerate() {
        if comp == giant {
            new_id[v] = old_id.len() as NodeId;
            old_id.push(v as NodeId);
        }
    }
    let mut b = GraphBuilder::new(old_id.len());
    for (u, v) in g.edges() {
        if comps.component_of[u as usize] == giant && comps.component_of[v as usize] == giant {
            b.add_edge(new_id[u as usize], new_id[v as usize])
                .expect("remapped ids in range");
        }
    }
    (b.build(), old_id)
}

/// BFS distances from `source`; unreachable nodes get `usize::MAX`.
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.num_nodes()];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == usize::MAX {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_components() -> Graph {
        // triangle {0,1,2} + edge {3,4} + isolated 5
        GraphBuilder::from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4)]).unwrap()
    }

    #[test]
    fn components_counts() {
        let g = two_components();
        let c = connected_components(&g);
        assert_eq!(c.num_components, 3);
        let mut sizes = c.sizes.clone();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2, 3]);
        assert_eq!(c.component_of[0], c.component_of[2]);
        assert_ne!(c.component_of[0], c.component_of[3]);
    }

    #[test]
    fn giant_component_extraction() {
        let g = two_components();
        let (giant, old_ids) = giant_component(&g);
        assert_eq!(giant.num_nodes(), 3);
        assert_eq!(giant.num_edges(), 3);
        assert_eq!(old_ids, vec![0, 1, 2]);
    }

    #[test]
    fn giant_of_empty_graph() {
        let g = GraphBuilder::new(0).build();
        let (giant, old_ids) = giant_component(&g);
        assert_eq!(giant.num_nodes(), 0);
        assert!(old_ids.is_empty());
    }

    #[test]
    fn giant_of_edgeless_graph_is_single_node() {
        let g = GraphBuilder::new(4).build();
        let (giant, old_ids) = giant_component(&g);
        assert_eq!(giant.num_nodes(), 1);
        assert_eq!(old_ids.len(), 1);
    }

    #[test]
    fn bfs_on_path() {
        let g = GraphBuilder::from_edges(5, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[..4], [0, 1, 2, 3]);
        assert_eq!(d[4], usize::MAX); // isolated
    }

    #[test]
    fn components_fully_connected() {
        let g = GraphBuilder::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let c = connected_components(&g);
        assert_eq!(c.num_components, 1);
        assert_eq!(c.giant_index(), Some(0));
        assert_eq!(c.sizes, vec![4]);
    }
}
