//! Graph algorithms used by the evaluation pipeline.
//!
//! - [`connectivity`]: connected components, giant component extraction,
//!   BFS distances. The paper requires connected graphs for its crawls.
//! - [`degree`]: degree histograms and summary statistics, used to verify
//!   that dataset stand-ins reproduce the published degree skew.
//! - [`communities`]: Newman's leading-eigenvector modularity method
//!   (reference \[47\] of the paper) plus label propagation; §6.3.1 builds its
//!   worst-case category partitions from the 50 largest communities.

mod clustering;
mod communities;
mod connectivity;
mod degree;

pub use clustering::{
    average_clustering, degree_assortativity, global_clustering, local_clustering, triangles_at,
};
pub use communities::{
    label_propagation, leading_eigenvector_communities, modularity, top_k_partition,
    CommunityOptions,
};
pub use connectivity::{bfs_distances, connected_components, giant_component, Components};
pub use degree::{degree_histogram, DegreeStats};
