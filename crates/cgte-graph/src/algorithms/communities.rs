//! Community detection.
//!
//! §6.3.1 of the paper builds its "worst-case" category partitions with "a
//! standard community finding algorithm based on eigenvalues" — Newman's
//! leading-eigenvector modularity method (the paper's reference \[47\]). We
//! implement that method (recursive spectral bisection of the modularity
//! matrix via power iteration) plus label propagation as a fast alternative,
//! and the paper's top-50-plus-rest category construction.

use crate::{CategoryId, Graph, NodeId, Partition};
use rand::Rng;

/// Newman modularity `Q = Σ_c [ e_c/m − (K_c/2m)² ]` of a partition, where
/// `e_c` is the number of intra-community edges and `K_c` the community
/// volume.
///
/// Returns 0 for an edgeless graph.
pub fn modularity(g: &Graph, labels: &[CategoryId]) -> f64 {
    assert_eq!(labels.len(), g.num_nodes(), "labels must cover all nodes");
    let m = g.num_edges() as f64;
    if m == 0.0 {
        return 0.0;
    }
    let num_c = labels.iter().map(|&c| c as usize + 1).max().unwrap_or(0);
    let mut intra = vec![0u64; num_c];
    let mut vol = vec![0u64; num_c];
    for (u, v) in g.edges() {
        if labels[u as usize] == labels[v as usize] {
            intra[labels[u as usize] as usize] += 1;
        }
    }
    for v in 0..g.num_nodes() {
        vol[labels[v] as usize] += g.degree(v as NodeId) as u64;
    }
    let two_m = 2.0 * m;
    (0..num_c)
        .map(|c| intra[c] as f64 / m - (vol[c] as f64 / two_m).powi(2))
        .sum()
}

/// Options for [`leading_eigenvector_communities`].
#[derive(Debug, Clone, PartialEq)]
pub struct CommunityOptions {
    /// Stop splitting a group when the modularity gain falls below this.
    pub min_delta_q: f64,
    /// Hard cap on the number of communities produced.
    pub max_communities: usize,
    /// Maximum power-iteration steps per eigenvector.
    pub max_power_iters: usize,
    /// Relative eigenvalue tolerance for power-iteration convergence.
    pub tolerance: f64,
}

impl Default for CommunityOptions {
    fn default() -> Self {
        CommunityOptions {
            min_delta_q: 1e-7,
            max_communities: usize::MAX,
            max_power_iters: 500,
            tolerance: 1e-7,
        }
    }
}

/// Multiplies the generalized modularity matrix `B^(g)` of a node group by a
/// vector `x` (Newman 2006, Eq. 6): for `i` in the group,
/// `y_i = Σ_{j∈g, j∼i} x_j − (k_i/2m)·Σ_{j∈g} k_j x_j − x_i·(d_i^{(g)} − k_i K_g / 2m)`.
///
/// `local[v]` maps global node id to group index or `usize::MAX`.
fn modularity_matvec(
    g: &Graph,
    group: &[NodeId],
    local: &[usize],
    deg_in_group: &[f64],
    group_volume: f64,
    x: &[f64],
    y: &mut [f64],
) {
    let two_m = g.total_volume() as f64;
    let kx: f64 = group
        .iter()
        .enumerate()
        .map(|(i, &v)| g.degree(v) as f64 * x[i])
        .sum();
    for (i, &v) in group.iter().enumerate() {
        let k_i = g.degree(v) as f64;
        let mut a_x = 0.0;
        for &u in g.neighbors(v) {
            let j = local[u as usize];
            if j != usize::MAX {
                a_x += x[j];
            }
        }
        let self_term = deg_in_group[i] - k_i * group_volume / two_m;
        y[i] = a_x - k_i * kx / two_m - x[i] * self_term;
    }
}

/// Power iteration for the most-positive eigenpair of `B^(g)`.
///
/// Two phases: find the dominant-magnitude eigenvalue first; if it is
/// negative, re-run on the shifted matrix `B + (|λ|+1)·I` whose dominant
/// eigenvalue corresponds to B's most positive one.
fn leading_eigenpair<R: Rng + ?Sized>(
    g: &Graph,
    group: &[NodeId],
    local: &[usize],
    deg_in_group: &[f64],
    group_volume: f64,
    opts: &CommunityOptions,
    rng: &mut R,
) -> (f64, Vec<f64>) {
    let n = group.len();
    let run = |shift: f64, rng: &mut R| -> (f64, Vec<f64>) {
        let mut x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut y = vec![0.0; n];
        let mut lambda = 0.0f64;
        for _ in 0..opts.max_power_iters {
            modularity_matvec(g, group, local, deg_in_group, group_volume, &x, &mut y);
            if shift != 0.0 {
                for i in 0..n {
                    y[i] += shift * x[i];
                }
            }
            let norm = y.iter().map(|v| v * v).sum::<f64>().sqrt();
            if norm < 1e-300 {
                return (0.0, x);
            }
            for v in y.iter_mut() {
                *v /= norm;
            }
            // Rayleigh quotient of the shifted matrix equals `norm` up to
            // sign; track convergence via successive eigenvalue estimates.
            let new_lambda = norm;
            std::mem::swap(&mut x, &mut y);
            let converged =
                (new_lambda - lambda).abs() <= opts.tolerance * new_lambda.abs().max(1.0);
            lambda = new_lambda;
            if converged {
                break;
            }
        }
        // Signed Rayleigh quotient for the unshifted matrix.
        modularity_matvec(g, group, local, deg_in_group, group_volume, &x, &mut y);
        let rq: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        (rq, x)
    };
    let (lam, vec) = run(0.0, rng);
    if lam >= 0.0 {
        (lam, vec)
    } else {
        // Dominant eigenvalue negative: shift and find the most positive.
        let (lam2, vec2) = run(lam.abs() + 1.0, rng);
        (lam2, vec2)
    }
}

/// Newman's leading-eigenvector community detection (the paper's \[47\]).
///
/// Recursively bisects node groups by the sign of the leading eigenvector of
/// the (generalized) modularity matrix, accepting a split only if it
/// increases modularity by at least `opts.min_delta_q`. Returns dense
/// community labels per node.
///
/// Deterministic given the RNG seed (the power-iteration start vector is the
/// only randomness).
pub fn leading_eigenvector_communities<R: Rng + ?Sized>(
    g: &Graph,
    opts: &CommunityOptions,
    rng: &mut R,
) -> Vec<CategoryId> {
    let n = g.num_nodes();
    let mut labels = vec![0 as CategoryId; n];
    if n == 0 || g.num_edges() == 0 {
        return labels;
    }
    let mut local = vec![usize::MAX; n];
    let mut final_groups: Vec<Vec<NodeId>> = Vec::new();
    let mut work: Vec<Vec<NodeId>> = vec![(0..n as NodeId).collect()];
    let four_m = 2.0 * g.total_volume() as f64;

    while let Some(group) = work.pop() {
        if group.len() < 2 || final_groups.len() + work.len() + 1 >= opts.max_communities {
            final_groups.push(group);
            continue;
        }
        for (i, &v) in group.iter().enumerate() {
            local[v as usize] = i;
        }
        let deg_in_group: Vec<f64> = group
            .iter()
            .map(|&v| {
                g.neighbors(v)
                    .iter()
                    .filter(|&&u| local[u as usize] != usize::MAX)
                    .count() as f64
            })
            .collect();
        let group_volume: f64 = group.iter().map(|&v| g.degree(v) as f64).sum();
        let (lambda, vec) =
            leading_eigenpair(g, &group, &local, &deg_in_group, group_volume, opts, rng);

        let mut accept = false;
        let mut a: Vec<NodeId> = Vec::new();
        let mut b: Vec<NodeId> = Vec::new();
        if lambda > opts.tolerance {
            let s: Vec<f64> = vec
                .iter()
                .map(|&x| if x >= 0.0 { 1.0 } else { -1.0 })
                .collect();
            // ΔQ = s·(B s) / 4m.
            let mut bs = vec![0.0; group.len()];
            modularity_matvec(g, &group, &local, &deg_in_group, group_volume, &s, &mut bs);
            let delta_q: f64 = s.iter().zip(&bs).map(|(x, y)| x * y).sum::<f64>() / four_m;
            if delta_q > opts.min_delta_q {
                for (i, &v) in group.iter().enumerate() {
                    if s[i] > 0.0 {
                        a.push(v);
                    } else {
                        b.push(v);
                    }
                }
                accept = !a.is_empty() && !b.is_empty();
            }
        }
        for &v in &group {
            local[v as usize] = usize::MAX;
        }
        if accept {
            work.push(a);
            work.push(b);
        } else {
            final_groups.push(group);
        }
    }

    for (c, group) in final_groups.iter().enumerate() {
        for &v in group {
            labels[v as usize] = c as CategoryId;
        }
    }
    labels
}

/// Asynchronous label propagation (Raghavan et al.): each node repeatedly
/// adopts the most frequent label among its neighbors, until stable.
///
/// Much faster than the spectral method; used for large stand-ins and as a
/// cross-check in tests. Returns dense community labels.
pub fn label_propagation<R: Rng + ?Sized>(
    g: &Graph,
    max_sweeps: usize,
    rng: &mut R,
) -> Vec<CategoryId> {
    use rand::seq::SliceRandom;
    let n = g.num_nodes();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    let mut counts: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for _ in 0..max_sweeps {
        order.shuffle(rng);
        let mut changed = 0usize;
        for &v in &order {
            if g.degree(v) == 0 {
                continue;
            }
            counts.clear();
            for &u in g.neighbors(v) {
                *counts.entry(labels[u as usize]).or_insert(0) += 1;
            }
            // Highest count; ties broken by smaller label for determinism.
            let best = counts
                .iter()
                .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
                .map(|(&l, _)| l)
                .expect("non-isolated node has neighbors");
            if best != labels[v as usize] {
                labels[v as usize] = best;
                changed += 1;
            }
        }
        if changed == 0 {
            break;
        }
    }
    // Densify labels.
    let mut remap: std::collections::HashMap<u32, CategoryId> = std::collections::HashMap::new();
    labels
        .iter()
        .map(|&l| {
            let next = remap.len() as CategoryId;
            *remap.entry(l).or_insert(next)
        })
        .collect()
}

/// Builds the paper's §6.3.1 category partition from community labels: the
/// `k` largest communities become categories `0..k` (in descending size
/// order) and all remaining nodes are grouped into category `k`.
///
/// If there are at most `k` communities the result simply relabels them by
/// descending size (no rest category).
pub fn top_k_partition(labels: &[CategoryId], k: usize) -> Partition {
    let num_c = labels.iter().map(|&c| c as usize + 1).max().unwrap_or(0);
    let mut sizes: Vec<(usize, usize)> = vec![(0, 0); num_c]; // (size, community)
    for (c, entry) in sizes.iter_mut().enumerate() {
        entry.1 = c;
    }
    for &l in labels {
        sizes[l as usize].0 += 1;
    }
    sizes.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut new_label = vec![0 as CategoryId; num_c];
    let kept = k.min(num_c);
    let has_rest = num_c > k;
    for (rank, &(_, c)) in sizes.iter().enumerate() {
        new_label[c] = if rank < kept {
            rank as CategoryId
        } else {
            kept as CategoryId
        };
    }
    let num_cats = kept + usize::from(has_rest);
    let assignment: Vec<CategoryId> = labels.iter().map(|&l| new_label[l as usize]).collect();
    Partition::from_assignments(assignment, num_cats.max(1))
        .expect("relabeled assignment is in range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{planted_partition, PlantedConfig};
    use crate::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two 5-cliques joined by one edge — unambiguous two-community graph.
    fn two_cliques() -> Graph {
        let mut b = GraphBuilder::new(10);
        for base in [0u32, 5] {
            for u in 0..5 {
                for v in (u + 1)..5 {
                    b.add_edge(base + u, base + v).unwrap();
                }
            }
        }
        b.add_edge(0, 5).unwrap();
        b.build()
    }

    #[test]
    fn modularity_of_perfect_split() {
        let g = two_cliques();
        let labels = vec![0, 0, 0, 0, 0, 1, 1, 1, 1, 1];
        let q = modularity(&g, &labels);
        // 21 edges, 20 intra; Q = 20/21 - 2*(21/42)^2 ≈ 0.452.
        assert!((q - (20.0 / 21.0 - 0.5)).abs() < 1e-9, "q = {q}");
        // Trivial partition has Q = 0 minus volume term... actually all-in-one:
        let q0 = modularity(&g, &[0; 10]);
        assert!(q0.abs() < 1e-9, "single community Q should be 0, got {q0}");
        assert!(q > q0);
    }

    #[test]
    fn modularity_of_edgeless_graph_is_zero() {
        let g = GraphBuilder::new(5).build();
        assert_eq!(modularity(&g, &[0, 1, 2, 3, 4]), 0.0);
    }

    #[test]
    fn leading_eigenvector_splits_two_cliques() {
        let g = two_cliques();
        let mut rng = StdRng::seed_from_u64(1);
        let labels = leading_eigenvector_communities(&g, &CommunityOptions::default(), &mut rng);
        // Nodes 0-4 share a label distinct from nodes 5-9.
        assert_eq!(labels[0], labels[4]);
        assert_eq!(labels[5], labels[9]);
        assert_ne!(labels[0], labels[5]);
    }

    #[test]
    fn leading_eigenvector_recovers_planted_blocks() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = PlantedConfig {
            category_sizes: vec![60, 60, 60],
            k: 8,
            alpha: 0.0,
        };
        let pg = planted_partition(&cfg, &mut rng).unwrap();
        let labels =
            leading_eigenvector_communities(&pg.graph, &CommunityOptions::default(), &mut rng);
        let q = modularity(&pg.graph, &labels);
        let q_true = modularity(&pg.graph, pg.partition.assignments());
        assert!(q > 0.8 * q_true, "found Q={q:.3} vs planted Q={q_true:.3}");
    }

    #[test]
    fn leading_eigenvector_respects_max_communities() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = PlantedConfig {
            category_sizes: vec![40; 8],
            k: 6,
            alpha: 0.0,
        };
        let pg = planted_partition(&cfg, &mut rng).unwrap();
        let opts = CommunityOptions {
            max_communities: 3,
            ..Default::default()
        };
        let labels = leading_eigenvector_communities(&pg.graph, &opts, &mut rng);
        let n_comms = labels.iter().map(|&c| c as usize + 1).max().unwrap();
        assert!(n_comms <= 3, "got {n_comms} communities");
    }

    #[test]
    fn label_propagation_splits_two_cliques() {
        let g = two_cliques();
        let mut rng = StdRng::seed_from_u64(2);
        let labels = label_propagation(&g, 100, &mut rng);
        assert_eq!(labels[1], labels[4]);
        assert_eq!(labels[6], labels[9]);
        assert_ne!(labels[1], labels[6]);
    }

    #[test]
    fn label_propagation_handles_isolated_nodes() {
        let g = GraphBuilder::from_edges(4, [(0, 1)]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let labels = label_propagation(&g, 10, &mut rng);
        assert_eq!(labels.len(), 4);
        assert_eq!(labels[0], labels[1]);
    }

    #[test]
    fn top_k_partition_orders_by_size_and_groups_rest() {
        // Communities: 0 (3 nodes), 1 (5 nodes), 2 (1 node), 3 (2 nodes).
        let labels = vec![0, 0, 0, 1, 1, 1, 1, 1, 2, 3, 3];
        let p = top_k_partition(&labels, 2);
        assert_eq!(p.num_categories(), 3); // top-2 + rest
        assert_eq!(p.category_size(0), 5); // biggest first
        assert_eq!(p.category_size(1), 3);
        assert_eq!(p.category_size(2), 3); // 1 + 2 grouped as rest
    }

    #[test]
    fn top_k_partition_without_rest() {
        let labels = vec![0, 1, 1, 2];
        let p = top_k_partition(&labels, 5);
        assert_eq!(p.num_categories(), 3);
        assert_eq!(p.category_size(0), 2);
    }

    #[test]
    fn empty_graph_yields_single_label() {
        let g = GraphBuilder::new(0).build();
        let mut rng = StdRng::seed_from_u64(6);
        assert!(
            leading_eigenvector_communities(&g, &CommunityOptions::default(), &mut rng).is_empty()
        );
    }
}
