//! Dense symmetric matrices over category pairs.
//!
//! The number of categories `C` is tiny (tens) while the hot loops of
//! observation and estimation touch category pairs millions of times, so a
//! flat upper-triangular `Vec<f64>` beats any pair-keyed hash map: O(1)
//! unchecked-arithmetic indexing, zero hashing, and cache-resident storage
//! (`C = 50` is 10 KiB). Shared by [`crate::CategoryGraph`], the estimators
//! in `cgte-core`, and the experiment runner in `cgte-eval`.

use crate::CategoryId;

/// A dense symmetric `C × C` matrix of `f64`, stored as the upper triangle
/// (diagonal included) in row-major order.
///
/// `get`/`add`/`set` accept category pairs in either order. Useful for cut
/// counts, edge-weight numerators, and estimated weights alike.
///
/// # Example
///
/// ```
/// use cgte_graph::CategoryMatrix;
/// let mut m = CategoryMatrix::zeros(3);
/// m.add(2, 0, 1.5);
/// m.add(0, 2, 0.5);
/// assert_eq!(m.get(0, 2), 2.0);
/// assert_eq!(m.get(2, 0), 2.0);
/// assert_eq!(m.iter_nonzero().count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CategoryMatrix {
    num_categories: usize,
    /// Upper triangle, row-major: entry `(a, b)` with `a <= b` lives at
    /// `a*C - a(a-1)/2 + (b - a)`.
    data: Vec<f64>,
}

impl CategoryMatrix {
    /// An all-zero matrix over `num_categories` categories.
    pub fn zeros(num_categories: usize) -> Self {
        CategoryMatrix {
            num_categories,
            data: vec![0.0; num_categories * (num_categories + 1) / 2],
        }
    }

    /// Number of categories `C` (the matrix is `C × C`).
    #[inline]
    pub fn num_categories(&self) -> usize {
        self.num_categories
    }

    #[inline]
    fn index(&self, a: CategoryId, b: CategoryId) -> usize {
        let (a, b) = if a <= b {
            (a as usize, b as usize)
        } else {
            (b as usize, a as usize)
        };
        // A hard check, not debug-only: a near-range overflow computes a flat
        // index that aliases a *valid* cell (e.g. (0,2) and (1,1) on C = 2),
        // which `self.data[...]`'s own bounds check would never catch.
        assert!(
            b < self.num_categories,
            "category {b} out of range (C = {})",
            self.num_categories
        );
        a * self.num_categories - a * (a + 1) / 2 + b
    }

    /// The entry at `(a, b)` (order-insensitive).
    ///
    /// # Panics
    /// Panics if either category is out of range.
    #[inline]
    pub fn get(&self, a: CategoryId, b: CategoryId) -> f64 {
        self.data[self.index(a, b)]
    }

    /// Adds `x` to the entry at `(a, b)` (order-insensitive).
    ///
    /// # Panics
    /// Panics if either category is out of range.
    #[inline]
    pub fn add(&mut self, a: CategoryId, b: CategoryId, x: f64) {
        let i = self.index(a, b);
        self.data[i] += x;
    }

    /// Overwrites the entry at `(a, b)` (order-insensitive).
    ///
    /// # Panics
    /// Panics if either category is out of range.
    #[inline]
    pub fn set(&mut self, a: CategoryId, b: CategoryId, x: f64) {
        let i = self.index(a, b);
        self.data[i] = x;
    }

    /// Resets every entry to zero, keeping the allocation.
    pub fn reset(&mut self) {
        self.data.fill(0.0);
    }

    /// Whether every entry is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(|&x| x == 0.0)
    }

    /// Number of non-zero entries in the stored triangle.
    pub fn count_nonzero(&self) -> usize {
        self.data.iter().filter(|&&x| x != 0.0).count()
    }

    /// Iterates the stored triangle as `(a, b, value)` with `a <= b`, in
    /// ascending `(a, b)` order.
    pub fn iter_upper(&self) -> impl Iterator<Item = (CategoryId, CategoryId, f64)> + '_ {
        let c = self.num_categories;
        (0..c).flat_map(move |a| {
            (a..c).map(move |b| {
                (
                    a as CategoryId,
                    b as CategoryId,
                    self.get(a as CategoryId, b as CategoryId),
                )
            })
        })
    }

    /// Like [`CategoryMatrix::iter_upper`], skipping zero entries.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (CategoryId, CategoryId, f64)> + '_ {
        self.iter_upper().filter(|&(_, _, x)| x != 0.0)
    }

    /// A new matrix whose entry `(a, b)` is `f(a, b, self[a, b])`, applied
    /// over the stored triangle.
    pub fn map_upper<F: FnMut(CategoryId, CategoryId, f64) -> f64>(
        &self,
        mut f: F,
    ) -> CategoryMatrix {
        let mut out = CategoryMatrix::zeros(self.num_categories);
        self.map_upper_into(&mut out, &mut f);
        out
    }

    /// Allocation-free variant of [`CategoryMatrix::map_upper`]: writes
    /// `f(a, b, self[a, b])` into `out`, which hot snapshot paths reuse
    /// across calls instead of allocating a matrix per prefix.
    ///
    /// # Panics
    /// Panics if `out` has a different category count.
    pub fn map_upper_into<F: FnMut(CategoryId, CategoryId, f64) -> f64>(
        &self,
        out: &mut CategoryMatrix,
        mut f: F,
    ) {
        assert_eq!(
            out.num_categories, self.num_categories,
            "output matrix dimension mismatch"
        );
        for a in 0..self.num_categories {
            for b in a..self.num_categories {
                let (a, b) = (a as CategoryId, b as CategoryId);
                let v = f(a, b, self.get(a, b));
                out.set(a, b, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_dims() {
        let m = CategoryMatrix::zeros(4);
        assert_eq!(m.num_categories(), 4);
        assert!(m.is_zero());
        assert_eq!(m.count_nonzero(), 0);
        assert_eq!(m.iter_upper().count(), 10); // 4*5/2
    }

    #[test]
    fn symmetric_access() {
        let mut m = CategoryMatrix::zeros(3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(2, 1), 5.0);
        m.add(2, 1, 1.0);
        assert_eq!(m.get(1, 2), 6.0);
    }

    #[test]
    fn diagonal_entries() {
        let mut m = CategoryMatrix::zeros(3);
        m.add(1, 1, 2.0);
        assert_eq!(m.get(1, 1), 2.0);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn no_aliasing_between_pairs() {
        let mut m = CategoryMatrix::zeros(5);
        let mut expected = std::collections::HashMap::new();
        let mut x = 1.0;
        for a in 0..5u32 {
            for b in a..5u32 {
                m.set(a, b, x);
                expected.insert((a, b), x);
                x += 1.0;
            }
        }
        for a in 0..5u32 {
            for b in a..5u32 {
                assert_eq!(m.get(a, b), expected[&(a, b)], "({a},{b})");
            }
        }
    }

    #[test]
    fn iter_nonzero_ordered() {
        let mut m = CategoryMatrix::zeros(3);
        m.set(0, 2, 1.0);
        m.set(1, 1, 2.0);
        let v: Vec<_> = m.iter_nonzero().collect();
        assert_eq!(v, vec![(0, 2, 1.0), (1, 1, 2.0)]);
    }

    #[test]
    fn map_upper_transforms() {
        let mut m = CategoryMatrix::zeros(2);
        m.set(0, 1, 4.0);
        let d = m.map_upper(|_, _, x| x / 2.0);
        assert_eq!(d.get(0, 1), 2.0);
        assert_eq!(d.get(0, 0), 0.0);
    }

    #[test]
    fn reset_zeroes_but_keeps_shape() {
        let mut m = CategoryMatrix::zeros(3);
        m.set(0, 1, 1.0);
        m.reset();
        assert!(m.is_zero());
        assert_eq!(m.num_categories(), 3);
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let m = CategoryMatrix::zeros(2);
        let _ = m.get(0, 2);
    }
}
