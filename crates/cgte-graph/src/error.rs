use std::fmt;

/// Errors produced while building or validating graphs and partitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node id was used that is `>=` the declared number of nodes.
    NodeOutOfRange {
        /// The offending node id.
        node: u64,
        /// The number of nodes in the graph.
        num_nodes: u64,
    },
    /// A self-loop `{v, v}` was rejected; the paper's graphs are simple.
    SelfLoop {
        /// The node with the attempted self-loop.
        node: u64,
    },
    /// A duplicate (parallel) edge was rejected.
    DuplicateEdge {
        /// First endpoint.
        u: u64,
        /// Second endpoint.
        v: u64,
    },
    /// A partition assignment did not cover every node, or used a category
    /// id `>=` the declared number of categories.
    InvalidPartition {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A generator was asked for an impossible configuration
    /// (e.g. a k-regular graph with `n * k` odd, or `k >= n`).
    InvalidParameter {
        /// Human-readable description of the violation.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(
                    f,
                    "node id {node} out of range (graph has {num_nodes} nodes)"
                )
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop on node {node} rejected"),
            GraphError::DuplicateEdge { u, v } => {
                write!(f, "duplicate edge {{{u}, {v}}} rejected")
            }
            GraphError::InvalidPartition { reason } => write!(f, "invalid partition: {reason}"),
            GraphError::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::NodeOutOfRange {
            node: 7,
            num_nodes: 5,
        };
        assert!(e.to_string().contains("7"));
        assert!(e.to_string().contains("5"));
        let e = GraphError::SelfLoop { node: 3 };
        assert!(e.to_string().contains("self-loop"));
        let e = GraphError::DuplicateEdge { u: 1, v: 2 };
        assert!(e.to_string().contains("{1, 2}"));
        let e = GraphError::InvalidPartition {
            reason: "bad".into(),
        };
        assert!(e.to_string().contains("bad"));
        let e = GraphError::InvalidParameter {
            reason: "k too big".into(),
        };
        assert!(e.to_string().contains("k too big"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
