//! Read-only memory mapping for zero-copy `.cgteg` loads.
//!
//! This is the one place in the workspace that needs `unsafe`: everything
//! else stays `deny(unsafe_code)`. Like the rest of the dependency tree,
//! the mapping is vendored rather than pulled in — `mmap`/`munmap` are
//! declared directly against libc (which std already links on unix), so no
//! new crate is required.
//!
//! # Safety model
//!
//! A [`Mmap`] is a `PROT_READ`/`MAP_PRIVATE` mapping of a whole file. The
//! borrowed `&[u8]` it hands out is sound under one external assumption,
//! shared by every mmap-based loader (SNAP, Ligra, arrow, …): **the file
//! is not truncated while mapped**. A concurrent truncation unmaps the
//! tail pages and a later access raises `SIGBUS` — a crash, never silent
//! memory unsafety in the sense of reading unrelated memory. Concurrent
//! *writes* to the file are benign for correctness of our callers because
//! every section's checksum is verified against the mapped bytes before
//! any borrow is handed out, and the store's writers only ever replace
//! files atomically (write to a temp name, then rename). This argument is
//! documented for users in `EXPERIMENTS.md` §zero-copy-loads.
//!
//! The module only compiles on `cgte_mmap` platforms (unix, 64-bit,
//! little-endian — see `build.rs`); elsewhere the loader silently falls
//! back to the owned heap decode.

use crate::NodeId;
use std::fs::File;
use std::io;
use std::os::unix::io::AsRawFd;
use std::sync::Arc;

/// Raw libc declarations. std links libc on every unix target, so these
/// resolve without adding a dependency.
mod sys {
    use std::ffi::c_void;
    use std::os::raw::c_int;

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    pub fn map_failed() -> *mut c_void {
        usize::MAX as *mut c_void // (void *)-1
    }

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// A read-only, page-aligned mapping of an entire file.
///
/// Dropping the mapping unmaps it; clones are shared via [`Arc`] by the
/// callers (one mapping serves every [`crate::Graph`] borrowed from it).
pub struct Mmap {
    ptr: *mut std::ffi::c_void,
    len: usize,
}

// SAFETY: the mapping is PROT_READ and never mutated through `ptr`; sharing
// immutable bytes across threads is sound (the same reasoning as `&[u8]`).
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps the whole file read-only. A zero-length file maps to an empty
    /// (syscall-free) sentinel, since `mmap(len = 0)` is an error.
    pub fn map(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::other("file too large to map on this platform"))?;
        if len == 0 {
            return Ok(Mmap {
                ptr: std::ptr::null_mut(),
                len: 0,
            });
        }
        // SAFETY: fd is a valid open file for the duration of the call; we
        // request a fresh PROT_READ private mapping of `len` bytes at a
        // kernel-chosen address and check for MAP_FAILED.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::map_failed() {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap { ptr, len })
    }

    /// Length of the mapped file in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapped file was empty.
    #[allow(dead_code)] // exercised by the unit tests below
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The mapped bytes.
    pub fn bytes(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len` bytes
        // (established in `map`, released only in `drop`), and the returned
        // borrow cannot outlive `self`.
        unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        if self.len != 0 {
            // SAFETY: `ptr`/`len` describe the mapping created in `map`,
            // unmapped exactly once.
            unsafe {
                sys::munmap(self.ptr, self.len);
            }
        }
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len).finish()
    }
}

/// The borrowed-CSR backing of a mapped [`crate::Graph`]: byte ranges into
/// a shared [`Mmap`] that reinterpret, in place, the store's fixed-width
/// little-endian `csr.offsets` (u64) and `csr.targets` (u32) payloads.
#[derive(Clone)]
pub(crate) struct MappedCsr {
    map: Arc<Mmap>,
    offsets_start: usize,
    num_offsets: usize,
    targets_start: usize,
    num_targets: usize,
}

impl MappedCsr {
    /// Builds the view after proving the ranges are in bounds and aligned
    /// for the element types they reinterpret. Returns a message (for the
    /// caller to wrap into its own error type) if not.
    pub(crate) fn new(
        map: Arc<Mmap>,
        offsets_start: usize,
        num_offsets: usize,
        targets_start: usize,
        num_targets: usize,
    ) -> Result<MappedCsr, String> {
        let len = map.len();
        let offsets_end = offsets_start
            .checked_add(num_offsets.checked_mul(8).ok_or("offset range overflows")?)
            .ok_or("offset range overflows")?;
        let targets_end = targets_start
            .checked_add(num_targets.checked_mul(4).ok_or("target range overflows")?)
            .ok_or("target range overflows")?;
        if offsets_end > len || targets_end > len {
            return Err(format!(
                "CSR sections extend past the mapped file ({len} bytes)"
            ));
        }
        if !offsets_start.is_multiple_of(8) || !targets_start.is_multiple_of(4) {
            return Err("CSR payloads are not aligned for in-place borrowing".into());
        }
        Ok(MappedCsr {
            map,
            offsets_start,
            num_offsets,
            targets_start,
            num_targets,
        })
    }

    /// The offset array, borrowed straight from the mapping.
    #[inline]
    pub(crate) fn offsets(&self) -> &[usize] {
        // SAFETY: the range was bounds- and alignment-checked in `new`
        // against the live mapping, and on cgte_mmap platforms (64-bit,
        // little-endian) `usize` has the same size, alignment and byte
        // order as the on-disk u64, so any 8-byte pattern is a valid value.
        unsafe {
            std::slice::from_raw_parts(
                self.map.bytes().as_ptr().add(self.offsets_start) as *const usize,
                self.num_offsets,
            )
        }
    }

    /// The target (neighbor) array, borrowed straight from the mapping.
    #[inline]
    pub(crate) fn targets(&self) -> &[NodeId] {
        // SAFETY: as for `offsets` — checked range, 4-byte alignment, and
        // NodeId is u32 with any bit pattern valid.
        unsafe {
            std::slice::from_raw_parts(
                self.map.bytes().as_ptr().add(self.targets_start) as *const NodeId,
                self.num_targets,
            )
        }
    }
}

impl std::fmt::Debug for MappedCsr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedCsr")
            .field("num_offsets", &self.num_offsets)
            .field("num_targets", &self.num_targets)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("cgte-mmap-{}-{name}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        path
    }

    #[test]
    fn maps_file_contents() {
        let path = temp_file("basic", b"hello mapped world");
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert_eq!(map.bytes(), b"hello mapped world");
        assert_eq!(map.len(), 18);
        assert!(!map.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = temp_file("empty", b"");
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.bytes(), b"");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_csr_reinterprets_le_payloads() {
        // 8-aligned offsets [0, 2], then 4 pad bytes, then targets [1, 0].
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&2u64.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let path = temp_file("csr", &bytes);
        let map = Arc::new(Mmap::map(&File::open(&path).unwrap()).unwrap());
        let csr = MappedCsr::new(map, 0, 2, 16, 2).unwrap();
        assert_eq!(csr.offsets(), &[0, 2]);
        assert_eq!(csr.targets(), &[1, 0]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_csr_rejects_bad_ranges() {
        let path = temp_file("bad", &[0u8; 24]);
        let map = Arc::new(Mmap::map(&File::open(&path).unwrap()).unwrap());
        assert!(MappedCsr::new(map.clone(), 0, 4, 0, 0).is_err(), "oob");
        assert!(MappedCsr::new(map.clone(), 4, 1, 0, 0).is_err(), "align");
        assert!(MappedCsr::new(map.clone(), 0, 1, 2, 1).is_err(), "align4");
        assert!(MappedCsr::new(map, 0, usize::MAX / 4, 0, 0).is_err());
        std::fs::remove_file(&path).ok();
    }
}
