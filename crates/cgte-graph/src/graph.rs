//! The core undirected graph type, stored in compressed sparse row form.

#[cfg(cgte_mmap)]
use crate::mmap::MappedCsr;
use crate::GraphError;

/// Identifier of a node in a [`Graph`].
///
/// Node ids are dense: a graph with `n` nodes uses ids `0..n`. `u32` keeps
/// the CSR arrays compact; the paper's largest simulated graphs (hundreds of
/// thousands of nodes) fit comfortably.
pub type NodeId = u32;

/// The physical backing of a graph's CSR arrays.
///
/// Every read accessor on [`Graph`] goes through this enum's two slice
/// getters, which is what makes the rest of the crate (and every
/// downstream consumer) representation-blind: `Owned` holds the familiar
/// heap vectors, `Mapped` borrows the store's fixed-width little-endian
/// payloads in place from a shared read-only file mapping.
#[derive(Clone)]
pub(crate) enum CsrStorage {
    /// Heap-allocated CSR arrays (built graphs, streamed loads).
    Owned {
        /// `offsets[v]..offsets[v+1]` indexes `neighbors` for node `v`.
        offsets: Vec<usize>,
        /// Concatenated, per-node-sorted adjacency lists.
        neighbors: Vec<NodeId>,
    },
    /// CSR arrays borrowed zero-copy from a mapped `.cgteg` file.
    #[cfg(cgte_mmap)]
    Mapped(MappedCsr),
}

impl CsrStorage {
    #[inline]
    fn offsets(&self) -> &[usize] {
        match self {
            CsrStorage::Owned { offsets, .. } => offsets,
            #[cfg(cgte_mmap)]
            CsrStorage::Mapped(m) => m.offsets(),
        }
    }

    #[inline]
    fn neighbors(&self) -> &[NodeId] {
        match self {
            CsrStorage::Owned { neighbors, .. } => neighbors,
            #[cfg(cgte_mmap)]
            CsrStorage::Mapped(m) => m.targets(),
        }
    }
}

/// An undirected, simple, static graph (§2.1 of the paper).
///
/// Stored as CSR: a single flat `neighbors` array plus per-node offsets.
/// Adjacency lists are sorted, so [`Graph::has_edge`] is `O(log deg)` and
/// neighbor iteration is cache-friendly. The structure is immutable after
/// construction — the paper explicitly restricts itself to static graphs.
///
/// The CSR arrays are representation-agnostic ([`CsrStorage`]): either
/// owned heap vectors, or zero-copy borrows from a memory-mapped `.cgteg`
/// file ([`Graph::is_mapped`]). Equality, hashing of derived results and
/// every accessor depend only on the logical CSR content, never on the
/// backing.
///
/// Construct via [`crate::GraphBuilder`], a generator in
/// [`crate::generators`], or load one with [`crate::store::Loader`].
#[derive(Clone)]
pub struct Graph {
    storage: CsrStorage,
    /// Number of undirected edges `|E|`.
    num_edges: usize,
}

impl PartialEq for Graph {
    fn eq(&self, other: &Self) -> bool {
        // Logical CSR content only: a mapped graph equals the owned graph
        // it was serialized from.
        self.storage.offsets() == other.storage.offsets()
            && self.storage.neighbors() == other.storage.neighbors()
    }
}

impl Eq for Graph {}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph")
            .field("offsets", &self.storage.offsets())
            .field("neighbors", &self.storage.neighbors())
            .field("num_edges", &self.num_edges)
            .finish()
    }
}

impl Graph {
    /// Builds a graph directly from CSR arrays.
    ///
    /// Intended for internal use by [`crate::GraphBuilder`]; callers must
    /// guarantee that `offsets` is monotone with `offsets\[0\] == 0`, each
    /// adjacency list is sorted, deduplicated, self-loop-free, and that the
    /// adjacency relation is symmetric. Debug builds verify all of this.
    pub(crate) fn from_csr(offsets: Vec<usize>, neighbors: Vec<NodeId>) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(offsets[0], 0);
        debug_assert_eq!(*offsets.last().unwrap(), neighbors.len());
        debug_assert!(
            neighbors.len().is_multiple_of(2),
            "undirected edges stored twice"
        );
        let g = Graph {
            num_edges: neighbors.len() / 2,
            storage: CsrStorage::Owned { offsets, neighbors },
        };
        #[cfg(debug_assertions)]
        g.check_invariants();
        g
    }

    /// Like [`Graph::from_csr`], but without the debug invariant
    /// re-verification: validation is the store loader's responsibility
    /// (it checks per its [`crate::store::Validate`] level — and
    /// `Validate::Trusted` deliberately admits structure the debug checks
    /// would re-derive at `O(V + E)` cost on every load).
    pub(crate) fn from_csr_trusted(offsets: Vec<usize>, neighbors: Vec<NodeId>) -> Self {
        Graph {
            num_edges: neighbors.len() / 2,
            storage: CsrStorage::Owned { offsets, neighbors },
        }
    }

    /// Builds a graph over CSR arrays borrowed from a file mapping.
    ///
    /// Invariant checking is the loader's responsibility (it validates per
    /// its [`crate::store::Validate`] level *before* constructing this), so
    /// unlike [`Graph::from_csr`] no debug re-verification runs here.
    #[cfg(cgte_mmap)]
    pub(crate) fn from_mapped(csr: MappedCsr) -> Self {
        Graph {
            num_edges: csr.targets().len() / 2,
            storage: CsrStorage::Mapped(csr),
        }
    }

    /// Whether the CSR arrays are zero-copy borrows from a memory-mapped
    /// file (rather than owned heap vectors).
    pub fn is_mapped(&self) -> bool {
        match &self.storage {
            CsrStorage::Owned { .. } => false,
            #[cfg(cgte_mmap)]
            CsrStorage::Mapped(_) => true,
        }
    }

    #[cfg(debug_assertions)]
    fn check_invariants(&self) {
        for v in 0..self.num_nodes() {
            let adj = self.neighbors(v as NodeId);
            for w in adj.windows(2) {
                assert!(w[0] < w[1], "adjacency of {v} not strictly sorted");
            }
            for &u in adj {
                assert_ne!(u as usize, v, "self-loop on {v}");
                assert!(
                    self.neighbors(u).binary_search(&(v as NodeId)).is_ok(),
                    "edge ({v},{u}) not symmetric"
                );
            }
        }
    }

    /// Number of nodes `N = |V|`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.storage.offsets().len() - 1
    }

    /// Number of undirected edges `|E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Degree `deg(v)` of node `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        let offsets = self.storage.offsets();
        offsets[v + 1] - offsets[v]
    }

    /// The sorted neighbor list of `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        let offsets = self.storage.offsets();
        &self.storage.neighbors()[offsets[v]..offsets[v + 1]]
    }

    /// Whether the undirected edge `{u, v}` exists. `O(log deg)`.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        // Search the smaller list.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Volume `vol(A) = Σ_{v∈A} deg(v)` of a set of nodes (Eq. (1)).
    ///
    /// The nodes need not be distinct; repeated nodes are counted repeatedly,
    /// matching the paper's multiset semantics for samples.
    pub fn volume<I: IntoIterator<Item = NodeId>>(&self, nodes: I) -> u64 {
        nodes.into_iter().map(|v| self.degree(v) as u64).sum()
    }

    /// Total volume `vol(V) = 2|E|`.
    #[inline]
    pub fn total_volume(&self) -> u64 {
        2 * self.num_edges as u64
    }

    /// Average node degree `k_V = vol(V) / N` (§4.1.2).
    ///
    /// Returns `0.0` for the empty graph.
    pub fn mean_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            self.total_volume() as f64 / self.num_nodes() as f64
        }
    }

    /// Iterator over all node ids `0..N`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.num_nodes() as NodeId
    }

    /// Iterator over each undirected edge exactly once, as `(u, v)` with
    /// `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Validates that a node id is in range, for fallible APIs.
    pub fn check_node(&self, v: NodeId) -> Result<(), GraphError> {
        if (v as usize) < self.num_nodes() {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfRange {
                node: v as u64,
                num_nodes: self.num_nodes() as u64,
            })
        }
    }

    /// The maximum degree in the graph, or 0 for an empty graph.
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes())
            .map(|v| self.degree(v as NodeId))
            .max()
            .unwrap_or(0)
    }

    /// The raw CSR offset array: `offsets[v]..offsets[v+1]` indexes the
    /// neighbor array for node `v` (`num_nodes + 1` entries).
    ///
    /// Exposed for bulk serialization ([`crate::store`]); prefer
    /// [`Graph::neighbors`] for traversal.
    #[inline]
    pub fn csr_offsets(&self) -> &[usize] {
        self.storage.offsets()
    }

    /// The raw concatenated neighbor array (`2 |E|` entries, per-node
    /// sorted). Exposed for bulk serialization ([`crate::store`]).
    #[inline]
    pub fn csr_neighbors(&self) -> &[NodeId] {
        self.storage.neighbors()
    }

    /// Approximate memory used by the CSR arrays, in bytes.
    ///
    /// Useful for sizing experiments; not an exact allocator measurement.
    /// For a mapped graph ([`Graph::is_mapped`]) these bytes are
    /// file-backed page-cache pages shared with other mappings, not
    /// private heap.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of_val(self.storage.offsets())
            + std::mem::size_of_val(self.storage.neighbors())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path_graph(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for v in 1..n {
            b.add_edge((v - 1) as NodeId, v as NodeId).unwrap();
        }
        b.build()
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.mean_degree(), 0.0);
        assert_eq!(g.total_volume(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn isolated_nodes() {
        let g = GraphBuilder::new(5).build();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
        for v in 0..5 {
            assert_eq!(g.degree(v), 0);
            assert!(g.neighbors(v).is_empty());
        }
    }

    #[test]
    fn path_graph_structure() {
        let g = path_graph(4);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.total_volume(), 6);
        assert!((g.mean_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn edges_iterates_each_edge_once() {
        let g = path_graph(5);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
    }

    #[test]
    fn volume_of_multiset_counts_repeats() {
        let g = path_graph(3); // degrees 1, 2, 1
        assert_eq!(g.volume([1, 1, 0]), 5);
    }

    #[test]
    fn check_node_bounds() {
        let g = path_graph(3);
        assert!(g.check_node(2).is_ok());
        assert_eq!(
            g.check_node(3),
            Err(GraphError::NodeOutOfRange {
                node: 3,
                num_nodes: 3
            })
        );
    }

    #[test]
    fn max_degree_star() {
        let mut b = GraphBuilder::new(5);
        for v in 1..5 {
            b.add_edge(0, v).unwrap();
        }
        let g = b.build();
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn memory_bytes_nonzero() {
        let g = path_graph(10);
        assert!(g.memory_bytes() > 0);
    }

    #[test]
    fn has_edge_searches_smaller_list() {
        // Star: center has large degree; leaves have degree 1.
        let mut b = GraphBuilder::new(100);
        for v in 1..100 {
            b.add_edge(0, v).unwrap();
        }
        let g = b.build();
        assert!(g.has_edge(0, 57));
        assert!(g.has_edge(57, 0));
        assert!(!g.has_edge(57, 58));
    }
}
