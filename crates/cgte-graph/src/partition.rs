//! Node partitions into categories (§2.2 of the paper).

use crate::{Graph, GraphError, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Identifier of a category in a [`Partition`].
pub type CategoryId = u32;

/// A partition of the node set `V` into categories `C` (§2.2).
///
/// Every node belongs to exactly one category. Categories model the
/// user-declared attributes of the paper — countries, colleges, workplaces —
/// or communities found algorithmically (§6.3.1).
///
/// # Example
///
/// ```
/// use cgte_graph::Partition;
/// let p = Partition::from_assignments(vec![0, 1, 0, 1, 1], 2).unwrap();
/// assert_eq!(p.num_categories(), 2);
/// assert_eq!(p.category_size(1), 3);
/// assert_eq!(p.category_of(2), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// `assignment[v]` is the category of node `v`.
    assignment: Vec<CategoryId>,
    /// `sizes[c]` is `|C_c|`.
    sizes: Vec<u64>,
}

impl Partition {
    /// Creates a partition from an explicit per-node assignment.
    ///
    /// `num_categories` fixes the category id space `0..num_categories`,
    /// which may include empty categories. Fails if any assignment is out of
    /// range.
    pub fn from_assignments(
        assignment: Vec<CategoryId>,
        num_categories: usize,
    ) -> Result<Self, GraphError> {
        let mut sizes = vec![0u64; num_categories];
        for (v, &c) in assignment.iter().enumerate() {
            if c as usize >= num_categories {
                return Err(GraphError::InvalidPartition {
                    reason: format!(
                        "node {v} assigned to category {c}, but only {num_categories} categories declared"
                    ),
                });
            }
            sizes[c as usize] += 1;
        }
        Ok(Partition { assignment, sizes })
    }

    /// A single category containing every node — the trivial partition.
    pub fn trivial(num_nodes: usize) -> Self {
        Partition {
            assignment: vec![0; num_nodes],
            sizes: vec![num_nodes as u64],
        }
    }

    /// Partitions `0..num_nodes` into consecutive blocks of the given sizes.
    ///
    /// Fails unless the sizes sum to exactly `num_nodes`. This is how the
    /// paper's synthetic model lays out its 10 categories before the
    /// α-permutation (§6.2.1).
    pub fn blocks(num_nodes: usize, block_sizes: &[usize]) -> Result<Self, GraphError> {
        let total: usize = block_sizes.iter().sum();
        if total != num_nodes {
            return Err(GraphError::InvalidPartition {
                reason: format!("block sizes sum to {total}, expected {num_nodes}"),
            });
        }
        let mut assignment = Vec::with_capacity(num_nodes);
        for (c, &s) in block_sizes.iter().enumerate() {
            assignment.extend(std::iter::repeat_n(c as CategoryId, s));
        }
        Ok(Partition {
            assignment,
            sizes: block_sizes.iter().map(|&s| s as u64).collect(),
        })
    }

    /// Number of nodes covered by the partition.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.assignment.len()
    }

    /// Number of categories `|C|` (including empty ones).
    #[inline]
    pub fn num_categories(&self) -> usize {
        self.sizes.len()
    }

    /// The category of node `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn category_of(&self, v: NodeId) -> CategoryId {
        self.assignment[v as usize]
    }

    /// Exact size `|A|` of category `c`.
    ///
    /// # Panics
    /// Panics if `c` is out of range.
    #[inline]
    pub fn category_size(&self, c: CategoryId) -> u64 {
        self.sizes[c as usize]
    }

    /// All category sizes, indexed by category id.
    #[inline]
    pub fn sizes(&self) -> &[u64] {
        &self.sizes
    }

    /// The raw assignment slice, indexed by node id.
    #[inline]
    pub fn assignments(&self) -> &[CategoryId] {
        &self.assignment
    }

    /// Relative size `f_A = |A| / |V|` (Eq. (2)).
    pub fn relative_size(&self, c: CategoryId) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            self.category_size(c) as f64 / self.num_nodes() as f64
        }
    }

    /// Relative volume `f_A^vol = vol(A) / vol(V)` (Eq. (2)).
    pub fn relative_volume(&self, g: &Graph, c: CategoryId) -> f64 {
        let tot = g.total_volume();
        if tot == 0 {
            return 0.0;
        }
        let vol: u64 = (0..self.num_nodes())
            .filter(|&v| self.assignment[v] == c)
            .map(|v| g.degree(v as NodeId) as u64)
            .sum();
        vol as f64 / tot as f64
    }

    /// Members of category `c`, in ascending node order. `O(N)`.
    pub fn members(&self, c: CategoryId) -> Vec<NodeId> {
        (0..self.num_nodes() as NodeId)
            .filter(|&v| self.assignment[v as usize] == c)
            .collect()
    }

    /// Per-category member lists, computed in one `O(N)` pass.
    pub fn all_members(&self) -> Vec<Vec<NodeId>> {
        let mut out: Vec<Vec<NodeId>> = vec![Vec::new(); self.num_categories()];
        for (v, &c) in self.assignment.iter().enumerate() {
            out[c as usize].push(v as NodeId);
        }
        out
    }

    /// Randomly permutes the category labels of a fraction `alpha` of nodes
    /// (§6.2.1).
    ///
    /// The paper's community-tightness knob: the selected nodes' labels are
    /// shuffled *among themselves*, so every category keeps its exact size
    /// while its alignment with graph structure degrades. `alpha = 0` leaves
    /// the partition untouched; `alpha = 1` shuffles all labels.
    ///
    /// # Panics
    /// Panics if `alpha` is not in `\[0, 1\]`.
    pub fn permute_labels<R: Rng + ?Sized>(&self, alpha: f64, rng: &mut R) -> Partition {
        assert!(
            (0.0..=1.0).contains(&alpha),
            "alpha must be in [0, 1], got {alpha}"
        );
        let n = self.num_nodes();
        let k = ((n as f64) * alpha).round() as usize;
        let mut chosen: Vec<usize> = rand::seq::index::sample(rng, n, k.min(n)).into_vec();
        chosen.sort_unstable();
        let mut labels: Vec<CategoryId> = chosen.iter().map(|&v| self.assignment[v]).collect();
        labels.shuffle(rng);
        let mut assignment = self.assignment.clone();
        for (i, &v) in chosen.iter().enumerate() {
            assignment[v] = labels[i];
        }
        Partition {
            assignment,
            sizes: self.sizes.clone(),
        }
    }

    /// Merges categories according to `group_of`, producing a coarser
    /// partition with `num_groups` categories.
    ///
    /// `group_of[c]` names the new category of old category `c`. This is how
    /// §7.3.1 merges regional networks into countries. Fails if any group id
    /// is out of range or `group_of` does not cover all categories.
    pub fn merge(
        &self,
        group_of: &[CategoryId],
        num_groups: usize,
    ) -> Result<Partition, GraphError> {
        if group_of.len() != self.num_categories() {
            return Err(GraphError::InvalidPartition {
                reason: format!(
                    "merge map covers {} categories, partition has {}",
                    group_of.len(),
                    self.num_categories()
                ),
            });
        }
        if let Some(&bad) = group_of.iter().find(|&&g| g as usize >= num_groups) {
            return Err(GraphError::InvalidPartition {
                reason: format!("merge target {bad} out of range ({num_groups} groups)"),
            });
        }
        let assignment: Vec<CategoryId> = self
            .assignment
            .iter()
            .map(|&c| group_of[c as usize])
            .collect();
        Partition::from_assignments(assignment, num_groups)
    }

    /// Verifies that the partition covers exactly the nodes of `g`.
    pub fn check_covers(&self, g: &Graph) -> Result<(), GraphError> {
        if self.num_nodes() != g.num_nodes() {
            Err(GraphError::InvalidPartition {
                reason: format!(
                    "partition covers {} nodes, graph has {}",
                    self.num_nodes(),
                    g.num_nodes()
                ),
            })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_assignments_counts_sizes() {
        let p = Partition::from_assignments(vec![0, 1, 1, 2, 1], 3).unwrap();
        assert_eq!(p.sizes(), &[1, 3, 1]);
        assert_eq!(p.num_nodes(), 5);
        assert_eq!(p.num_categories(), 3);
    }

    #[test]
    fn from_assignments_rejects_out_of_range() {
        assert!(Partition::from_assignments(vec![0, 3], 3).is_err());
    }

    #[test]
    fn allows_empty_categories() {
        let p = Partition::from_assignments(vec![0, 0], 4).unwrap();
        assert_eq!(p.category_size(3), 0);
        assert_eq!(p.members(3), Vec::<NodeId>::new());
    }

    #[test]
    fn trivial_partition() {
        let p = Partition::trivial(7);
        assert_eq!(p.num_categories(), 1);
        assert_eq!(p.category_size(0), 7);
        assert!((p.relative_size(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn blocks_layout() {
        let p = Partition::blocks(6, &[2, 1, 3]).unwrap();
        assert_eq!(p.assignments(), &[0, 0, 1, 2, 2, 2]);
        assert!(Partition::blocks(6, &[2, 2]).is_err());
    }

    #[test]
    fn members_and_all_members_agree() {
        let p = Partition::from_assignments(vec![1, 0, 1, 0, 1], 2).unwrap();
        let all = p.all_members();
        assert_eq!(all[0], p.members(0));
        assert_eq!(all[1], p.members(1));
        assert_eq!(all[1], vec![0, 2, 4]);
    }

    #[test]
    fn permute_preserves_sizes() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = Partition::blocks(100, &[30, 70]).unwrap();
        for &alpha in &[0.0, 0.3, 1.0] {
            let q = p.permute_labels(alpha, &mut rng);
            assert_eq!(q.sizes(), p.sizes(), "alpha={alpha}");
        }
    }

    #[test]
    fn permute_zero_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = Partition::blocks(50, &[25, 25]).unwrap();
        let q = p.permute_labels(0.0, &mut rng);
        assert_eq!(p, q);
    }

    #[test]
    fn permute_one_changes_some_labels() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = Partition::blocks(1000, &[500, 500]).unwrap();
        let q = p.permute_labels(1.0, &mut rng);
        let changed = p
            .assignments()
            .iter()
            .zip(q.assignments())
            .filter(|(a, b)| a != b)
            .count();
        // With two equal halves fully shuffled, ~50% of labels change.
        assert!(changed > 300, "only {changed} labels changed");
    }

    #[test]
    fn relative_volume_splits() {
        use crate::GraphBuilder;
        // Path 0-1-2: degrees 1,2,1. Category {1} has volume 2 of 4.
        let g = GraphBuilder::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let p = Partition::from_assignments(vec![0, 1, 0], 2).unwrap();
        assert!((p.relative_volume(&g, 1) - 0.5).abs() < 1e-12);
        assert!((p.relative_volume(&g, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_regions_into_countries() {
        // 4 regions -> 2 countries.
        let p = Partition::from_assignments(vec![0, 1, 2, 3, 0, 2], 4).unwrap();
        let m = p.merge(&[0, 0, 1, 1], 2).unwrap();
        assert_eq!(m.assignments(), &[0, 0, 1, 1, 0, 1]);
        assert_eq!(m.sizes(), &[3, 3]);
    }

    #[test]
    fn merge_rejects_bad_maps() {
        let p = Partition::from_assignments(vec![0, 1], 2).unwrap();
        assert!(p.merge(&[0], 1).is_err()); // wrong length
        assert!(p.merge(&[0, 5], 2).is_err()); // target out of range
    }

    #[test]
    fn check_covers_detects_mismatch() {
        use crate::GraphBuilder;
        let g = GraphBuilder::new(3).build();
        let p = Partition::trivial(2);
        assert!(p.check_covers(&g).is_err());
        let p = Partition::trivial(3);
        assert!(p.check_covers(&g).is_ok());
    }
}
