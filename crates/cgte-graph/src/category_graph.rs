//! The category graph `G_C` — the coarse-grained topology (§2.2).

use crate::{CategoryId, CategoryMatrix, Graph, Partition};

/// One weighted edge `{A, B}` of a [`CategoryGraph`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CategoryEdge {
    /// First endpoint category (always `< b`).
    pub a: CategoryId,
    /// Second endpoint category.
    pub b: CategoryId,
    /// Number of graph edges in the cut, `|E_AB|`.
    pub edge_count: u64,
    /// Normalized weight `w(A,B) = |E_AB| / (|A|·|B|)` (Eq. (3)):
    /// the probability that a uniformly chosen member of `A` is connected to
    /// a uniformly chosen member of `B`.
    pub weight: f64,
}

/// The weighted category graph `G_C = (C, E_C)` of a graph under a partition.
///
/// Nodes are categories; an edge `{A, B}` exists iff the edge-cut `E_AB` in
/// the original graph is non-empty, and carries both the raw cut size
/// `|E_AB|` and the normalized weight of Eq. (3). Self-loops are excluded by
/// definition (§2.2), but intra-category edge counts are retained separately
/// because they are useful for model-based analyses (§9) and for tests.
///
/// Cut counts and weights are stored as dense [`CategoryMatrix`] values —
/// `C` is tens, so dense wins over any sparse pair map in both speed and
/// simplicity.
///
/// This type is used both for **ground truth** (via
/// [`CategoryGraph::exact`]) and as the output container of the estimators
/// in `cgte-core`.
#[derive(Debug, Clone, PartialEq)]
pub struct CategoryGraph {
    num_categories: usize,
    /// Category sizes `|A|` (possibly estimated, hence `f64`).
    sizes: Vec<f64>,
    /// Symmetric cut counts `|E_AB|` for `A != B` (diagonal unused).
    cuts: CategoryMatrix,
    /// Eq. (3) weights aligned with `cuts` (diagonal unused).
    weights: CategoryMatrix,
    /// Intra-category edge counts `|E_AA|`, indexed by category.
    intra: Vec<u64>,
}

impl CategoryGraph {
    /// Computes the exact category graph of `g` under `p` in `O(E + C²)`.
    ///
    /// # Panics
    /// Panics if the partition does not cover the graph.
    pub fn exact(g: &Graph, p: &Partition) -> Self {
        p.check_covers(g).expect("partition must cover graph");
        let c = p.num_categories();
        let mut cuts = CategoryMatrix::zeros(c);
        let mut intra = vec![0u64; c];
        for (u, v) in g.edges() {
            let (ca, cb) = (p.category_of(u), p.category_of(v));
            if ca == cb {
                intra[ca as usize] += 1;
            } else {
                cuts.add(ca, cb, 1.0);
            }
        }
        let sizes: Vec<f64> = p.sizes().iter().map(|&s| s as f64).collect();
        let weights = cuts.map_upper(|a, b, cut| {
            let denom = sizes[a as usize] * sizes[b as usize];
            if a != b && denom > 0.0 {
                cut / denom
            } else {
                0.0
            }
        });
        CategoryGraph {
            num_categories: c,
            sizes,
            cuts,
            weights,
            intra,
        }
    }

    /// Assembles a category graph from (possibly estimated) parts.
    ///
    /// `sizes[A]` are category sizes; `cuts` holds `|E_AB|` per unordered
    /// category pair (interpreted as exact or estimated counts; the diagonal
    /// is ignored); weights are recomputed from the provided sizes via
    /// Eq. (3). Pairs with zero-size endpoints get weight 0.
    ///
    /// # Panics
    /// Panics if the matrix dimension differs from `sizes.len()`.
    pub fn from_parts(sizes: Vec<f64>, cuts: CategoryMatrix) -> Self {
        let num_categories = sizes.len();
        assert_eq!(
            cuts.num_categories(),
            num_categories,
            "matrix/sizes dimension mismatch"
        );
        let weights = cuts.map_upper(|a, b, cut| {
            let denom = sizes[a as usize] * sizes[b as usize];
            if a != b && denom > 0.0 {
                cut / denom
            } else {
                0.0
            }
        });
        CategoryGraph {
            num_categories,
            sizes,
            cuts,
            weights,
            intra: vec![0; num_categories],
        }
    }

    /// Builds a category graph directly from estimated weights.
    ///
    /// Unlike [`CategoryGraph::from_parts`] the weights are stored verbatim
    /// (no division by sizes); cut counts are back-computed where sizes are
    /// available. This is the natural constructor for estimator output.
    ///
    /// # Panics
    /// Panics if the matrix dimension differs from `sizes.len()`.
    pub fn from_weights(sizes: Vec<f64>, weights: CategoryMatrix) -> Self {
        let num_categories = sizes.len();
        assert_eq!(
            weights.num_categories(),
            num_categories,
            "matrix/sizes dimension mismatch"
        );
        let cuts = weights.map_upper(|a, b, w| {
            if a == b {
                0.0
            } else {
                (w * sizes[a as usize] * sizes[b as usize]).round().max(0.0)
            }
        });
        CategoryGraph {
            num_categories,
            sizes,
            cuts,
            weights,
            intra: vec![0; num_categories],
        }
    }

    /// Number of categories `|C|`.
    #[inline]
    pub fn num_categories(&self) -> usize {
        self.num_categories
    }

    /// Size `|A|` of category `a` (exact or estimated).
    #[inline]
    pub fn size(&self, a: CategoryId) -> f64 {
        self.sizes[a as usize]
    }

    /// All category sizes indexed by id.
    #[inline]
    pub fn sizes(&self) -> &[f64] {
        &self.sizes
    }

    /// The cut size `|E_AB|` between two distinct categories (0 if none).
    ///
    /// # Panics
    /// Panics if `a == b`; intra-category edges are queried via
    /// [`CategoryGraph::intra_edge_count`].
    pub fn edge_count_between(&self, a: CategoryId, b: CategoryId) -> u64 {
        assert_ne!(
            a, b,
            "category graph has no self-loops; use intra_edge_count"
        );
        self.cuts.get(a, b).round().max(0.0) as u64
    }

    /// Number of edges with both endpoints in `a`.
    pub fn intra_edge_count(&self, a: CategoryId) -> u64 {
        self.intra[a as usize]
    }

    /// The Eq. (3) weight `w(A,B)`, or 0 if the categories are not connected.
    ///
    /// # Panics
    /// Panics if `a == b`.
    pub fn weight(&self, a: CategoryId, b: CategoryId) -> f64 {
        assert_ne!(a, b, "category graph has no self-loops");
        self.weights.get(a, b)
    }

    /// The full weight matrix (diagonal entries are unused and zero).
    #[inline]
    pub fn weight_matrix(&self) -> &CategoryMatrix {
        &self.weights
    }

    /// Number of category-graph edges (pairs with a non-empty cut or a
    /// non-zero estimated weight).
    pub fn num_edges(&self) -> usize {
        self.edges().count()
    }

    /// Iterates over all category edges, ascending by `(a, b)`.
    pub fn edges(&self) -> impl Iterator<Item = CategoryEdge> + '_ {
        self.cuts.iter_upper().filter_map(move |(a, b, cut)| {
            if a == b {
                return None;
            }
            let weight = self.weights.get(a, b);
            (cut != 0.0 || weight != 0.0).then(|| CategoryEdge {
                a,
                b,
                edge_count: cut.round().max(0.0) as u64,
                weight,
            })
        })
    }

    /// All edges sorted by descending weight — the "strongest links" view of
    /// §7.3 / Fig. 7. Ties broken by category ids for determinism.
    pub fn edges_by_weight(&self) -> Vec<CategoryEdge> {
        let mut v: Vec<CategoryEdge> = self.edges().collect();
        v.sort_by(|x, y| {
            y.weight
                .partial_cmp(&x.weight)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(x.a.cmp(&y.a))
                .then(x.b.cmp(&y.b))
        });
        v
    }

    /// The edge whose weight sits at quantile `q` of all edge weights
    /// (0 = lightest, 1 = heaviest).
    ///
    /// §6.2.3 evaluates estimation of `e_low` (`q = 0.25`) and `e_high`
    /// (`q = 0.75`). Returns `None` if the category graph has no edges.
    ///
    /// # Panics
    /// Panics if `q` is not in `\[0, 1\]`.
    pub fn weight_quantile_edge(&self, q: f64) -> Option<CategoryEdge> {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0,1], got {q}"
        );
        let mut v = self.edges_by_weight();
        if v.is_empty() {
            return None;
        }
        v.reverse(); // ascending weight
        let idx = ((v.len() - 1) as f64 * q).round() as usize;
        Some(v[idx])
    }

    /// Total number of inter-category edges, `Σ |E_AB|`.
    pub fn total_cut_edges(&self) -> u64 {
        self.cuts
            .iter_nonzero()
            .filter(|&(a, b, _)| a != b)
            .map(|(_, _, c)| c.round().max(0.0) as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// The example of the paper's Fig. 1: three categories, with
    /// w(white, black) = 3/9, w(black, gray) = 1/6, w(black, white) = 4/6
    /// — we reproduce the *structure* (sizes and a known cut) with a small
    /// hand graph.
    fn two_triangles_bridge() -> (Graph, Partition) {
        let g =
            GraphBuilder::from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
                .unwrap();
        let p = Partition::from_assignments(vec![0, 0, 0, 1, 1, 1], 2).unwrap();
        (g, p)
    }

    use crate::Graph;

    #[test]
    fn exact_counts_and_weights() {
        let (g, p) = two_triangles_bridge();
        let cg = CategoryGraph::exact(&g, &p);
        assert_eq!(cg.num_categories(), 2);
        assert_eq!(cg.size(0), 3.0);
        assert_eq!(cg.edge_count_between(0, 1), 1);
        assert_eq!(cg.edge_count_between(1, 0), 1);
        assert!((cg.weight(0, 1) - 1.0 / 9.0).abs() < 1e-12);
        assert_eq!(cg.intra_edge_count(0), 3);
        assert_eq!(cg.intra_edge_count(1), 3);
        assert_eq!(cg.num_edges(), 1);
        assert_eq!(cg.total_cut_edges(), 1);
    }

    #[test]
    fn disconnected_categories_have_zero_weight() {
        let g = GraphBuilder::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let p = Partition::from_assignments(vec![0, 0, 1, 1], 2).unwrap();
        let cg = CategoryGraph::exact(&g, &p);
        assert_eq!(cg.num_edges(), 0);
        assert_eq!(cg.edge_count_between(0, 1), 0);
        assert_eq!(cg.weight(0, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "no self-loops")]
    fn weight_self_loop_panics() {
        let (g, p) = two_triangles_bridge();
        let cg = CategoryGraph::exact(&g, &p);
        let _ = cg.weight(0, 0);
    }

    #[test]
    fn complete_bipartite_has_weight_one() {
        // K_{2,3}: every cross pair connected => w = 1.
        let g =
            GraphBuilder::from_edges(5, [(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4)]).unwrap();
        let p = Partition::from_assignments(vec![0, 0, 1, 1, 1], 2).unwrap();
        let cg = CategoryGraph::exact(&g, &p);
        assert_eq!(cg.edge_count_between(0, 1), 6);
        assert!((cg.weight(0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_parts_recomputes_weights() {
        let mut cuts = CategoryMatrix::zeros(2);
        cuts.set(0, 1, 6.0);
        let cg = CategoryGraph::from_parts(vec![2.0, 3.0], cuts);
        assert!((cg.weight(0, 1) - 1.0).abs() < 1e-12);
        assert_eq!(cg.edge_count_between(0, 1), 6);
    }

    #[test]
    fn from_weights_stores_verbatim() {
        let mut w = CategoryMatrix::zeros(2);
        w.set(1, 0, 0.25);
        let cg = CategoryGraph::from_weights(vec![4.0, 4.0], w);
        assert!((cg.weight(0, 1) - 0.25).abs() < 1e-12);
        assert_eq!(cg.edge_count_between(0, 1), 4); // 0.25 * 16
    }

    #[test]
    fn edges_by_weight_sorted_desc() {
        let g = GraphBuilder::from_edges(
            6,
            // cat 0 = {0,1}, cat 1 = {2,3}, cat 2 = {4,5}
            [(0, 2), (0, 3), (1, 2), (1, 3), (0, 4)],
        )
        .unwrap();
        let p = Partition::from_assignments(vec![0, 0, 1, 1, 2, 2], 3).unwrap();
        let cg = CategoryGraph::exact(&g, &p);
        let edges = cg.edges_by_weight();
        assert_eq!(edges.len(), 2);
        assert!(edges[0].weight >= edges[1].weight);
        assert_eq!((edges[0].a, edges[0].b), (0, 1)); // 4/4 = 1.0
        assert!((edges[0].weight - 1.0).abs() < 1e-12);
        assert!((edges[1].weight - 0.25).abs() < 1e-12);
    }

    #[test]
    fn weight_quantiles() {
        let g = GraphBuilder::from_edges(
            8,
            // three cuts of sizes 1, 2, 4 between pairs of 2-node categories
            [(0, 2), (0, 4), (1, 4), (0, 6), (0, 7), (1, 6), (1, 7)],
        )
        .unwrap();
        let p = Partition::from_assignments(vec![0, 0, 1, 1, 2, 2, 3, 3], 4).unwrap();
        let cg = CategoryGraph::exact(&g, &p);
        let low = cg.weight_quantile_edge(0.0).unwrap();
        let high = cg.weight_quantile_edge(1.0).unwrap();
        assert!(low.weight <= high.weight);
        assert_eq!(low.edge_count, 1);
        assert_eq!(high.edge_count, 4);
        let mid = cg.weight_quantile_edge(0.5).unwrap();
        assert_eq!(mid.edge_count, 2);
    }

    #[test]
    fn quantile_on_empty_graph_is_none() {
        let g = GraphBuilder::new(4).build();
        let p = Partition::from_assignments(vec![0, 0, 1, 1], 2).unwrap();
        let cg = CategoryGraph::exact(&g, &p);
        assert!(cg.weight_quantile_edge(0.5).is_none());
    }

    #[test]
    fn edge_iteration_matches_counts() {
        let (g, p) = two_triangles_bridge();
        let cg = CategoryGraph::exact(&g, &p);
        let all: Vec<CategoryEdge> = cg.edges().collect();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].edge_count, 1);
        assert_eq!((all[0].a, all[0].b), (0, 1));
    }

    #[test]
    fn weight_matrix_view_matches_weight() {
        let (g, p) = two_triangles_bridge();
        let cg = CategoryGraph::exact(&g, &p);
        assert_eq!(cg.weight_matrix().get(0, 1), cg.weight(0, 1));
    }
}
