//! Sampling sessions: one streaming observation per client, fed either
//! explicit sampled node ids or server-side walk step budgets, queryable
//! for estimates at any prefix.

use crate::json::{fmt_array, fmt_f64, fmt_opt_array, fmt_str};
use crate::registry::LoadedGraph;
use crate::ServeError;
use cgte_core::bootstrap::{bootstrap_induced, bootstrap_star};
use cgte_core::category_size::{induced_size, star_size};
use cgte_core::{estimate_stream_into, StarSizeOptions, StreamEstimate};
use cgte_graph::store::{Container, Section};
use cgte_graph::{Graph, NodeId, Partition};
use cgte_sampling::{
    snapshot, AnySampler, DesignKind, InducedSample, MetropolisHastingsWalk, NeighborCategoryIndex,
    NodeSampler, ObservationContext, ObservationStream, RandomWalk, StarSample, Swrw,
    UniformIndependence,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::sync::Arc;

/// Caps a `?ci=…&reps=…` request: bootstrap is `O(reps · C · n)`.
pub const MAX_BOOTSTRAP_REPS: usize = 2000;
/// Default bootstrap replicate count.
pub const DEFAULT_BOOTSTRAP_REPS: usize = 200;

/// `.cgtes` section holding the registry name of the session's graph.
pub const SEC_GRAPH: &str = "session.graph";
/// `.cgtes` section holding the partition name (empty = default).
pub const SEC_PARTITION: &str = "session.partition";
/// `.cgtes` section holding the sampler key (`uis`, `rw`, `mhrw`, `swrw`).
pub const SEC_SAMPLER: &str = "session.sampler";
/// `.cgtes` section holding the design (`uniform`/`weighted`; empty =
/// sampler default).
pub const SEC_DESIGN: &str = "session.design";
/// `.cgtes` section holding `[seed, burn_in, thinning]` (u64 × 3).
pub const SEC_PARAMS: &str = "session.params";
/// `.cgtes` section holding the walk RNG's raw state (u64 × 4).
pub const SEC_RNG: &str = "rng.state";

/// Parameters of `POST /sessions`, parsed from its JSON body.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// Registry name of the graph.
    pub graph: String,
    /// Partition name within the graph (default: the first one).
    pub partition: Option<String>,
    /// Sampler name: `uis`, `rw`, `mhrw`, `swrw`.
    pub sampler: String,
    /// `uniform` or `weighted`; defaults to the sampler's natural design.
    pub design: Option<String>,
    /// RNG seed for server-side walks (default 42).
    pub seed: u64,
    /// Walk burn-in per ingest batch.
    pub burn_in: usize,
    /// Walk thinning factor.
    pub thinning: usize,
}

/// Resolves a sampler key + design string into the concrete sampler and
/// design a session would run.
///
/// This is the **one** construction path: `Session::open` and the cluster
/// coordinator's single-box reference both call it, so a shard session
/// and a local replay of the same spec are bit-identical by construction.
pub fn build_sampler(
    graph: &Graph,
    p: &Partition,
    sampler: &str,
    design: Option<&str>,
    burn_in: usize,
    thinning: usize,
) -> Result<(AnySampler, DesignKind), ServeError> {
    let thinning = thinning.max(1);
    let sampler = match sampler {
        "uis" => AnySampler::Uis(UniformIndependence),
        "rw" => AnySampler::Rw(RandomWalk::new().burn_in(burn_in).thinning(thinning)),
        "mhrw" => AnySampler::Mhrw(
            MetropolisHastingsWalk::new()
                .burn_in(burn_in)
                .thinning(thinning),
        ),
        "swrw" => {
            let s = Swrw::equal_category_target(graph, p)
                .ok_or_else(|| {
                    ServeError::unprocessable("cannot build S-WRW for this graph/partition")
                })?
                .burn_in(burn_in)
                .thinning(thinning);
            AnySampler::Swrw(s)
        }
        other => {
            return Err(ServeError::unprocessable(format!(
                "unknown sampler {other:?} (use uis, rw, mhrw or swrw)"
            )))
        }
    };
    let design = match design {
        None => sampler.design(),
        Some("uniform") => DesignKind::Uniform,
        Some("weighted") => DesignKind::Weighted,
        Some(other) => {
            return Err(ServeError::unprocessable(format!(
                "unknown design {other:?} (use uniform or weighted)"
            )))
        }
    };
    Ok((sampler, design))
}

/// One open estimation session.
pub struct Session {
    /// The session id (`s0`, `s1`, …).
    pub id: String,
    graph: Arc<LoadedGraph>,
    part_idx: usize,
    index: Arc<NeighborCategoryIndex>,
    sampler: AnySampler,
    design: DesignKind,
    seed: u64,
    rng: StdRng,
    stream: ObservationStream,
    /// The opening spec with every default resolved (partition and design
    /// filled in, thinning clamped) — what a `.cgtes` snapshot records so
    /// a restore reopens an equivalent session.
    spec: SessionSpec,
    /// Reusable snapshot buffer (`estimate_stream_into`).
    est: StreamEstimate,
    /// Reusable walk draw buffer.
    scratch: Vec<NodeId>,
}

impl Session {
    /// Opens a session against a loaded graph. `index_threads` bounds the
    /// one-time parallel index build if this is the partition's first use.
    pub fn open(
        id: String,
        graph: Arc<LoadedGraph>,
        spec: &SessionSpec,
        index_threads: usize,
    ) -> Result<Session, ServeError> {
        let part_idx = match &spec.partition {
            Some(name) => graph.partition_idx(name).ok_or_else(|| {
                ServeError::not_found(format!(
                    "graph {:?} has no partition {name:?} (available: {})",
                    graph.name,
                    graph
                        .partitions
                        .iter()
                        .map(|(n, _)| n.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                ))
            })?,
            None => {
                if graph.partitions.is_empty() {
                    return Err(ServeError::unprocessable(format!(
                        "graph {:?} has no partitions; ingest it with a category file",
                        graph.name
                    )));
                }
                0
            }
        };
        let p = &graph.partitions[part_idx].1;
        let thinning = spec.thinning.max(1);
        let (sampler, design) = build_sampler(
            &graph.graph,
            p,
            &spec.sampler,
            spec.design.as_deref(),
            spec.burn_in,
            thinning,
        )?;
        let index = graph.index(part_idx, index_threads);
        let num_categories = p.num_categories();
        let resolved = SessionSpec {
            graph: graph.name.clone(),
            partition: Some(graph.partitions[part_idx].0.clone()),
            sampler: spec.sampler.clone(),
            design: Some(
                match design {
                    DesignKind::Uniform => "uniform",
                    DesignKind::Weighted => "weighted",
                }
                .to_string(),
            ),
            seed: spec.seed,
            burn_in: spec.burn_in,
            thinning,
        };
        Ok(Session {
            id,
            graph,
            part_idx,
            index,
            sampler,
            design,
            seed: spec.seed,
            rng: StdRng::seed_from_u64(spec.seed),
            stream: ObservationStream::new(num_categories),
            spec: resolved,
            est: StreamEstimate::new(num_categories),
            scratch: Vec::new(),
        })
    }

    /// Number of ingested samples so far.
    pub fn len(&self) -> usize {
        self.stream.len()
    }

    /// Whether nothing was ingested yet.
    pub fn is_empty(&self) -> bool {
        self.stream.is_empty()
    }

    /// The population size `N` estimates are scaled by.
    pub fn population(&self) -> f64 {
        self.graph.graph.num_nodes() as f64
    }

    /// Number of categories of the session's partition.
    pub fn num_categories(&self) -> usize {
        self.stream.num_categories()
    }

    /// The sampler's display name.
    pub fn sampler_name(&self) -> &'static str {
        self.sampler.name()
    }

    /// The design as a lowercase string.
    pub fn design_name(&self) -> &'static str {
        match self.design {
            DesignKind::Uniform => "uniform",
            DesignKind::Weighted => "weighted",
        }
    }

    /// Ingests explicit sampled node ids (a client-side crawl reporting
    /// its draws). Design weights are the session sampler's `w(v)` under a
    /// weighted design, 1 otherwise. Rejects out-of-range ids and nodes
    /// whose design weight is not positive and finite (e.g. an isolated
    /// node under a degree-weighted design) **before** touching the
    /// stream, so a failed batch leaves the session state unchanged.
    pub fn ingest_nodes(&mut self, nodes: &[NodeId]) -> Result<usize, ServeError> {
        let g = &self.graph.graph;
        let n = g.num_nodes() as u64;
        for &v in nodes {
            if (v as u64) >= n {
                return Err(ServeError::unprocessable(format!(
                    "node id {v} out of range (graph has {n} nodes)"
                )));
            }
            if self.design == DesignKind::Weighted {
                let w = self.sampler.weight_of(g, v);
                if !(w.is_finite() && w > 0.0) {
                    return Err(ServeError::unprocessable(format!(
                        "node {v} has non-positive sampling weight {w} under the weighted design"
                    )));
                }
            }
        }
        // Field-level borrows: the context views (graph, partition, index)
        // are disjoint from the mutable stream.
        let ctx = ObservationContext::with_index(
            &self.graph.graph,
            &self.graph.partitions[self.part_idx].1,
            &self.index,
        );
        self.stream
            .ingest_sampler(&ctx, nodes, &self.sampler, self.design);
        Ok(nodes.len())
    }

    /// Runs a server-side walk of `steps` retained samples and ingests
    /// them. Each batch is an independent walk segment from the session's
    /// persistent RNG stream (multi-walk semantics, like the paper's
    /// parallel crawl campaigns); a single-batch session is therefore
    /// bit-identical to the batch runner's draw for the same seed.
    /// Sampler-level failures (edgeless graph) surface as HTTP 422.
    pub fn ingest_steps(&mut self, steps: usize) -> Result<usize, ServeError> {
        let mut nodes = std::mem::take(&mut self.scratch);
        let mut stats = cgte_sampling::WalkStats::default();
        let result = self.sampler.try_sample_into_stats(
            &self.graph.graph,
            steps,
            &mut self.rng,
            &mut nodes,
            &mut stats,
        );
        match result {
            Ok(()) => {
                crate::counters::WALK_STEPS_TOTAL
                    .fetch_add(stats.steps as u64, std::sync::atomic::Ordering::Relaxed);
                crate::counters::WALK_REJECTIONS_TOTAL.fetch_add(
                    stats.rejections as u64,
                    std::sync::atomic::Ordering::Relaxed,
                );
                cgte_obs::event(
                    cgte_obs::LEVEL_DETAIL,
                    "serve.walk",
                    &[
                        ("session", cgte_obs::Value::Str(&self.id)),
                        ("retained", cgte_obs::Value::U64(stats.retained as u64)),
                        ("steps", cgte_obs::Value::U64(stats.steps as u64)),
                        ("rejections", cgte_obs::Value::U64(stats.rejections as u64)),
                        ("burn_in", cgte_obs::Value::U64(stats.burn_in as u64)),
                        ("thinning", cgte_obs::Value::U64(stats.thinning as u64)),
                    ],
                );
                let ctx = ObservationContext::with_index(
                    &self.graph.graph,
                    &self.graph.partitions[self.part_idx].1,
                    &self.index,
                );
                self.stream
                    .ingest_sampler(&ctx, &nodes, &self.sampler, self.design);
                let ingested = nodes.len();
                self.scratch = nodes;
                Ok(ingested)
            }
            Err(e) => {
                self.scratch = nodes;
                Err(ServeError::unprocessable(e.to_string()))
            }
        }
    }

    /// The estimate document at the current prefix: category sizes by both
    /// estimator families, all-pairs edge weights (sparse `[a, b, w]`
    /// triplets), and optionally bootstrap percentile CIs for the sizes.
    ///
    /// Values are the bit-exact output of `cgte_core::estimate_stream_into`
    /// — the same snapshot function the batch experiment runner records.
    pub fn estimate_json(&mut self, ci: Option<(f64, usize)>) -> String {
        estimate_stream_into(
            self.stream.star(),
            self.stream.induced(),
            self.population(),
            &StarSizeOptions::default(),
            true,
            &mut self.est,
        );
        let est = &self.est;
        let mut out = String::with_capacity(4096);
        let _ = write!(
            out,
            "{{\"session\":{},\"len\":{},\"population\":{},\"num_categories\":{},",
            fmt_str(&self.id),
            est.len,
            fmt_f64(est.population),
            self.num_categories(),
        );
        let _ = write!(
            out,
            "\"sizes\":{{\"induced\":{},\"star\":{}}},",
            if est.induced_defined {
                fmt_array(&est.sizes_induced)
            } else {
                "null".to_string()
            },
            fmt_opt_array(&est.sizes_star),
        );
        out.push_str("\"weights\":{\"induced\":[");
        for (i, (a, b, w)) in est.weights_induced.iter_nonzero().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{a},{b},{}]", fmt_f64(w));
        }
        out.push_str("],\"star\":[");
        for (i, (a, b, w)) in est.weights_star.iter_nonzero().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{a},{b},{}]", fmt_f64(w));
        }
        out.push_str("]}");
        if let Some((level, reps)) = ci {
            out.push(',');
            out.push_str(&self.ci_json(level, reps));
        }
        out.push('}');
        out
    }

    /// The `"ci"` member: per-category bootstrap percentile intervals for
    /// both size estimators (§5.3.2 — resampled at the record level from
    /// the session's observation log, no graph access beyond
    /// re-observation). Deterministic for a given session seed and prefix
    /// length.
    fn ci_json(&self, level: f64, reps: usize) -> String {
        let g = &self.graph.graph;
        let p = &self.graph.partitions[self.part_idx].1;
        let population = self.population();
        let log = self.stream.log();
        let nodes: Vec<NodeId> = log.iter().map(|&(v, _)| v).collect();
        let weights: Vec<f64> = match self.design {
            DesignKind::Uniform => vec![1.0; log.len()],
            DesignKind::Weighted => log.iter().map(|&(_, w)| w).collect(),
        };
        let star_sample = StarSample::observe_with_weights(g, p, &nodes, weights.clone());
        let ind_sample = InducedSample::observe_with_weights(g, p, &nodes, weights);
        // One deterministic stream per (session seed, prefix, reps): the
        // same query twice returns byte-identical intervals.
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ (log.len() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ reps as u64,
        );
        let opts = StarSizeOptions::default();
        let mut star_ci = String::from("[");
        let mut ind_ci = String::from("[");
        for c in 0..self.num_categories() as u32 {
            if c > 0 {
                star_ci.push(',');
                ind_ci.push(',');
            }
            match bootstrap_star(&star_sample, reps, level, &mut rng, |s| {
                star_size(s, c, population, &opts)
            }) {
                Some(s) => {
                    let _ = write!(
                        star_ci,
                        "{{\"lo\":{},\"hi\":{},\"mean\":{},\"sd\":{},\"replicates\":{}}}",
                        fmt_f64(s.ci.0),
                        fmt_f64(s.ci.1),
                        fmt_f64(s.mean),
                        fmt_f64(s.std_dev),
                        s.replicates
                    );
                }
                None => star_ci.push_str("null"),
            }
            match bootstrap_induced(&ind_sample, reps, level, &mut rng, |s| {
                induced_size(s, c, population)
            }) {
                Some(s) => {
                    let _ = write!(
                        ind_ci,
                        "{{\"lo\":{},\"hi\":{},\"mean\":{},\"sd\":{},\"replicates\":{}}}",
                        fmt_f64(s.ci.0),
                        fmt_f64(s.ci.1),
                        fmt_f64(s.mean),
                        fmt_f64(s.std_dev),
                        s.replicates
                    );
                }
                None => ind_ci.push_str("null"),
            }
        }
        star_ci.push(']');
        ind_ci.push(']');
        format!(
            "\"ci\":{{\"level\":{},\"reps\":{reps},\"sizes_star\":{star_ci},\"sizes_induced\":{ind_ci}}}",
            fmt_f64(level)
        )
    }

    /// The `POST /sessions` response body.
    pub fn opened_json(&self) -> String {
        format!(
            "{{\"session\":{},\"graph\":{},\"partition\":{},\"sampler\":{},\"design\":{},\"num_categories\":{},\"population\":{}}}",
            fmt_str(&self.id),
            fmt_str(&self.graph.name),
            fmt_str(&self.graph.partitions[self.part_idx].0),
            fmt_str(self.sampler_name()),
            fmt_str(self.design_name()),
            self.num_categories(),
            fmt_f64(self.population()),
        )
    }

    /// Underlying design of the session (for tests).
    pub fn design(&self) -> DesignKind {
        self.design
    }

    /// The graph this session observes.
    pub fn graph_name(&self) -> &str {
        &self.graph.name
    }

    /// Encodes the session's full resumable state as `.cgtes` container
    /// sections: the resolved opening spec, the walk RNG's raw state, and
    /// the observation push log. Restoring replays the log and resumes
    /// the RNG mid-stream, so a restored session's future draws and
    /// estimates are bit-identical to one that never stopped.
    pub fn snapshot_container(&self) -> Container {
        let mut c = Container::new();
        c.push(Section::string("meta.kind", "cgte-session"));
        c.push(Section::string(SEC_GRAPH, &self.spec.graph));
        c.push(Section::string(
            SEC_PARTITION,
            self.spec.partition.as_deref().unwrap_or(""),
        ));
        c.push(Section::string(SEC_SAMPLER, &self.spec.sampler));
        c.push(Section::string(
            SEC_DESIGN,
            self.spec.design.as_deref().unwrap_or(""),
        ));
        c.push(Section::u64s(
            SEC_PARAMS,
            vec![
                self.spec.seed,
                self.spec.burn_in as u64,
                self.spec.thinning as u64,
            ],
        ));
        c.push(Section::u64s(SEC_RNG, self.rng.state().to_vec()));
        for s in snapshot::stream_sections(&self.stream) {
            c.push(s);
        }
        c
    }

    /// The session's `.cgtes` snapshot as bytes (magic + checksummed
    /// sections), ready to be written to disk or shipped over HTTP.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        snapshot::write_snapshot(&mut buf, &self.snapshot_container())
            .expect("in-memory snapshot write cannot fail");
        buf
    }

    /// The graph name a snapshot container was taken against (read before
    /// restoring, to load the right registry entry).
    pub fn snapshot_graph_name(c: &Container) -> Result<String, ServeError> {
        c.string(SEC_GRAPH)
            .map(str::to_string)
            .map_err(|e| ServeError::unprocessable(format!("invalid snapshot: {e}")))
    }

    /// Rehydrates a session from a `.cgtes` snapshot container under a
    /// fresh id: reopens the recorded spec against the (re)loaded graph,
    /// restores the RNG state, and replays the push log through the
    /// streaming kernel — bit-identical to the session that was
    /// snapshotted, including every future server-side walk draw.
    pub fn restore(
        id: String,
        graph: Arc<LoadedGraph>,
        c: &Container,
        index_threads: usize,
    ) -> Result<Session, ServeError> {
        let bad =
            |e: &dyn std::fmt::Display| ServeError::unprocessable(format!("invalid snapshot: {e}"));
        let get_str = |name: &str| -> Result<String, ServeError> {
            c.string(name).map(str::to_string).map_err(|e| bad(&e))
        };
        let graph_name = get_str(SEC_GRAPH)?;
        if graph_name != graph.name {
            return Err(ServeError::unprocessable(format!(
                "snapshot was taken against graph {graph_name:?}, not {:?}",
                graph.name
            )));
        }
        let partition = Some(get_str(SEC_PARTITION)?).filter(|s| !s.is_empty());
        let sampler = get_str(SEC_SAMPLER)?;
        let design = Some(get_str(SEC_DESIGN)?).filter(|s| !s.is_empty());
        let params = c.u64s(SEC_PARAMS).map_err(|e| bad(&e))?;
        let [seed, burn_in, thinning] = params else {
            return Err(ServeError::unprocessable(format!(
                "invalid snapshot: section {SEC_PARAMS:?} must hold [seed, burn_in, thinning], got {} entries",
                params.len()
            )));
        };
        let rng_state = c.u64s(SEC_RNG).map_err(|e| bad(&e))?;
        let rng_state: [u64; 4] = rng_state.try_into().map_err(|_| {
            ServeError::unprocessable(format!(
                "invalid snapshot: section {SEC_RNG:?} must hold 4 words"
            ))
        })?;
        let spec = SessionSpec {
            graph: graph_name,
            partition,
            sampler,
            design,
            seed: *seed,
            burn_in: *burn_in as usize,
            thinning: (*thinning as usize).max(1),
        };
        let mut session = Session::open(id, graph, &spec, index_threads)?;
        session.rng = StdRng::from_state(rng_state);
        let ctx = ObservationContext::with_index(
            &session.graph.graph,
            &session.graph.partitions[session.part_idx].1,
            &session.index,
        );
        session.stream = snapshot::stream_from_container(c, &ctx).map_err(|e| bad(&e))?;
        Ok(session)
    }
}
