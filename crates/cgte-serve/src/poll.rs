//! Vendored `epoll` readiness layer for the event-driven connection engine.
//!
//! This is cgte-serve's one `unsafe` module — the same pattern as
//! `cgte-graph/src/mmap.rs`: the syscalls are declared directly against
//! libc (which std already links on unix), so no crate is pulled in. The
//! module only compiles on `cgte_epoll` platforms (Linux on the 64-bit
//! architectures whose flag constants are vendored below — see
//! `build.rs`); elsewhere the server keeps the portable
//! thread-per-connection path.
//!
//! # Safety model
//!
//! Every unsafe block is a single syscall over values we own:
//!
//! - [`Poller`] owns the epoll fd it creates and closes it on drop; `add`
//!   / `delete` pass borrowed raw fds that the *caller* keeps alive for
//!   the duration of their registration (the event loop owns every
//!   registered `TcpStream` and deregisters before dropping it).
//! - [`Poller::wait`] hands the kernel a pointer + capacity into a
//!   buffer we own and trusts the returned count, exactly like `read`.
//! - The self-pipe pair ([`wake_pipe`]) owns both ends; `wake`/`drain`
//!   are plain `write`/`read` on them, and both fds are closed on drop.
//!
//! No fd is ever closed while registered, and no buffer is ever handed
//! out past its lifetime, so the usual epoll hazards (stale registrations
//! firing on reused fd numbers) cannot arise.

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// Raw libc declarations. The flag values are the asm-generic ones shared
/// by x86_64 / aarch64 / riscv64 — `build.rs` gates `cgte_epoll` to
/// exactly those architectures so the constants cannot be wrong at
/// runtime.
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const O_CLOEXEC: c_int = 0o2000000;
    pub const O_NONBLOCK: c_int = 0o4000;

    /// `struct epoll_event`: packed on x86_64, naturally aligned on the
    /// other architectures — mirroring the kernel UAPI definition.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout_ms: c_int,
        ) -> c_int;
        pub fn pipe2(pipefd: *mut c_int, flags: c_int) -> c_int;
        pub fn close(fd: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    }
}

/// One readiness notification: the registered token plus what fired.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// Data is readable (or a half-close/EOF is pending — reading
    /// distinguishes them).
    pub readable: bool,
    /// The peer hung up or the socket errored; the connection is dead.
    pub closed: bool,
}

/// A reusable buffer of kernel-filled readiness events.
pub struct Events {
    buf: Vec<sys::EpollEvent>,
    len: usize,
}

impl Events {
    /// A buffer that receives at most `cap` events per [`Poller::wait`].
    pub fn with_capacity(cap: usize) -> Events {
        Events {
            buf: vec![sys::EpollEvent { events: 0, data: 0 }; cap.max(1)],
            len: 0,
        }
    }

    /// The events filled by the last [`Poller::wait`].
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf[..self.len].iter().map(|e| {
            // Copy out of the (possibly packed) struct before testing bits.
            let bits = e.events;
            Event {
                token: e.data,
                readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                closed: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
            }
        })
    }

    /// Number of events filled by the last [`Poller::wait`].
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the last wait returned no events (i.e. it timed out).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// An owned epoll instance: level-triggered read-interest registrations
/// keyed by caller-chosen `u64` tokens.
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// Creates a fresh epoll instance (close-on-exec).
    pub fn new() -> io::Result<Poller> {
        // SAFETY: plain syscall; the returned fd (checked below) is owned
        // by the Poller and closed exactly once, in Drop.
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    /// Registers `fd` for level-triggered read readiness under `token`.
    /// The caller must keep `fd` open until [`Poller::delete`] (dropping a
    /// registered fd would let the kernel reuse its number under a stale
    /// token).
    pub fn add(&self, fd: RawFd, token: u64) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events: sys::EPOLLIN | sys::EPOLLRDHUP,
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it before
        // returning. `fd` is valid by the caller contract above.
        let rc = unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_ADD, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Removes `fd` from the interest set.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        let mut ev = sys::EpollEvent { events: 0, data: 0 };
        // SAFETY: same contract as `add`; the event argument is ignored
        // for DEL on modern kernels but must be non-null on pre-2.6.9.
        let rc = unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Blocks until at least one registered fd is ready or `timeout`
    /// elapses (`None` waits forever). Sub-millisecond timeouts round up
    /// so a pending deadline can never busy-spin the loop.
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) => {
                let ms = d.as_millis().min(i32::MAX as u128 - 1) as i32;
                ms + i32::from(d.subsec_nanos() % 1_000_000 != 0)
            }
        };
        events.len = 0;
        // SAFETY: the buffer pointer + capacity describe memory we own for
        // the duration of the call; the kernel fills at most `maxevents`
        // entries and reports how many in the return value.
        let rc = unsafe {
            sys::epoll_wait(
                self.epfd,
                events.buf.as_mut_ptr(),
                events.buf.len() as i32,
                timeout_ms,
            )
        };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        events.len = rc as usize;
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: we own epfd and this is its single close.
        unsafe { sys::close(self.epfd) };
    }
}

/// The write end of the self-pipe: wakes a [`Poller::wait`] from any
/// thread (workers parking connections back, `Server::shutdown`).
#[derive(Debug)]
pub struct Waker {
    write_fd: RawFd,
}

// RawFd is a plain integer; writes to a pipe are atomic and thread-safe.
impl Waker {
    /// Makes the paired [`WakeReceiver`] readable. A full pipe (EAGAIN)
    /// means a wake-up is already pending, which is exactly as good.
    pub fn wake(&self) {
        let byte = 1u8;
        // SAFETY: single write of one byte from a live stack buffer to a
        // pipe fd we own; all outcomes (short write, EAGAIN, EPIPE) are
        // acceptable, so the return value is deliberately ignored.
        unsafe { sys::write(self.write_fd, (&byte as *const u8).cast(), 1) };
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: we own the write end and this is its single close.
        unsafe { sys::close(self.write_fd) };
    }
}

/// The read end of the self-pipe, registered on the event loop's poller.
#[derive(Debug)]
pub struct WakeReceiver {
    read_fd: RawFd,
}

impl WakeReceiver {
    /// The fd to register with [`Poller::add`].
    pub fn fd(&self) -> RawFd {
        self.read_fd
    }

    /// Discards every pending wake-up byte (the pipe is non-blocking).
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: read into a live stack buffer on a fd we own; the
            // pipe is O_NONBLOCK so this cannot block.
            let n = unsafe { sys::read(self.read_fd, buf.as_mut_ptr().cast(), buf.len()) };
            if n <= 0 || (n as usize) < buf.len() {
                return;
            }
        }
    }
}

impl Drop for WakeReceiver {
    fn drop(&mut self) {
        // SAFETY: we own the read end and this is its single close.
        unsafe { sys::close(self.read_fd) };
    }
}

/// Creates the non-blocking self-pipe pair used for loop wake-ups.
pub fn wake_pipe() -> io::Result<(WakeReceiver, Waker)> {
    let mut fds = [0i32; 2];
    // SAFETY: pipe2 fills the two-element array we own; both fds (checked
    // below) are owned by the returned halves and closed in their Drops.
    let rc = unsafe { sys::pipe2(fds.as_mut_ptr(), sys::O_CLOEXEC | sys::O_NONBLOCK) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok((WakeReceiver { read_fd: fds[0] }, Waker { write_fd: fds[1] }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::Duration;

    #[test]
    fn wake_pipe_round_trip() {
        let (rx, waker) = wake_pipe().unwrap();
        let poller = Poller::new().unwrap();
        poller.add(rx.fd(), 7).unwrap();
        let mut events = Events::with_capacity(8);

        // Nothing pending: a short wait times out empty.
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());

        // Wakes (including coalesced ones) surface as readability.
        waker.wake();
        waker.wake();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev: Vec<_> = events.iter().collect();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].token, 7);
        assert!(ev[0].readable);

        // Drained, the pipe goes quiet again (level-triggered proof).
        rx.drain();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn tcp_readability_and_hangup() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(server_side.as_raw_fd(), 42).unwrap();
        let mut events = Events::with_capacity(8);

        client.write_all(b"ping").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev: Vec<_> = events.iter().collect();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].token, 42);
        assert!(ev[0].readable);

        // Deregistered fds never fire again.
        poller.delete(server_side.as_raw_fd()).unwrap();
        drop(client);
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn sub_millisecond_timeouts_round_up() {
        let poller = Poller::new().unwrap();
        let mut events = Events::with_capacity(1);
        // A 100µs timeout must not be truncated to a 0ms busy-poll.
        let started = std::time::Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_micros(100)))
            .unwrap();
        assert!(started.elapsed() >= Duration::from_micros(100));
    }
}
