//! JSON writing helpers. Numbers are rendered with Rust's shortest
//! round-trip `Display` for `f64`, so a client parsing an estimate gets
//! back **exactly** the bits the estimator produced — the property the
//! serve-vs-batch bit-identity test pins. Reading is delegated to
//! `cgte_scenarios::artifact::parse_json` (the same hand-rolled subset
//! the run artifacts use).

use std::fmt::Write as _;

/// Renders an `f64` as a JSON value; non-finite values (which the
/// estimators never produce for defined estimates) become `null`.
pub fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Renders an optional estimate: `None` (undefined) is `null`.
pub fn fmt_opt(x: Option<f64>) -> String {
    match x {
        Some(v) => fmt_f64(v),
        None => "null".to_string(),
    }
}

/// Renders a `[..]` array of `f64`s.
pub fn fmt_array(xs: &[f64]) -> String {
    let mut out = String::with_capacity(xs.len() * 8 + 2);
    out.push('[');
    for (i, &x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}", fmt_f64(x));
    }
    out.push(']');
    out
}

/// Renders a `[..]` array of optional estimates (`null` where undefined).
pub fn fmt_opt_array(xs: &[Option<f64>]) -> String {
    let mut out = String::with_capacity(xs.len() * 8 + 2);
    out.push('[');
    for (i, &x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}", fmt_opt(x));
    }
    out.push(']');
    out
}

/// Escapes a string for inclusion in a JSON document (quotes included).
pub fn fmt_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The standard error body.
pub fn error_body(msg: &str) -> String {
    format!("{{\"error\":{}}}", fmt_str(msg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_round_trip_shortest() {
        assert_eq!(fmt_f64(1.0), "1");
        assert_eq!(fmt_f64(0.1), "0.1");
        let x = 1.0 / 3.0;
        assert_eq!(x, fmt_f64(x).parse::<f64>().unwrap());
        assert_eq!(fmt_f64(f64::NAN), "null");
    }

    #[test]
    fn arrays_and_options() {
        assert_eq!(fmt_array(&[1.0, 2.5]), "[1,2.5]");
        assert_eq!(fmt_opt_array(&[Some(1.0), None]), "[1,null]");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(fmt_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(error_body("x"), "{\"error\":\"x\"}");
    }
}
