//! `cgte-serve` — the online category-graph estimation service.
//!
//! The paper's operating model as a long-running process: crawlers stream
//! node samples in over HTTP, category-graph estimates (sizes Eq. (4)/(5),
//! edge weights Eq. (8)/(9), and their Hansen–Hurwitz weighted forms) come
//! out at any prefix, and the server never sees more than the streaming
//! kernel's `O(C²)` sufficient statistics per session. Graphs are served
//! from the `.cgteg` store directory the scenario engine and `cgte ingest`
//! write — a warm cache means the server performs **zero graph builds**,
//! only validated loads.
//!
//! ## Endpoints
//!
//! | Method & path                  | Meaning |
//! |--------------------------------|---------|
//! | `GET /healthz`                 | liveness + counters |
//! | `GET /graphs`                  | list the store's `.cgteg` entries |
//! | `POST /sessions`               | open a sampling session |
//! | `POST /sessions/{id}/ingest`   | ingest node ids or a walk budget |
//! | `GET /sessions/{id}/estimate`  | current estimates (`?ci=0.95`) |
//! | `DELETE /sessions/{id}`        | close a session |
//! | `POST /shutdown`               | stop accepting, drain, exit |
//!
//! Transport is a dependency-free HTTP/1.1 subset on
//! `std::net::TcpListener`; connections are dispatched to a bounded pool
//! of worker threads over the vendored crossbeam MPMC channel
//! (`--threads`). Estimate values are bit-identical to the batch
//! `run_experiment` path on the same sampled sequence: both call the one
//! shared snapshot function (`cgte_core::estimate_stream_into`) over the
//! same streaming kernel (`cgte_sampling::ObservationStream`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod json;
pub mod registry;
pub mod session;

use cgte_scenarios::artifact::{parse_json, Json};
use json::{error_body, fmt_str};
use registry::Registry;
use session::{Session, SessionSpec, DEFAULT_BOOTSTRAP_REPS, MAX_BOOTSTRAP_REPS};
use std::collections::HashMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A request-level failure: HTTP status + message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError {
    /// The HTTP status to answer with.
    pub status: u16,
    /// Human-readable cause, returned as `{"error": …}`.
    pub msg: String,
}

impl ServeError {
    /// 400 — malformed request (bad JSON, wrong types).
    pub fn bad_request(msg: impl Into<String>) -> Self {
        ServeError {
            status: 400,
            msg: msg.into(),
        }
    }

    /// 404 — unknown route, graph, partition or session.
    pub fn not_found(msg: impl Into<String>) -> Self {
        ServeError {
            status: 404,
            msg: msg.into(),
        }
    }

    /// 422 — well-formed but unusable (sampler errors, bad parameters).
    pub fn unprocessable(msg: impl Into<String>) -> Self {
        ServeError {
            status: 422,
            msg: msg.into(),
        }
    }

    /// 500 — server-side failure (unreadable store file).
    pub fn internal(msg: impl Into<String>) -> Self {
        ServeError {
            status: 500,
            msg: msg.into(),
        }
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The `.cgteg` store directory graphs are served from.
    pub cache_dir: PathBuf,
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads handling connections (also bounds the one-time
    /// parallel index build per graph partition).
    pub threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            cache_dir: PathBuf::from("graph-store"),
            addr: "127.0.0.1:7171".to_string(),
            threads: 4,
        }
    }
}

struct ServerState {
    registry: Registry,
    sessions: Mutex<HashMap<String, Arc<Mutex<Session>>>>,
    next_session: AtomicU64,
    requests: AtomicUsize,
    threads: usize,
    shutdown: AtomicBool,
    addr: SocketAddr,
    started: Instant,
}

/// A running server: bound address plus join/shutdown handles.
pub struct Server {
    state: Arc<ServerState>,
    accept: std::thread::JoinHandle<()>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds the listener, spawns the worker pool and the accept loop,
    /// and returns immediately.
    pub fn bind(cfg: &ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let threads = cfg.threads.max(1);
        let state = Arc::new(ServerState {
            registry: Registry::new(&cfg.cache_dir),
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(0),
            requests: AtomicUsize::new(0),
            threads,
            shutdown: AtomicBool::new(false),
            addr,
            started: Instant::now(),
        });
        let (tx, rx) = crossbeam::channel::unbounded::<TcpStream>();
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                let rx = rx.clone();
                let state = Arc::clone(&state);
                std::thread::spawn(move || {
                    while let Ok(stream) = rx.recv() {
                        handle_connection(&state, stream);
                    }
                })
            })
            .collect();
        let accept_state = Arc::clone(&state);
        let accept = std::thread::spawn(move || {
            // `tx` lives in this thread; dropping it on exit disconnects
            // the channel and drains the workers.
            for stream in listener.incoming() {
                if accept_state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(s) => {
                        if tx.send(s).is_err() {
                            break;
                        }
                    }
                    Err(_) => continue,
                }
            }
        });
        Ok(Server {
            state,
            accept,
            workers,
        })
    }

    /// The bound socket address.
    pub fn addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Requests shutdown: sets the flag and pokes the blocked accept loop
    /// with a throwaway connection.
    pub fn shutdown(&self) {
        request_shutdown(&self.state);
    }

    /// Waits for the accept loop and every worker to exit (i.e. until a
    /// shutdown was requested and all in-flight connections finished).
    pub fn join(self) {
        self.accept.join().expect("accept thread panicked");
        for w in self.workers {
            w.join().expect("worker thread panicked");
        }
    }
}

fn request_shutdown(state: &ServerState) {
    state.shutdown.store(true, Ordering::SeqCst);
    // Unblock the accept loop; the connection is accepted (or refused)
    // and immediately discarded.
    let _ = TcpStream::connect(state.addr);
}

/// Runs a server in the foreground until shutdown. Prints the grep-able
/// `cgte-serve listening on ADDR` line to stderr once bound (CI's smoke
/// job waits for the port by polling `/healthz`).
pub fn run(cfg: &ServeConfig) -> std::io::Result<()> {
    let server = Server::bind(cfg)?;
    eprintln!(
        "cgte-serve listening on {} (store: {}, {} worker(s))",
        server.addr(),
        cfg.cache_dir.display(),
        cfg.threads.max(1),
    );
    server.join();
    eprintln!("cgte-serve: shutdown complete");
    Ok(())
}

/// How often an idle keep-alive connection re-checks the shutdown flag.
const IDLE_POLL: std::time::Duration = std::time::Duration::from_millis(150);

fn handle_connection(state: &ServerState, stream: TcpStream) {
    // One response = one write; disabling Nagle keeps request/response
    // round trips off the delayed-ACK path.
    let _ = stream.set_nodelay(true);
    let Ok(peer_writer) = stream.try_clone() else {
        return;
    };
    let mut writer = peer_writer;
    let mut reader = BufReader::new(stream);
    loop {
        // Idle wait: poll for the next request with a short read timeout
        // so a keep-alive connection cannot pin a worker past shutdown.
        // `fill_buf` consumes nothing on timeout, so retrying is safe.
        let _ = reader.get_ref().set_read_timeout(Some(IDLE_POLL));
        loop {
            use std::io::BufRead as _;
            match reader.fill_buf() {
                Ok([]) => return, // clean EOF between requests
                Ok(_) => break,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if state.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                }
                Err(_) => return,
            }
        }
        // A request has started arriving: parse it with blocking reads
        // (an actively sending client finishes promptly).
        let _ = reader.get_ref().set_read_timeout(None);
        let req = match http::read_request(&mut reader) {
            Ok(Some(r)) => r,
            Ok(None) => return,
            Err(e) => {
                // Malformed framing: answer 400 once, then hang up.
                let _ =
                    http::write_json_response(&mut writer, 400, &error_body(&e.to_string()), false);
                return;
            }
        };
        state.requests.fetch_add(1, Ordering::Relaxed);
        let keep_alive = req.keep_alive;
        let (status, body) = match route(state, &req) {
            Ok(body) => (200, body),
            Err(e) => (e.status, error_body(&e.msg)),
        };
        if http::write_json_response(&mut writer, status, &body, keep_alive).is_err() {
            return;
        }
        if !keep_alive || state.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

fn route(state: &ServerState, req: &http::Request) -> Result<String, ServeError> {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => Ok(healthz(state)),
        ("GET", ["graphs"]) => Ok(graphs(state)),
        ("POST", ["sessions"]) => open_session(state, &req.body),
        ("POST", ["sessions", id, "ingest"]) => ingest(state, id, &req.body),
        ("GET", ["sessions", id, "estimate"]) => estimate(state, id, req),
        ("DELETE", ["sessions", id]) => close_session(state, id),
        ("POST", ["shutdown"]) => {
            request_shutdown(state);
            Ok("{\"status\":\"shutting down\"}".to_string())
        }
        (_, ["healthz" | "graphs" | "shutdown"]) | (_, ["sessions", ..]) => Err(ServeError {
            status: 405,
            msg: format!("method {} not allowed on {}", req.method, req.path),
        }),
        _ => Err(ServeError::not_found(format!(
            "no route for {} {}",
            req.method, req.path
        ))),
    }
}

fn healthz(state: &ServerState) -> String {
    let sessions = state.sessions.lock().expect("sessions lock poisoned").len();
    format!(
        "{{\"status\":\"ok\",\"graphs\":{},\"sessions\":{sessions},\"loads\":{},\"builds\":{},\"requests\":{},\"threads\":{},\"uptime_secs\":{:.3}}}",
        state.registry.count(),
        state.registry.loads(),
        state.registry.builds(),
        state.requests.load(Ordering::Relaxed),
        state.threads,
        state.started.elapsed().as_secs_f64(),
    )
}

fn graphs(state: &ServerState) -> String {
    let mut out = String::from("{\"graphs\":[");
    for (i, (entry, loaded)) in state.registry.list().into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let parts: Vec<String> = entry
            .summary
            .partitions
            .iter()
            .map(|p| fmt_str(p))
            .collect();
        out.push_str(&format!(
            "{{\"name\":{},\"nodes\":{},\"edges\":{},\"kind\":{},\"key\":{},\"partitions\":[{}],\"loaded\":{loaded}}}",
            fmt_str(&entry.name),
            entry.summary.num_nodes.map_or("null".into(), |n| n.to_string()),
            entry.summary.num_edges.map_or("null".into(), |n| n.to_string()),
            entry.summary.kind.as_deref().map_or("null".into(), fmt_str),
            entry.summary.key.as_deref().map_or("null".into(), fmt_str),
            parts.join(","),
        ));
    }
    out.push_str("]}");
    out
}

// ---------------------------------------------------------------------------
// JSON body helpers over the scenarios parser.

fn parse_body(body: &[u8]) -> Result<Json, ServeError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ServeError::bad_request("request body is not UTF-8"))?;
    if text.trim().is_empty() {
        return Ok(Json::Obj(Vec::new()));
    }
    parse_json(text).map_err(|e| ServeError::bad_request(format!("invalid JSON body: {}", e.msg)))
}

fn body_str(v: &Json, key: &str) -> Result<Option<String>, ServeError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s.clone())),
        Some(other) => Err(ServeError::bad_request(format!(
            "{key} must be a string, got {other:?}"
        ))),
    }
}

fn body_u64(v: &Json, key: &str) -> Result<Option<u64>, ServeError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Num(x)) if *x >= 0.0 && x.fract() == 0.0 => Ok(Some(*x as u64)),
        Some(other) => Err(ServeError::bad_request(format!(
            "{key} must be a non-negative integer, got {other:?}"
        ))),
    }
}

fn open_session(state: &ServerState, body: &[u8]) -> Result<String, ServeError> {
    let v = parse_body(body)?;
    let spec = SessionSpec {
        graph: body_str(&v, "graph")?
            .ok_or_else(|| ServeError::bad_request("missing required field \"graph\""))?,
        partition: body_str(&v, "partition")?,
        sampler: body_str(&v, "sampler")?.unwrap_or_else(|| "rw".to_string()),
        design: body_str(&v, "design")?,
        seed: body_u64(&v, "seed")?.unwrap_or(42),
        burn_in: body_u64(&v, "burn_in")?.unwrap_or(0) as usize,
        thinning: body_u64(&v, "thinning")?.unwrap_or(1) as usize,
    };
    let graph = state.registry.get(&spec.graph)?;
    let id = format!("s{}", state.next_session.fetch_add(1, Ordering::SeqCst));
    let session = Session::open(id.clone(), graph, &spec, state.threads)?;
    let response = session.opened_json();
    state
        .sessions
        .lock()
        .expect("sessions lock poisoned")
        .insert(id, Arc::new(Mutex::new(session)));
    Ok(response)
}

fn get_session(state: &ServerState, id: &str) -> Result<Arc<Mutex<Session>>, ServeError> {
    state
        .sessions
        .lock()
        .expect("sessions lock poisoned")
        .get(id)
        .cloned()
        .ok_or_else(|| ServeError::not_found(format!("unknown session {id:?}")))
}

fn ingest(state: &ServerState, id: &str, body: &[u8]) -> Result<String, ServeError> {
    let v = parse_body(body)?;
    let session = get_session(state, id)?;
    let mut session = session.lock().expect("session lock poisoned");
    let ingested = match (v.get("nodes"), v.get("steps")) {
        (Some(Json::Arr(items)), None) => {
            let mut nodes = Vec::with_capacity(items.len());
            for item in items {
                match item {
                    Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u32::MAX as f64 => {
                        nodes.push(*x as u32)
                    }
                    other => {
                        return Err(ServeError::bad_request(format!(
                            "nodes entries must be non-negative integers, got {other:?}"
                        )))
                    }
                }
            }
            session.ingest_nodes(&nodes)?
        }
        (None, Some(_)) => {
            // `Some(Json::Null)` also lands here and body_u64 maps it to
            // `None` — a typed 422, never an expect/panic (a panicking
            // worker would shrink the pool for the server's lifetime).
            let steps = match body_u64(&v, "steps")? {
                Some(s) => s as usize,
                None => {
                    return Err(ServeError::unprocessable(
                        "steps must be a positive integer",
                    ))
                }
            };
            if steps == 0 {
                return Err(ServeError::unprocessable("steps must be positive"));
            }
            const MAX_STEPS: usize = 10_000_000;
            if steps > MAX_STEPS {
                return Err(ServeError::unprocessable(format!(
                    "steps {steps} exceeds the per-request budget of {MAX_STEPS}"
                )));
            }
            session.ingest_steps(steps)?
        }
        _ => {
            return Err(ServeError::bad_request(
                "body must have exactly one of \"nodes\": [ids…] or \"steps\": n",
            ))
        }
    };
    Ok(format!(
        "{{\"session\":{},\"ingested\":{ingested},\"len\":{}}}",
        fmt_str(id),
        session.len()
    ))
}

fn estimate(state: &ServerState, id: &str, req: &http::Request) -> Result<String, ServeError> {
    let ci = match req.query_value("ci") {
        None => None,
        Some(raw) => {
            let level: f64 = raw
                .parse()
                .map_err(|_| ServeError::bad_request(format!("invalid ci level {raw:?}")))?;
            if !(level > 0.0 && level < 1.0) {
                return Err(ServeError::unprocessable(format!(
                    "ci level must be in (0, 1), got {level}"
                )));
            }
            let reps = match req.query_value("reps") {
                None => DEFAULT_BOOTSTRAP_REPS,
                Some(raw) => raw
                    .parse()
                    .map_err(|_| ServeError::bad_request(format!("invalid reps {raw:?}")))?,
            };
            if reps == 0 || reps > MAX_BOOTSTRAP_REPS {
                return Err(ServeError::unprocessable(format!(
                    "reps must be in 1..={MAX_BOOTSTRAP_REPS}"
                )));
            }
            Some((level, reps))
        }
    };
    let session = get_session(state, id)?;
    let mut session = session.lock().expect("session lock poisoned");
    Ok(session.estimate_json(ci))
}

fn close_session(state: &ServerState, id: &str) -> Result<String, ServeError> {
    match state
        .sessions
        .lock()
        .expect("sessions lock poisoned")
        .remove(id)
    {
        Some(_) => Ok(format!("{{\"session\":{},\"closed\":true}}", fmt_str(id))),
        None => Err(ServeError::not_found(format!("unknown session {id:?}"))),
    }
}
