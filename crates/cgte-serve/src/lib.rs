//! `cgte-serve` — the online category-graph estimation service.
//!
//! The paper's operating model as a long-running process: crawlers stream
//! node samples in over HTTP, category-graph estimates (sizes Eq. (4)/(5),
//! edge weights Eq. (8)/(9), and their Hansen–Hurwitz weighted forms) come
//! out at any prefix, and the server never sees more than the streaming
//! kernel's `O(C²)` sufficient statistics per session. Graphs are served
//! from the `.cgteg` store directory the scenario engine and `cgte ingest`
//! write — a warm cache means the server performs **zero graph builds**,
//! only validated loads.
//!
//! ## Endpoints
//!
//! | Method & path                  | Meaning |
//! |--------------------------------|---------|
//! | `GET /healthz`                 | liveness + counters |
//! | `GET /metrics`                 | Prometheus text exposition |
//! | `GET /graphs`                  | list the store's `.cgteg` entries |
//! | `POST /sessions`               | open a sampling session |
//! | `POST /sessions/{id}/ingest`   | ingest node ids or a walk budget |
//! | `GET /sessions/{id}/estimate`  | current estimates (`?ci=0.95`) |
//! | `POST /sessions/{id}/snapshot` | checkpoint to `{store}/sessions/*.cgtes` |
//! | `GET /sessions/{id}/snapshot`  | download the `.cgtes` bytes |
//! | `POST /sessions/restore`       | rehydrate a session from a snapshot |
//! | `DELETE /sessions/{id}`        | close a session |
//! | `POST /shutdown`               | stop accepting, drain, exit |
//!
//! Sessions are durable: `POST /sessions/{id}/snapshot` writes a
//! versioned, checksummed `.cgtes` file (same section framing as the
//! graph store) holding the resolved spec, the walk RNG state and the
//! observation push log; `POST /sessions/restore` replays it into a fresh
//! session whose estimates **and every future server-side draw** are
//! bit-identical to the original — a process kill between the two loses
//! nothing past the last checkpoint.
//!
//! Transport is a dependency-free HTTP/1.1 subset on
//! `std::net::TcpListener`. On `cfg(cgte_epoll)` platforms (Linux — see
//! `build.rs`) the server is **event-driven**: one loop thread owns every
//! idle connection in non-blocking mode on a vendored epoll poller
//! ([`poll`]), and the bounded worker pool (`--threads`, vendored
//! crossbeam MPMC channel) executes *requests*, not connections — a
//! parsed request is checked out to a worker, the response written, and
//! the connection parks back on the poller. Elsewhere (or under
//! `--event-loop false`) the portable thread-per-connection fallback
//! pins one worker per connection with a read-timeout idle poll. Both
//! engines share one request parser and one router, so responses are
//! byte-identical across them; estimate values are bit-identical to the
//! batch `run_experiment` path on the same sampled sequence: both call
//! the one shared snapshot function (`cgte_core::estimate_stream_into`)
//! over the same streaming kernel (`cgte_sampling::ObservationStream`).

// `deny` rather than `forbid`: the vendored epoll module below is the
// single, explicitly-allowed exception (raw readiness syscalls for the
// event-driven engine); everything else in the crate stays unsafe-free —
// the same shape as `cgte-graph`'s mmap module.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod cluster;
#[cfg(cgte_epoll)]
mod event_loop;
pub mod fault;
pub mod http;
pub mod json;
#[cfg(cgte_epoll)]
#[allow(unsafe_code)]
pub mod poll;
pub mod registry;
pub mod session;

use cgte_sampling::snapshot;
use cgte_scenarios::artifact::{parse_json, Json};
use json::{error_body, fmt_str};
use registry::Registry;
use session::{Session, SessionSpec, DEFAULT_BOOTSTRAP_REPS, MAX_BOOTSTRAP_REPS};
use std::collections::HashMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Process-global counters exposed by `GET /metrics`: transport totals
/// incremented by the hardened cluster client ([`cluster::RetryClient`])
/// and walk-cost totals incremented by session ingest.
pub mod counters {
    use std::sync::atomic::AtomicU64;

    /// Total request retries performed in this process.
    pub static RETRIES_TOTAL: AtomicU64 = AtomicU64::new(0);
    /// Total backoff slept before retries, in microseconds.
    pub static BACKOFF_MICROS_TOTAL: AtomicU64 = AtomicU64::new(0);
    /// Total chain transitions performed by server-side walks.
    pub static WALK_STEPS_TOTAL: AtomicU64 = AtomicU64::new(0);
    /// Total MHRW proposals declined by server-side walks.
    pub static WALK_REJECTIONS_TOTAL: AtomicU64 = AtomicU64::new(0);
}

/// Per-endpoint request accounting: a hit counter plus latency and
/// response-size histograms, all lock-free to record.
///
/// `/healthz` and `/metrics` hits land here under their own label and are
/// deliberately *excluded* from the aggregate `cgte_serve_requests_total`
/// counter, so scrape traffic can never masquerade as service load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Endpoint {
    Healthz,
    Metrics,
    Graphs,
    SessionOpen,
    SessionRestore,
    Ingest,
    Estimate,
    SnapshotSave,
    SnapshotGet,
    SessionClose,
    Shutdown,
    Other,
}

impl Endpoint {
    const COUNT: usize = 12;

    fn index(self) -> usize {
        self as usize
    }

    fn label(self) -> &'static str {
        match self {
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::Graphs => "graphs",
            Endpoint::SessionOpen => "session_open",
            Endpoint::SessionRestore => "session_restore",
            Endpoint::Ingest => "ingest",
            Endpoint::Estimate => "estimate",
            Endpoint::SnapshotSave => "snapshot_save",
            Endpoint::SnapshotGet => "snapshot_get",
            Endpoint::SessionClose => "session_close",
            Endpoint::Shutdown => "shutdown",
            Endpoint::Other => "other",
        }
    }

    /// Classifies a request by the same (method, segments) shape
    /// [`route`] dispatches on; unknown shapes (404/405 answers) land
    /// under `other`.
    fn of(req: &http::Request) -> Endpoint {
        let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
        match (req.method.as_str(), segments.as_slice()) {
            ("GET", ["healthz"]) => Endpoint::Healthz,
            ("GET", ["metrics"]) => Endpoint::Metrics,
            ("GET", ["graphs"]) => Endpoint::Graphs,
            ("POST", ["sessions"]) => Endpoint::SessionOpen,
            ("POST", ["sessions", "restore"]) => Endpoint::SessionRestore,
            ("POST", ["sessions", _, "ingest"]) => Endpoint::Ingest,
            ("GET", ["sessions", _, "estimate"]) => Endpoint::Estimate,
            ("POST", ["sessions", _, "snapshot"]) => Endpoint::SnapshotSave,
            ("GET", ["sessions", _, "snapshot"]) => Endpoint::SnapshotGet,
            ("DELETE", ["sessions", _]) => Endpoint::SessionClose,
            ("POST", ["shutdown"]) => Endpoint::Shutdown,
            _ => Endpoint::Other,
        }
    }
}

/// Every endpoint, in label-index order (for exposition sweeps).
const ALL_ENDPOINTS: [Endpoint; Endpoint::COUNT] = [
    Endpoint::Healthz,
    Endpoint::Metrics,
    Endpoint::Graphs,
    Endpoint::SessionOpen,
    Endpoint::SessionRestore,
    Endpoint::Ingest,
    Endpoint::Estimate,
    Endpoint::SnapshotSave,
    Endpoint::SnapshotGet,
    Endpoint::SessionClose,
    Endpoint::Shutdown,
    Endpoint::Other,
];

#[derive(Debug, Default)]
struct EndpointStats {
    hits: AtomicU64,
    latency_us: cgte_obs::AtomicHistogram,
    resp_bytes: cgte_obs::AtomicHistogram,
}

/// A request-level failure: HTTP status + message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError {
    /// The HTTP status to answer with.
    pub status: u16,
    /// Human-readable cause, returned as `{"error": …}`.
    pub msg: String,
}

impl ServeError {
    /// 400 — malformed request (bad JSON, wrong types).
    pub fn bad_request(msg: impl Into<String>) -> Self {
        ServeError {
            status: 400,
            msg: msg.into(),
        }
    }

    /// 404 — unknown route, graph, partition or session.
    pub fn not_found(msg: impl Into<String>) -> Self {
        ServeError {
            status: 404,
            msg: msg.into(),
        }
    }

    /// 422 — well-formed but unusable (sampler errors, bad parameters).
    pub fn unprocessable(msg: impl Into<String>) -> Self {
        ServeError {
            status: 422,
            msg: msg.into(),
        }
    }

    /// 429 — the `--max-sessions` bound is reached (answered with a
    /// `Retry-After` header).
    pub fn too_many(msg: impl Into<String>) -> Self {
        ServeError {
            status: 429,
            msg: msg.into(),
        }
    }

    /// 500 — server-side failure (unreadable store file).
    pub fn internal(msg: impl Into<String>) -> Self {
        ServeError {
            status: 500,
            msg: msg.into(),
        }
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The `.cgteg` store directory graphs are served from.
    pub cache_dir: PathBuf,
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads handling connections (also bounds the one-time
    /// parallel index build per graph partition).
    pub threads: usize,
    /// How often an idle keep-alive connection re-checks the shutdown
    /// flag, in milliseconds (the poll is a cheap read-timeout wake-up,
    /// but a tight interval busy-spins every idle worker).
    pub idle_poll_ms: u64,
    /// Evict sessions idle longer than this many seconds (lazily, on the
    /// next session-table access). `None` disables eviction.
    pub session_ttl_secs: Option<u64>,
    /// Upper bound on concurrently open sessions; opening past it answers
    /// HTTP 429 with a `Retry-After` header.
    pub max_sessions: usize,
    /// Host graphs through the zero-copy mapped loader (default). All
    /// sessions on a graph share one read-only mapping; estimates are
    /// bit-identical to heap-hosted graphs.
    pub mmap: bool,
    /// Use the event-driven connection engine where compiled in
    /// (`cfg(cgte_epoll)`; default). `false` — or a platform without the
    /// vendored epoll layer — selects the thread-per-connection fallback.
    pub event_loop: bool,
    /// Deadline for reading one request once its first byte has arrived,
    /// in milliseconds; expiry answers 408 and closes the connection (the
    /// slowloris bound). Idle keep-alive connections are unaffected.
    pub request_timeout_ms: u64,
    /// Largest accepted request body in bytes; longer advertised bodies
    /// answer 413 without being read. Clamped to the wire-format hard cap
    /// ([`http::MAX_BODY`]).
    pub max_body_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            cache_dir: PathBuf::from("graph-store"),
            addr: "127.0.0.1:7171".to_string(),
            threads: 4,
            idle_poll_ms: 1000,
            session_ttl_secs: None,
            max_sessions: 1024,
            mmap: true,
            event_loop: true,
            request_timeout_ms: 10_000,
            max_body_bytes: 8 << 20,
        }
    }
}

/// One session-table entry: the session plus its idle clock (milliseconds
/// since server start, updated on every lookup — read without taking the
/// session's own lock so eviction sweeps never block behind an ingest).
struct SessionEntry {
    session: Arc<Mutex<Session>>,
    last_used: AtomicU64,
}

struct ServerState {
    registry: Registry,
    cache_dir: PathBuf,
    sessions: Mutex<HashMap<String, SessionEntry>>,
    next_session: AtomicU64,
    requests: AtomicUsize,
    endpoints: [EndpointStats; Endpoint::COUNT],
    sessions_evicted: AtomicU64,
    snapshots_saved: AtomicU64,
    snapshots_restored: AtomicU64,
    threads: usize,
    idle_poll: Duration,
    session_ttl: Option<Duration>,
    max_sessions: usize,
    request_timeout: Duration,
    max_body: usize,
    event_loop: bool,
    accept_errors: AtomicU64,
    open_connections: AtomicU64,
    request_timeouts: AtomicU64,
    shutdown: AtomicBool,
    addr: SocketAddr,
    started: Instant,
    /// Write end of the event loop's self-pipe: wakes the loop for
    /// shutdown. `None` on the thread-per-connection fallback, which
    /// keeps the connect-to-yourself poke.
    #[cfg(cgte_epoll)]
    waker: Option<Arc<poll::Waker>>,
}

/// Accounts one open connection in the `cgte_serve_open_connections`
/// gauge for exactly as long as the guard lives. The guard travels with
/// the connection through whichever engine owns it, so the gauge is
/// correct no matter where the connection is dropped.
struct OpenConnGuard {
    state: Arc<ServerState>,
}

impl OpenConnGuard {
    fn new(state: &Arc<ServerState>) -> OpenConnGuard {
        state.open_connections.fetch_add(1, Ordering::Relaxed);
        OpenConnGuard {
            state: Arc::clone(state),
        }
    }
}

impl Drop for OpenConnGuard {
    fn drop(&mut self) {
        self.state.open_connections.fetch_sub(1, Ordering::Relaxed);
    }
}

impl ServerState {
    /// Milliseconds since the server started (the session idle clock).
    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// The `Retry-After` hint on a 429: after one TTL some session has
    /// either been closed or become evictable.
    fn retry_after_secs(&self) -> u64 {
        self.session_ttl.map_or(1, |t| t.as_secs().max(1))
    }
}

/// A running server: bound address plus join/shutdown handles.
pub struct Server {
    state: Arc<ServerState>,
    accept: std::thread::JoinHandle<()>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds the listener, spawns the connection engine — event-driven
    /// where compiled in (`cfg(cgte_epoll)`) and enabled, the portable
    /// thread-per-connection pool otherwise — and returns immediately.
    pub fn bind(cfg: &ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        #[cfg(cgte_epoll)]
        if cfg.event_loop {
            // All fallible event-engine setup happens before committing,
            // so a failure (e.g. fd pressure on the poller or pipe)
            // degrades to the fallback engine instead of a dead server.
            if let Ok(setup) = event_setup(&listener) {
                return Ok(Server::bind_event(cfg, listener, addr, setup));
            }
        }
        Ok(Server::bind_fallback(cfg, listener, addr))
    }

    /// The event-driven engine: the loop thread owns the listener and
    /// every parked connection; workers execute parsed requests.
    #[cfg(cgte_epoll)]
    fn bind_event(
        cfg: &ServeConfig,
        listener: TcpListener,
        addr: SocketAddr,
        setup: EventSetup,
    ) -> Server {
        let (poller, wake_rx, waker) = setup;
        let threads = cfg.threads.max(1);
        let mut st = new_state(cfg, addr, true);
        st.waker = Some(Arc::clone(&waker));
        let state = Arc::new(st);
        let (dispatch_tx, dispatch_rx) = crossbeam::channel::unbounded::<event_loop::Job>();
        let (ret_tx, ret_rx) = crossbeam::channel::unbounded::<event_loop::Conn>();
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                let rx = dispatch_rx.clone();
                let ret_tx = ret_tx.clone();
                let waker = Arc::clone(&waker);
                let state = Arc::clone(&state);
                std::thread::spawn(move || event_worker(&state, &rx, &ret_tx, &waker))
            })
            .collect();
        let loop_state = Arc::clone(&state);
        let accept = std::thread::spawn(move || {
            // Dropping `dispatch_tx` on exit disconnects the channel and
            // drains the workers.
            event_loop::run(loop_state, listener, poller, wake_rx, dispatch_tx, ret_rx);
        });
        Server {
            state,
            accept,
            workers,
        }
    }

    /// The portable engine: one worker pinned per connection.
    fn bind_fallback(cfg: &ServeConfig, listener: TcpListener, addr: SocketAddr) -> Server {
        let threads = cfg.threads.max(1);
        let state = Arc::new(new_state(cfg, addr, false));
        let (tx, rx) = crossbeam::channel::unbounded::<(TcpStream, OpenConnGuard)>();
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                let rx = rx.clone();
                let state = Arc::clone(&state);
                std::thread::spawn(move || {
                    while let Ok((stream, guard)) = rx.recv() {
                        handle_connection(&state, stream, guard);
                    }
                })
            })
            .collect();
        let accept_state = Arc::clone(&state);
        let accept = std::thread::spawn(move || {
            // `tx` lives in this thread; dropping it on exit disconnects
            // the channel and drains the workers.
            let mut backoff = ACCEPT_BACKOFF_MIN;
            for stream in listener.incoming() {
                if accept_state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(s) => {
                        backoff = ACCEPT_BACKOFF_MIN;
                        let guard = OpenConnGuard::new(&accept_state);
                        if tx.send((s, guard)).is_err() {
                            break;
                        }
                    }
                    Err(_) => {
                        // Transient accept failure (classically EMFILE):
                        // count it and sleep with a doubling backoff
                        // instead of spinning hot on the error.
                        accept_state.accept_errors.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(ACCEPT_BACKOFF_MAX);
                    }
                }
            }
        });
        Server {
            state,
            accept,
            workers,
        }
    }

    /// The bound socket address.
    pub fn addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Requests shutdown: sets the flag and wakes the connection engine —
    /// a self-pipe write on the event loop, a throwaway connection poke
    /// on the fallback's blocked accept loop.
    pub fn shutdown(&self) {
        request_shutdown(&self.state);
    }

    /// Waits for the connection engine and every worker to exit (i.e.
    /// until a shutdown was requested and all in-flight work finished).
    pub fn join(self) {
        self.accept.join().expect("accept thread panicked");
        for w in self.workers {
            w.join().expect("worker thread panicked");
        }
    }
}

/// Minimum (and post-success reset) sleep after a failed accept.
const ACCEPT_BACKOFF_MIN: Duration = Duration::from_millis(10);
/// Accept backoff doubles up to this cap.
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_secs(1);

/// Everything fallible the event engine needs, created *before* the
/// engine is committed to: the poller (self-pipe and listener already
/// registered, listener switched to non-blocking) plus both pipe ends.
#[cfg(cgte_epoll)]
type EventSetup = (poll::Poller, poll::WakeReceiver, Arc<poll::Waker>);

#[cfg(cgte_epoll)]
fn event_setup(listener: &TcpListener) -> std::io::Result<EventSetup> {
    use std::os::unix::io::AsRawFd as _;
    let poller = poll::Poller::new()?;
    let (wake_rx, waker) = poll::wake_pipe()?;
    poller.add(wake_rx.fd(), event_loop::TOKEN_WAKE)?;
    poller.add(listener.as_raw_fd(), event_loop::TOKEN_LISTENER)?;
    // Last, so an earlier failure leaves the listener untouched for the
    // fallback engine.
    listener.set_nonblocking(true)?;
    Ok((poller, wake_rx, Arc::new(waker)))
}

/// Worker body of the event engine: execute one parsed request, write
/// the response (the "writing" state of the connection machine, with a
/// bounded blocking budget), then park the keep-alive connection back on
/// the event loop via the return channel + self-pipe wake.
#[cfg(cgte_epoll)]
fn event_worker(
    state: &Arc<ServerState>,
    rx: &crossbeam::channel::Receiver<event_loop::Job>,
    ret_tx: &crossbeam::channel::Sender<event_loop::Conn>,
    waker: &poll::Waker,
) {
    while let Ok(event_loop::Job { mut conn, req }) = rx.recv() {
        let keep_alive = req.keep_alive;
        let resp = respond(state, &req);
        if conn.stream.set_nonblocking(false).is_err() {
            continue;
        }
        let _ = conn.stream.set_write_timeout(Some(state.request_timeout));
        let ok = http::write_response(&mut conn.stream, &resp, keep_alive).is_ok();
        if ok
            && keep_alive
            && !state.shutdown.load(Ordering::SeqCst)
            && conn.stream.set_nonblocking(true).is_ok()
            && ret_tx.send(conn).is_ok()
        {
            waker.wake();
        }
        // Any other outcome drops the connection here (its guard keeps
        // the open-connections gauge honest).
    }
}

fn new_state(cfg: &ServeConfig, addr: SocketAddr, event_loop: bool) -> ServerState {
    ServerState {
        registry: Registry::new(&cfg.cache_dir).mmap(cfg.mmap),
        cache_dir: cfg.cache_dir.clone(),
        sessions: Mutex::new(HashMap::new()),
        next_session: AtomicU64::new(0),
        requests: AtomicUsize::new(0),
        endpoints: std::array::from_fn(|_| EndpointStats::default()),
        sessions_evicted: AtomicU64::new(0),
        snapshots_saved: AtomicU64::new(0),
        snapshots_restored: AtomicU64::new(0),
        threads: cfg.threads.max(1),
        idle_poll: Duration::from_millis(cfg.idle_poll_ms.max(1)),
        session_ttl: cfg.session_ttl_secs.map(Duration::from_secs),
        max_sessions: cfg.max_sessions.max(1),
        request_timeout: Duration::from_millis(cfg.request_timeout_ms.max(1)),
        max_body: cfg.max_body_bytes.min(http::MAX_BODY),
        event_loop,
        accept_errors: AtomicU64::new(0),
        open_connections: AtomicU64::new(0),
        request_timeouts: AtomicU64::new(0),
        shutdown: AtomicBool::new(false),
        addr,
        started: Instant::now(),
        #[cfg(cgte_epoll)]
        waker: None,
    }
}

fn request_shutdown(state: &ServerState) {
    state.shutdown.store(true, Ordering::SeqCst);
    // The event engine wakes its loop over the self-pipe …
    #[cfg(cgte_epoll)]
    if let Some(waker) = &state.waker {
        waker.wake();
        return;
    }
    // … the fallback engine unblocks its accept loop with a throwaway
    // connection (accepted or refused, then immediately discarded).
    let _ = TcpStream::connect(state.addr);
}

/// Runs a server in the foreground until shutdown. Prints the grep-able
/// `cgte-serve listening on ADDR` line to stderr once bound (CI's smoke
/// job waits for the port by polling `/healthz`).
pub fn run(cfg: &ServeConfig) -> std::io::Result<()> {
    let server = Server::bind(cfg)?;
    eprintln!(
        "cgte-serve listening on {} (store: {}, {} worker(s), {} engine)",
        server.addr(),
        cfg.cache_dir.display(),
        cfg.threads.max(1),
        if server.state.event_loop {
            "event-loop"
        } else {
            "thread-per-connection"
        },
    );
    server.join();
    eprintln!("cgte-serve: shutdown complete");
    Ok(())
}

/// A `TcpStream` reader enforcing the per-request deadline (the fallback
/// engine's half of the slowloris fix): with a deadline armed, every read
/// is capped at the time remaining and expiry surfaces as `TimedOut`;
/// with no deadline, reads use the idle-poll interval so the keep-alive
/// loop keeps re-checking the shutdown flag.
struct TimedReader {
    stream: TcpStream,
    deadline: Option<Instant>,
    idle_poll: Duration,
}

impl std::io::Read for TimedReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let timeout = match self.deadline {
            None => self.idle_poll,
            Some(d) => {
                let remaining = d.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(std::io::ErrorKind::TimedOut.into());
                }
                remaining.max(Duration::from_millis(1))
            }
        };
        let _ = self.stream.set_read_timeout(Some(timeout));
        self.stream.read(buf)
    }
}

/// The thread-per-connection engine: one worker pinned to the connection
/// for its whole lifetime, polling for the next request on a read
/// timeout.
fn handle_connection(state: &ServerState, stream: TcpStream, guard: OpenConnGuard) {
    // Held for the connection's lifetime: keeps the open-connections
    // gauge exact however this function exits.
    let _guard = guard;
    // One response = one write; disabling Nagle keeps request/response
    // round trips off the delayed-ACK path.
    let _ = stream.set_nodelay(true);
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let _ = writer.set_write_timeout(Some(state.request_timeout));
    let mut reader = BufReader::new(TimedReader {
        stream,
        deadline: None,
        idle_poll: state.idle_poll,
    });
    loop {
        // Idle wait: poll for the next request with a read timeout so a
        // keep-alive connection cannot pin a worker past shutdown.
        // `fill_buf` consumes nothing on timeout, so retrying is safe.
        loop {
            use std::io::BufRead as _;
            match reader.fill_buf() {
                Ok([]) => return, // clean EOF between requests
                Ok(_) => break,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if state.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                }
                Err(_) => return,
            }
        }
        // A request has started arriving: arm the request deadline. A
        // client that stalls mid-request gets 408, never a pinned worker.
        reader.get_mut().deadline = Some(Instant::now() + state.request_timeout);
        let req = match http::read_request_limited(&mut reader, state.max_body) {
            Ok(Some(r)) => r,
            Ok(None) => return,
            Err(http::RequestError::TooLarge { length, max }) => {
                let msg = format!("request body of {length} bytes exceeds the {max} limit");
                let _ = http::write_json_response(&mut writer, 413, &error_body(&msg), false);
                return;
            }
            Err(http::RequestError::TimedOut) => {
                state.request_timeouts.fetch_add(1, Ordering::Relaxed);
                let _ = http::write_json_response(
                    &mut writer,
                    408,
                    &error_body("timed out reading the request"),
                    false,
                );
                return;
            }
            Err(http::RequestError::Malformed(msg)) => {
                // Malformed framing: answer 400 once, then hang up.
                let _ = http::write_json_response(&mut writer, 400, &error_body(&msg), false);
                return;
            }
            Err(http::RequestError::Io(_)) => return,
        };
        reader.get_mut().deadline = None;
        let keep_alive = req.keep_alive;
        let resp = respond(state, &req);
        if http::write_response(&mut writer, &resp, keep_alive).is_err() {
            return;
        }
        if !keep_alive || state.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Routes one request and records every per-request metric (aggregate
/// counter, span, per-endpoint hit/latency/size) — the single execution
/// path shared by both connection engines, which is what makes their
/// responses byte-identical by construction.
fn respond(state: &ServerState, req: &http::Request) -> http::Response {
    let endpoint = Endpoint::of(req);
    // Scrape/liveness traffic is accounted under its own endpoint label
    // only, never in the aggregate request counter.
    if !matches!(endpoint, Endpoint::Healthz | Endpoint::Metrics) {
        state.requests.fetch_add(1, Ordering::Relaxed);
    }
    let handle_started = Instant::now();
    let resp = {
        let mut span = cgte_obs::span(cgte_obs::LEVEL_COARSE, "serve.request");
        span.field_str("endpoint", endpoint.label());
        let resp = match route(state, req) {
            Ok(resp) => resp,
            Err(e) => {
                let mut resp = http::Response {
                    status: e.status,
                    content_type: "application/json",
                    headers: Vec::new(),
                    body: error_body(&e.msg).into_bytes(),
                };
                if e.status == 429 {
                    resp.headers
                        .push(("Retry-After", state.retry_after_secs().to_string()));
                }
                resp
            }
        };
        span.field_u64("status", resp.status as u64);
        span.field_u64("bytes", resp.body.len() as u64);
        resp
    };
    let stats = &state.endpoints[endpoint.index()];
    stats.hits.fetch_add(1, Ordering::Relaxed);
    stats
        .latency_us
        .record(handle_started.elapsed().as_micros() as u64);
    stats.resp_bytes.record(resp.body.len() as u64);
    resp
}

fn route(state: &ServerState, req: &http::Request) -> Result<http::Response, ServeError> {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => Ok(http::Response::json(healthz(state))),
        ("GET", ["metrics"]) => Ok(http::Response::text(metrics(state))),
        ("GET", ["graphs"]) => Ok(http::Response::json(graphs(state))),
        ("POST", ["sessions"]) => open_session(state, &req.body).map(http::Response::json),
        ("POST", ["sessions", "restore"]) => {
            restore_session(state, &req.body).map(http::Response::json)
        }
        ("POST", ["sessions", id, "ingest"]) => {
            ingest(state, id, &req.body).map(http::Response::json)
        }
        ("GET", ["sessions", id, "estimate"]) => estimate(state, id, req).map(http::Response::json),
        ("POST", ["sessions", id, "snapshot"]) => {
            snapshot_save(state, id, req).map(http::Response::json)
        }
        ("GET", ["sessions", id, "snapshot"]) => {
            snapshot_download(state, id).map(http::Response::bytes)
        }
        ("DELETE", ["sessions", id]) => close_session(state, id).map(http::Response::json),
        ("POST", ["shutdown"]) => {
            request_shutdown(state);
            Ok(http::Response::json(
                "{\"status\":\"shutting down\"}".into(),
            ))
        }
        (_, ["healthz" | "metrics" | "graphs" | "shutdown"]) | (_, ["sessions", ..]) => {
            Err(ServeError {
                status: 405,
                msg: format!("method {} not allowed on {}", req.method, req.path),
            })
        }
        _ => Err(ServeError::not_found(format!(
            "no route for {} {}",
            req.method, req.path
        ))),
    }
}

fn healthz(state: &ServerState) -> String {
    evict_expired(state);
    let sessions = state.sessions.lock().expect("sessions lock poisoned").len();
    format!(
        "{{\"status\":\"ok\",\"graphs\":{},\"sessions\":{sessions},\"loads\":{},\"builds\":{},\"requests\":{},\"threads\":{},\"connections\":{},\"event_loop\":{},\"uptime_secs\":{:.3}}}",
        state.registry.count(),
        state.registry.loads(),
        state.registry.builds(),
        state.requests.load(Ordering::Relaxed),
        state.threads,
        state.open_connections.load(Ordering::Relaxed),
        state.event_loop,
        state.started.elapsed().as_secs_f64(),
    )
}

/// `GET /metrics` — Prometheus text exposition format, one family per
/// counter the service keeps anyway (plus the process-global transport
/// retry totals the hardened cluster client maintains).
fn metrics(state: &ServerState) -> String {
    use std::fmt::Write as _;
    evict_expired(state);
    let sessions = state.sessions.lock().expect("sessions lock poisoned").len();
    let mut out = String::with_capacity(2048);
    let mut emit = |name: &str, kind: &str, help: &str, value: String| {
        let _ = write!(
            out,
            "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}\n"
        );
    };
    emit(
        "cgte_serve_sessions_active",
        "gauge",
        "Currently open sessions.",
        sessions.to_string(),
    );
    emit(
        "cgte_serve_sessions_created_total",
        "counter",
        "Sessions ever opened or restored.",
        state.next_session.load(Ordering::Relaxed).to_string(),
    );
    emit(
        "cgte_serve_sessions_evicted_total",
        "counter",
        "Sessions evicted by the idle TTL.",
        state.sessions_evicted.load(Ordering::Relaxed).to_string(),
    );
    emit(
        "cgte_serve_requests_total",
        "counter",
        "HTTP requests handled.",
        state.requests.load(Ordering::Relaxed).to_string(),
    );
    emit(
        "cgte_serve_open_connections",
        "gauge",
        "Connections currently held open (idle, parked, or in-flight).",
        state.open_connections.load(Ordering::Relaxed).to_string(),
    );
    emit(
        "cgte_serve_accept_errors_total",
        "counter",
        "Accept failures (e.g. EMFILE), each followed by a backoff sleep.",
        state.accept_errors.load(Ordering::Relaxed).to_string(),
    );
    emit(
        "cgte_serve_request_timeouts_total",
        "counter",
        "Requests answered 408 because the read deadline expired.",
        state.request_timeouts.load(Ordering::Relaxed).to_string(),
    );
    emit(
        "cgte_serve_graph_loads_total",
        "counter",
        "Graphs loaded from the .cgteg store.",
        state.registry.loads().to_string(),
    );
    emit(
        "cgte_serve_graph_builds_total",
        "counter",
        "Graph builds performed by the server (stays 0: warm cache only).",
        state.registry.builds().to_string(),
    );
    emit(
        "cgte_serve_snapshots_saved_total",
        "counter",
        "Session snapshots written to the store.",
        state.snapshots_saved.load(Ordering::Relaxed).to_string(),
    );
    emit(
        "cgte_serve_snapshots_restored_total",
        "counter",
        "Sessions rehydrated from snapshots.",
        state.snapshots_restored.load(Ordering::Relaxed).to_string(),
    );
    emit(
        "cgte_client_retries_total",
        "counter",
        "Transport retries performed by this process's cluster client.",
        counters::RETRIES_TOTAL.load(Ordering::Relaxed).to_string(),
    );
    emit(
        "cgte_client_backoff_seconds_total",
        "counter",
        "Total backoff slept before retries.",
        format!(
            "{:.6}",
            counters::BACKOFF_MICROS_TOTAL.load(Ordering::Relaxed) as f64 / 1e6
        ),
    );
    emit(
        "cgte_serve_walk_steps_total",
        "counter",
        "Chain transitions performed by server-side walks.",
        counters::WALK_STEPS_TOTAL
            .load(Ordering::Relaxed)
            .to_string(),
    );
    emit(
        "cgte_serve_walk_rejections_total",
        "counter",
        "MHRW proposals declined by server-side walks.",
        counters::WALK_REJECTIONS_TOTAL
            .load(Ordering::Relaxed)
            .to_string(),
    );
    emit(
        "cgte_serve_uptime_seconds",
        "gauge",
        "Seconds since the server started.",
        format!("{:.3}", state.started.elapsed().as_secs_f64()),
    );
    // Per-endpoint accounting. Scrape traffic (healthz/metrics) appears
    // only here, never in cgte_serve_requests_total.
    let _ = write!(
        out,
        "# HELP cgte_serve_endpoint_requests_total Requests by endpoint.\n# TYPE cgte_serve_endpoint_requests_total counter\n"
    );
    for ep in ALL_ENDPOINTS {
        let hits = state.endpoints[ep.index()].hits.load(Ordering::Relaxed);
        if hits > 0 {
            let _ = writeln!(
                out,
                "cgte_serve_endpoint_requests_total{{endpoint=\"{}\"}} {hits}",
                ep.label()
            );
        }
    }
    emit_endpoint_histogram(
        &mut out,
        state,
        "cgte_serve_request_duration_seconds",
        "Request handling latency by endpoint (log2 buckets).",
        1e-6,
        |s| &s.latency_us,
    );
    emit_endpoint_histogram(
        &mut out,
        state,
        "cgte_serve_response_size_bytes",
        "Response body size by endpoint (log2 buckets).",
        1.0,
        |s| &s.resp_bytes,
    );
    out
}

/// Writes one histogram family in Prometheus exposition form: `# HELP` /
/// `# TYPE` once, then cumulative `_bucket{endpoint=…,le=…}` series plus
/// `_sum`/`_count` for every endpoint with observations.
///
/// The log2 bucket layout is sparse-friendly: leading empty buckets and
/// the saturated tail are elided (the `+Inf` bucket always closes the
/// series), keeping the exposition compact without breaking cumulative
/// monotonicity.
fn emit_endpoint_histogram(
    out: &mut String,
    state: &ServerState,
    name: &str,
    help: &str,
    scale: f64,
    select: impl Fn(&EndpointStats) -> &cgte_obs::AtomicHistogram,
) {
    use std::fmt::Write as _;
    let _ = write!(out, "# HELP {name} {help}\n# TYPE {name} histogram\n");
    let mut snap = cgte_obs::Histogram::new();
    for ep in ALL_ENDPOINTS {
        select(&state.endpoints[ep.index()]).snapshot_into(&mut snap);
        let total = snap.count();
        if total == 0 {
            continue;
        }
        let label = ep.label();
        let counts = snap.counts();
        let lo = counts.iter().position(|&c| c > 0).unwrap_or(0);
        let mut cumulative = 0u64;
        for (i, &c) in counts.iter().enumerate().skip(lo) {
            cumulative += c;
            let le = cgte_obs::hist::bucket_upper(i) as f64 * scale;
            let _ = writeln!(
                out,
                "{name}_bucket{{endpoint=\"{label}\",le=\"{le}\"}} {cumulative}"
            );
            if cumulative == total {
                break;
            }
        }
        let _ = write!(
            out,
            "{name}_bucket{{endpoint=\"{label}\",le=\"+Inf\"}} {total}\n{name}_sum{{endpoint=\"{label}\"}} {}\n{name}_count{{endpoint=\"{label}\"}} {total}\n",
            snap.sum() as f64 * scale
        );
    }
}

fn graphs(state: &ServerState) -> String {
    let mut out = String::from("{\"graphs\":[");
    for (i, (entry, loaded)) in state.registry.list().into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let parts: Vec<String> = entry
            .summary
            .partitions
            .iter()
            .map(|p| fmt_str(p))
            .collect();
        out.push_str(&format!(
            "{{\"name\":{},\"nodes\":{},\"edges\":{},\"kind\":{},\"key\":{},\"partitions\":[{}],\"loaded\":{loaded}}}",
            fmt_str(&entry.name),
            entry.summary.num_nodes.map_or("null".into(), |n| n.to_string()),
            entry.summary.num_edges.map_or("null".into(), |n| n.to_string()),
            entry.summary.kind.as_deref().map_or("null".into(), fmt_str),
            entry.summary.key.as_deref().map_or("null".into(), fmt_str),
            parts.join(","),
        ));
    }
    out.push_str("]}");
    out
}

// ---------------------------------------------------------------------------
// JSON body helpers over the scenarios parser.

fn parse_body(body: &[u8]) -> Result<Json, ServeError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ServeError::bad_request("request body is not UTF-8"))?;
    if text.trim().is_empty() {
        return Ok(Json::Obj(Vec::new()));
    }
    parse_json(text).map_err(|e| ServeError::bad_request(format!("invalid JSON body: {}", e.msg)))
}

fn body_str(v: &Json, key: &str) -> Result<Option<String>, ServeError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s.clone())),
        Some(other) => Err(ServeError::bad_request(format!(
            "{key} must be a string, got {other:?}"
        ))),
    }
}

fn body_u64(v: &Json, key: &str) -> Result<Option<u64>, ServeError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Num(x)) if *x >= 0.0 && x.fract() == 0.0 => Ok(Some(*x as u64)),
        Some(other) => Err(ServeError::bad_request(format!(
            "{key} must be a non-negative integer, got {other:?}"
        ))),
    }
}

/// Lazily sweeps the session table: drops every session idle past the
/// TTL. Entries whose `Arc` is held elsewhere (a request is mid-flight on
/// them) are never dropped — in-use is the opposite of idle.
fn evict_expired(state: &ServerState) {
    let Some(ttl) = state.session_ttl else { return };
    let ttl_ms = ttl.as_millis() as u64;
    let now = state.now_ms();
    let mut map = state.sessions.lock().expect("sessions lock poisoned");
    let before = map.len();
    map.retain(|_, e| {
        Arc::strong_count(&e.session) > 1
            || now.saturating_sub(e.last_used.load(Ordering::Relaxed)) <= ttl_ms
    });
    let evicted = (before - map.len()) as u64;
    if evicted > 0 {
        state.sessions_evicted.fetch_add(evicted, Ordering::Relaxed);
        cgte_obs::event(
            cgte_obs::LEVEL_DETAIL,
            "serve.session_evict",
            &[("count", cgte_obs::Value::U64(evicted))],
        );
    }
}

/// Registers a freshly opened/restored session, enforcing the
/// `--max-sessions` bound (a full table after eviction is a 429).
fn insert_session(state: &ServerState, id: String, session: Session) -> Result<(), ServeError> {
    evict_expired(state);
    let mut map = state.sessions.lock().expect("sessions lock poisoned");
    if map.len() >= state.max_sessions {
        return Err(ServeError::too_many(format!(
            "session limit reached ({} open, max {})",
            map.len(),
            state.max_sessions
        )));
    }
    map.insert(
        id,
        SessionEntry {
            session: Arc::new(Mutex::new(session)),
            last_used: AtomicU64::new(state.now_ms()),
        },
    );
    Ok(())
}

fn open_session(state: &ServerState, body: &[u8]) -> Result<String, ServeError> {
    let v = parse_body(body)?;
    let spec = SessionSpec {
        graph: body_str(&v, "graph")?
            .ok_or_else(|| ServeError::bad_request("missing required field \"graph\""))?,
        partition: body_str(&v, "partition")?,
        sampler: body_str(&v, "sampler")?.unwrap_or_else(|| "rw".to_string()),
        design: body_str(&v, "design")?,
        seed: body_u64(&v, "seed")?.unwrap_or(42),
        burn_in: body_u64(&v, "burn_in")?.unwrap_or(0) as usize,
        thinning: body_u64(&v, "thinning")?.unwrap_or(1) as usize,
    };
    // Cheap bound pre-check before the potentially expensive open (first
    // use of a partition builds its neighbor-category index); the
    // authoritative check is in `insert_session`.
    evict_expired(state);
    if state.sessions.lock().expect("sessions lock poisoned").len() >= state.max_sessions {
        return Err(ServeError::too_many(format!(
            "session limit reached (max {})",
            state.max_sessions
        )));
    }
    let graph = state.registry.get(&spec.graph)?;
    let id = format!("s{}", state.next_session.fetch_add(1, Ordering::SeqCst));
    let session = Session::open(id.clone(), graph, &spec, state.threads)?;
    let response = session.opened_json();
    cgte_obs::event(
        cgte_obs::LEVEL_DETAIL,
        "serve.session_open",
        &[
            ("session", cgte_obs::Value::Str(&id)),
            ("graph", cgte_obs::Value::Str(&spec.graph)),
            ("sampler", cgte_obs::Value::Str(&spec.sampler)),
        ],
    );
    insert_session(state, id, session)?;
    Ok(response)
}

fn get_session(state: &ServerState, id: &str) -> Result<Arc<Mutex<Session>>, ServeError> {
    evict_expired(state);
    let map = state.sessions.lock().expect("sessions lock poisoned");
    match map.get(id) {
        Some(e) => {
            e.last_used.store(state.now_ms(), Ordering::Relaxed);
            Ok(Arc::clone(&e.session))
        }
        None => Err(ServeError::not_found(format!("unknown session {id:?}"))),
    }
}

fn ingest(state: &ServerState, id: &str, body: &[u8]) -> Result<String, ServeError> {
    let v = parse_body(body)?;
    let session = get_session(state, id)?;
    let mut session = session.lock().expect("session lock poisoned");
    let ingested = match (v.get("nodes"), v.get("steps")) {
        (Some(Json::Arr(items)), None) => {
            let mut nodes = Vec::with_capacity(items.len());
            for item in items {
                match item {
                    Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u32::MAX as f64 => {
                        nodes.push(*x as u32)
                    }
                    other => {
                        return Err(ServeError::bad_request(format!(
                            "nodes entries must be non-negative integers, got {other:?}"
                        )))
                    }
                }
            }
            session.ingest_nodes(&nodes)?
        }
        (None, Some(_)) => {
            // `Some(Json::Null)` also lands here and body_u64 maps it to
            // `None` — a typed 422, never an expect/panic (a panicking
            // worker would shrink the pool for the server's lifetime).
            let steps = match body_u64(&v, "steps")? {
                Some(s) => s as usize,
                None => {
                    return Err(ServeError::unprocessable(
                        "steps must be a positive integer",
                    ))
                }
            };
            if steps == 0 {
                return Err(ServeError::unprocessable("steps must be positive"));
            }
            const MAX_STEPS: usize = 10_000_000;
            if steps > MAX_STEPS {
                return Err(ServeError::unprocessable(format!(
                    "steps {steps} exceeds the per-request budget of {MAX_STEPS}"
                )));
            }
            session.ingest_steps(steps)?
        }
        _ => {
            return Err(ServeError::bad_request(
                "body must have exactly one of \"nodes\": [ids…] or \"steps\": n",
            ))
        }
    };
    Ok(format!(
        "{{\"session\":{},\"ingested\":{ingested},\"len\":{}}}",
        fmt_str(id),
        session.len()
    ))
}

fn estimate(state: &ServerState, id: &str, req: &http::Request) -> Result<String, ServeError> {
    let ci = match req.query_value("ci") {
        None => None,
        Some(raw) => {
            let level: f64 = raw
                .parse()
                .map_err(|_| ServeError::bad_request(format!("invalid ci level {raw:?}")))?;
            if !(level > 0.0 && level < 1.0) {
                return Err(ServeError::unprocessable(format!(
                    "ci level must be in (0, 1), got {level}"
                )));
            }
            let reps = match req.query_value("reps") {
                None => DEFAULT_BOOTSTRAP_REPS,
                Some(raw) => raw
                    .parse()
                    .map_err(|_| ServeError::bad_request(format!("invalid reps {raw:?}")))?,
            };
            if reps == 0 || reps > MAX_BOOTSTRAP_REPS {
                return Err(ServeError::unprocessable(format!(
                    "reps must be in 1..={MAX_BOOTSTRAP_REPS}"
                )));
            }
            Some((level, reps))
        }
    };
    let session = get_session(state, id)?;
    let mut session = session.lock().expect("session lock poisoned");
    Ok(session.estimate_json(ci))
}

fn close_session(state: &ServerState, id: &str) -> Result<String, ServeError> {
    match state
        .sessions
        .lock()
        .expect("sessions lock poisoned")
        .remove(id)
    {
        Some(_) => {
            cgte_obs::event(
                cgte_obs::LEVEL_DETAIL,
                "serve.session_close",
                &[("session", cgte_obs::Value::Str(id))],
            );
            Ok(format!("{{\"session\":{},\"closed\":true}}", fmt_str(id)))
        }
        None => Err(ServeError::not_found(format!("unknown session {id:?}"))),
    }
}

// ---------------------------------------------------------------------------
// Durable session snapshots.

/// Validates a snapshot file stem: a flat name in the store's `sessions/`
/// directory, never a path. The charset (no separators) plus the no-dot
/// prefix rule make traversal (`../…`) unrepresentable.
fn sanitize_snapshot_name(name: &str) -> Result<&str, ServeError> {
    let ok = !name.is_empty()
        && name.len() <= 128
        && !name.starts_with('.')
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.'));
    if ok {
        Ok(name)
    } else {
        Err(ServeError::bad_request(format!(
            "invalid snapshot name {name:?} (letters, digits, '-', '_', '.'; no leading '.')"
        )))
    }
}

/// Where a named snapshot lives: `{cache_dir}/sessions/{name}.cgtes`.
fn snapshot_path(state: &ServerState, name: &str) -> PathBuf {
    state
        .cache_dir
        .join("sessions")
        .join(format!("{name}.cgtes"))
}

/// `POST /sessions/{id}/snapshot` — checkpoints the session to the cache
/// dir (atomically: temp file + rename, so a crash mid-write can never
/// leave a half-snapshot under the final name). `?name=…` overrides the
/// file stem (default: the session id).
fn snapshot_save(state: &ServerState, id: &str, req: &http::Request) -> Result<String, ServeError> {
    let name = sanitize_snapshot_name(req.query_value("name").unwrap_or(id))?.to_string();
    let session = get_session(state, id)?;
    let (bytes, len) = {
        let session = session.lock().expect("session lock poisoned");
        (session.snapshot_bytes(), session.len())
    };
    let path = snapshot_path(state, &name);
    let dir = path.parent().expect("snapshot path has a parent");
    std::fs::create_dir_all(dir)
        .map_err(|e| ServeError::internal(format!("cannot create {}: {e}", dir.display())))?;
    let tmp = dir.join(format!(".{name}.cgtes.tmp"));
    std::fs::write(&tmp, &bytes)
        .map_err(|e| ServeError::internal(format!("cannot write {}: {e}", tmp.display())))?;
    std::fs::rename(&tmp, &path)
        .map_err(|e| ServeError::internal(format!("cannot rename to {}: {e}", path.display())))?;
    state.snapshots_saved.fetch_add(1, Ordering::Relaxed);
    cgte_obs::event(
        cgte_obs::LEVEL_DETAIL,
        "serve.snapshot_save",
        &[
            ("session", cgte_obs::Value::Str(id)),
            ("name", cgte_obs::Value::Str(&name)),
            ("bytes", cgte_obs::Value::U64(bytes.len() as u64)),
        ],
    );
    Ok(format!(
        "{{\"session\":{},\"snapshot\":{},\"bytes\":{},\"len\":{len}}}",
        fmt_str(id),
        fmt_str(&name),
        bytes.len(),
    ))
}

/// `GET /sessions/{id}/snapshot` — the `.cgtes` bytes over the wire (the
/// coordinator checkpoints remote shards without sharing a filesystem).
fn snapshot_download(state: &ServerState, id: &str) -> Result<Vec<u8>, ServeError> {
    let session = get_session(state, id)?;
    let session = session.lock().expect("session lock poisoned");
    Ok(session.snapshot_bytes())
}

/// `POST /sessions/restore` — rehydrates a session under a fresh id.
/// The body is either raw `.cgtes` bytes (magic-sniffed) or JSON
/// `{"snapshot": name}` naming a file saved by `snapshot_save`.
fn restore_session(state: &ServerState, body: &[u8]) -> Result<String, ServeError> {
    let from_disk;
    let bytes: &[u8] = if body.starts_with(snapshot::MAGIC) {
        body
    } else {
        let v = parse_body(body)?;
        let name = body_str(&v, "snapshot")?.ok_or_else(|| {
            ServeError::bad_request("body must be raw .cgtes bytes or {\"snapshot\": \"name\"}")
        })?;
        let path = snapshot_path(state, sanitize_snapshot_name(&name)?);
        from_disk = std::fs::read(&path)
            .map_err(|e| ServeError::not_found(format!("cannot read snapshot {name:?}: {e}")))?;
        &from_disk
    };
    let container = snapshot::read_snapshot(bytes)
        .map_err(|e| ServeError::unprocessable(format!("invalid snapshot: {e}")))?;
    let graph_name = Session::snapshot_graph_name(&container)?;
    let graph = state.registry.get(&graph_name)?;
    let id = format!("s{}", state.next_session.fetch_add(1, Ordering::SeqCst));
    let session = Session::restore(id.clone(), graph, &container, state.threads)?;
    let len = session.len();
    let opened = session.opened_json();
    cgte_obs::event(
        cgte_obs::LEVEL_DETAIL,
        "serve.session_restore",
        &[
            ("session", cgte_obs::Value::Str(&id)),
            ("graph", cgte_obs::Value::Str(&graph_name)),
            ("len", cgte_obs::Value::U64(len as u64)),
        ],
    );
    insert_session(state, id, session)?;
    state.snapshots_restored.fetch_add(1, Ordering::Relaxed);
    // `opened_json` ends with '}': splice the restore facts in.
    Ok(format!(
        "{},\"restored\":true,\"len\":{len}}}",
        &opened[..opened.len() - 1]
    ))
}
