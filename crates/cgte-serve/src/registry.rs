//! The graph registry: named `.cgteg` entries in the store directory
//! (`--cache-dir`), loaded lazily and shared across sessions.
//!
//! The directory is the same disk tier the scenario engine's
//! `ResourceCache` writes and `cgte ingest` targets — entries are listed
//! by file stem via `cgte_scenarios::cache::disk_entries` without loading
//! any CSR payload, and a graph is materialized (with **zero** graph
//! builds, ever — the server only loads) on the first session that opens
//! it. Each (graph, partition) pair lazily builds one shared
//! [`NeighborCategoryIndex`], the expensive half of an
//! [`ObservationContext`](cgte_sampling::ObservationContext), chunked
//! across the worker count and recombined through the index's bit-exact
//! `merge`.

use crate::ServeError;
use cgte_graph::store::{LoadedStore, Loader, Validate};
use cgte_graph::{Graph, NodeId, Partition};
use cgte_sampling::NeighborCategoryIndex;
use cgte_scenarios::cache::{disk_entries, DiskEntry};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A loaded graph with its named partitions and per-partition shared
/// neighbor-category indexes.
pub struct LoadedGraph {
    /// The registry name (file stem).
    pub name: String,
    /// The CSR graph.
    pub graph: Graph,
    /// Named partitions, in file order.
    pub partitions: Vec<(String, Partition)>,
    indexes: Vec<OnceLock<Arc<NeighborCategoryIndex>>>,
}

impl LoadedGraph {
    /// Index of the named partition.
    pub fn partition_idx(&self, name: &str) -> Option<usize> {
        self.partitions.iter().position(|(n, _)| n == name)
    }

    /// The shared neighbor-category index of partition `i`, building it on
    /// first use. The `O(E + N)` build is chunked over `threads` workers
    /// (node ranges, recombined with the index's bit-exact `merge`), so a
    /// million-node graph's first session pays the cost once and every
    /// later session gets an `Arc` clone.
    pub fn index(&self, i: usize, threads: usize) -> Arc<NeighborCategoryIndex> {
        Arc::clone(self.indexes[i].get_or_init(|| {
            let p = &self.partitions[i].1;
            Arc::new(build_index_parallel(&self.graph, p, threads))
        }))
    }
}

/// Builds a [`NeighborCategoryIndex`] over node-range chunks in parallel
/// and merges them in order — bit-identical to the serial build for every
/// thread count (integral data; asserted by the index's `merge` contract
/// and covered in the merge-law tests).
pub fn build_index_parallel(g: &Graph, p: &Partition, threads: usize) -> NeighborCategoryIndex {
    let n = g.num_nodes() as NodeId;
    let threads = threads.max(1).min(n.max(1) as usize);
    if threads == 1 || n == 0 {
        return NeighborCategoryIndex::build(g, p);
    }
    let chunk = n.div_ceil(threads as NodeId);
    let bounds: Vec<(NodeId, NodeId)> = (0..threads as NodeId)
        .map(|t| ((t * chunk).min(n), ((t + 1) * chunk).min(n)))
        .collect();
    let shards = crossbeam::scope(|scope| {
        let handles: Vec<_> = bounds
            .iter()
            .map(|&(lo, hi)| scope.spawn(move |_| NeighborCategoryIndex::build_range(g, p, lo, hi)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("index shard builder panicked"))
            .collect::<Vec<_>>()
    })
    .expect("crossbeam scope failed");
    let mut iter = shards.into_iter();
    let mut index = iter.next().expect("at least one shard");
    for shard in iter {
        index.merge(&shard);
    }
    index
}

/// The named-graph registry over one store directory.
pub struct Registry {
    dir: PathBuf,
    mmap: bool,
    loaded: Mutex<HashMap<String, Arc<LoadedGraph>>>,
    loads: AtomicUsize,
    /// Graph *constructions*. The registry has no build path — it only
    /// loads `.cgteg` files — so this stays 0 by construction; it exists
    /// as a real counter (reported by `/healthz`, asserted `== 0` in CI)
    /// so that any future code path that does build a graph here must
    /// bump it and will trip the zero-builds contract visibly.
    builds: AtomicUsize,
}

impl Registry {
    /// A registry over `dir` (created lazily by whoever writes it; a
    /// missing directory just lists no graphs). Graphs are hosted through
    /// the zero-copy mapped loader by default — every session that opens a
    /// graph shares one `Arc`'d [`LoadedGraph`], so N sessions on a mapped
    /// graph share one read-only mapping; [`Registry::mmap`] opts back
    /// into heap decoding.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Registry {
            dir: dir.into(),
            mmap: true,
            loaded: Mutex::new(HashMap::new()),
            loads: AtomicUsize::new(0),
            builds: AtomicUsize::new(0),
        }
    }

    /// Enables or disables the mapped load path (default on). Estimates
    /// are bit-identical either way; this only changes how CSR payloads
    /// are held in memory.
    pub fn mmap(mut self, on: bool) -> Self {
        self.mmap = on;
        self
    }

    /// The store directory.
    pub fn dir(&self) -> &PathBuf {
        &self.dir
    }

    /// Number of graphs loaded from disk so far.
    pub fn loads(&self) -> usize {
        self.loads.load(Ordering::SeqCst)
    }

    /// Number of graphs *built* (see the field docs: structurally 0).
    pub fn builds(&self) -> usize {
        self.builds.load(Ordering::SeqCst)
    }

    /// Number of `.cgteg` entries in the store directory — a directory
    /// listing only, no file contents touched (cheap enough for a
    /// per-request health check).
    pub fn count(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|rd| {
                rd.flatten()
                    .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some("cgteg"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Lists the directory's `.cgteg` entries (rescanned per call, so
    /// newly ingested files appear without a restart) plus whether each is
    /// currently loaded.
    pub fn list(&self) -> Vec<(DiskEntry, bool)> {
        let loaded = self.loaded.lock().expect("registry lock poisoned");
        disk_entries(&self.dir)
            .into_iter()
            .map(|e| {
                let is_loaded = loaded.contains_key(&e.name);
                (e, is_loaded)
            })
            .collect()
    }

    /// The named graph, loading it from its `.cgteg` on first use. Load
    /// goes through full structural validation (user-supplied files must
    /// not be able to violate CSR invariants downstream).
    pub fn get(&self, name: &str) -> Result<Arc<LoadedGraph>, ServeError> {
        if let Some(g) = self
            .loaded
            .lock()
            .expect("registry lock poisoned")
            .get(name)
        {
            return Ok(Arc::clone(g));
        }
        // Load outside the map lock: a million-node load takes a second,
        // and other sessions must not stall behind it. Two concurrent
        // first-opens may both load; the second insert wins the race and
        // the loser's copy is dropped — wasteful but correct, and rare.
        let entry = disk_entries(&self.dir)
            .into_iter()
            .find(|e| e.name == name)
            .ok_or_else(|| {
                ServeError::not_found(format!("unknown graph {name:?} (see GET /graphs)"))
            })?;
        let LoadedStore {
            graph,
            rest: container,
        } = Loader::open(&entry.path)
            .validate(Validate::Full)
            .mmap(self.mmap)
            .load()
            .map_err(|e| ServeError::internal(format!("cannot load {:?}: {e}", entry.path)))?;
        let mut partitions = Vec::new();
        for (sec_name, _, _) in &entry.summary.sections {
            if let Some(pname) = sec_name.strip_prefix("part.") {
                if let Some(p) = cgte_graph::store::partition_from_container(
                    &container,
                    pname,
                    graph.num_nodes(),
                )
                .map_err(|e| {
                    ServeError::internal(format!("invalid partition {pname:?} in {name:?}: {e}"))
                })? {
                    partitions.push((pname.to_string(), p));
                }
            }
        }
        let indexes = partitions.iter().map(|_| OnceLock::new()).collect();
        let lg = Arc::new(LoadedGraph {
            name: name.to_string(),
            graph,
            partitions,
            indexes,
        });
        self.loads.fetch_add(1, Ordering::SeqCst);
        eprintln!(
            "serve: loaded graph {name:?} ({} nodes, {} edges, {} partition(s), {})",
            lg.graph.num_nodes(),
            lg.graph.num_edges(),
            lg.partitions.len(),
            if lg.graph.is_mapped() {
                "mapped"
            } else {
                "heap"
            }
        );
        self.loaded
            .lock()
            .expect("registry lock poisoned")
            .entry(name.to_string())
            .or_insert_with(|| Arc::clone(&lg));
        Ok(lg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgte_graph::store::{graph_sections, partition_section, Container, Section};
    use cgte_graph::GraphBuilder;
    use std::fs::File;
    use std::io::{BufWriter, Write as _};

    fn write_demo(dir: &std::path::Path, name: &str) {
        let g = GraphBuilder::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let p = Partition::from_assignments(vec![0, 0, 1, 1], 2).unwrap();
        let mut c = Container::new();
        c.push(Section::string("meta.kind", "graph"));
        for s in graph_sections(&g) {
            c.push(s);
        }
        c.push(partition_section("main", &p));
        let mut w = BufWriter::new(File::create(dir.join(format!("{name}.cgteg"))).unwrap());
        c.write_to(&mut w).unwrap();
        w.flush().unwrap();
    }

    #[test]
    fn lists_loads_and_counts() {
        let dir = std::env::temp_dir().join(format!("cgte-serve-reg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        write_demo(&dir, "ring");
        let reg = Registry::new(&dir);
        let listed = reg.list();
        assert!(listed.iter().any(|(e, loaded)| e.name == "ring" && !loaded));
        let lg = reg.get("ring").unwrap();
        assert_eq!(lg.graph.num_nodes(), 4);
        assert_eq!(lg.partition_idx("main"), Some(0));
        assert_eq!(reg.loads(), 1);
        // Second get is served from memory.
        let again = reg.get("ring").unwrap();
        assert!(Arc::ptr_eq(&lg, &again));
        assert_eq!(reg.loads(), 1);
        assert!(reg.get("missing").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parallel_index_build_is_thread_invariant() {
        let g =
            GraphBuilder::from_edges(9, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (6, 7)])
                .unwrap();
        let p = Partition::from_assignments(vec![0, 0, 0, 1, 1, 1, 2, 2, 2], 3).unwrap();
        let serial = NeighborCategoryIndex::build(&g, &p);
        for t in [1, 2, 3, 8] {
            assert_eq!(build_index_parallel(&g, &p, t), serial, "threads={t}");
        }
    }
}
