//! A deliberately small HTTP/1.1 subset over `std::net`: request-line +
//! headers + `Content-Length` bodies, keep-alive by default, JSON
//! responses. No chunked encoding, no TLS, no percent-decoding — the API
//! uses only simple paths and JSON bodies, and the build environment is
//! dependency-free by constraint.

use std::io::{self, BufRead, Write};

/// Largest accepted request body (a batch of a few million node ids).
pub const MAX_BODY: usize = 64 << 20;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Upper-case method (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// Path without the query string, e.g. `/sessions/s0/estimate`.
    pub path: String,
    /// Decoded `key=value` pairs of the query string, in order.
    pub query: Vec<(String, String)>,
    /// Raw request body (`Content-Length` bytes).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

impl Request {
    /// First query value for `key`, if present.
    pub fn query_value(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Why reading a request failed — carries exactly the distinction the
/// connection paths answer on: 413 for an over-limit body, 408 for a
/// deadline expiring mid-request, 400 for malformed framing, and silence
/// for a dead transport.
#[derive(Debug)]
pub enum RequestError {
    /// The advertised `Content-Length` exceeds the configured cap.
    TooLarge {
        /// The advertised body length.
        length: usize,
        /// The configured cap it exceeded.
        max: usize,
    },
    /// A read deadline expired while the request was mid-flight.
    TimedOut,
    /// Malformed framing (bad request line, protocol, header, or an EOF
    /// inside the head).
    Malformed(String),
    /// Transport failure — no answer is possible.
    Io(io::Error),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::TooLarge { length, max } => {
                write!(f, "request body of {length} bytes exceeds the {max} limit")
            }
            RequestError::TimedOut => write!(f, "timed out reading the request"),
            RequestError::Malformed(msg) => write!(f, "{msg}"),
            RequestError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl RequestError {
    fn from_io(e: io::Error) -> RequestError {
        match e.kind() {
            io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => RequestError::TimedOut,
            _ => RequestError::Io(e),
        }
    }
}

/// Reads one request. `Ok(None)` is a clean end-of-stream before a
/// request line (the keep-alive loop's normal exit). Bodies longer than
/// `max_body` (clamped to [`MAX_BODY`]) are rejected without being read.
pub fn read_request_limited<R: BufRead>(
    r: &mut R,
    max_body: usize,
) -> Result<Option<Request>, RequestError> {
    let max_body = max_body.min(MAX_BODY);
    let mut line = String::new();
    match r.read_line(&mut line) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(RequestError::from_io(e)),
    }
    let line = line.trim_end();
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m.to_string(), t.to_string(), v),
        _ => {
            return Err(RequestError::Malformed(format!(
                "malformed request line {line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::Malformed(format!(
            "unsupported protocol {version:?}"
        )));
    }
    // HTTP/1.1 defaults to keep-alive; `Connection: close` opts out.
    let mut keep_alive = version == "HTTP/1.1";
    let mut content_length = 0usize;
    loop {
        let mut h = String::new();
        match r.read_line(&mut h) {
            Ok(0) => {
                return Err(RequestError::Malformed(
                    "connection closed inside headers".to_string(),
                ))
            }
            Ok(_) => {}
            Err(e) => return Err(RequestError::from_io(e)),
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((name, value)) = h.split_once(':') {
            let value = value.trim();
            match name.to_ascii_lowercase().as_str() {
                "content-length" => {
                    content_length = value.parse().map_err(|_| {
                        RequestError::Malformed(format!("bad Content-Length {value:?}"))
                    })?;
                }
                "connection" => {
                    let v = value.to_ascii_lowercase();
                    if v.contains("close") {
                        keep_alive = false;
                    } else if v.contains("keep-alive") {
                        keep_alive = true;
                    }
                }
                _ => {}
            }
        }
    }
    if content_length > max_body {
        return Err(RequestError::TooLarge {
            length: content_length,
            max: max_body,
        });
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body).map_err(RequestError::from_io)?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target, Vec::new()),
    };
    Ok(Some(Request {
        method,
        path,
        query,
        body,
        keep_alive,
    }))
}

/// [`read_request_limited`] at the hard [`MAX_BODY`] cap, with errors
/// flattened back to `io::Error` — the historical signature kept for the
/// fault-injection proxy and the parser tests.
pub fn read_request<R: BufRead>(r: &mut R) -> io::Result<Option<Request>> {
    read_request_limited(r, MAX_BODY).map_err(|e| match e {
        RequestError::Io(inner) => inner,
        RequestError::TimedOut => io::Error::new(io::ErrorKind::TimedOut, e.to_string()),
        other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
    })
}

/// Finds the end of the request head in a partially buffered request:
/// the index one past the blank line, if the blank line has arrived. The
/// line endings accepted (`\r\n` or bare `\n`) mirror the `read_line` +
/// `trim_end` tolerance of [`read_request_limited`], so "head complete"
/// here never disagrees with the real parser.
pub fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            match buf.get(i + 1) {
                Some(b'\n') => return Some(i + 2),
                Some(b'\r') if buf.get(i + 2) == Some(&b'\n') => return Some(i + 3),
                _ => {}
            }
        }
        i += 1;
    }
    None
}

/// Scans a complete request head for `Content-Length`, last occurrence
/// winning (as in [`read_request_limited`]). `None` means absent *or*
/// unparsable — the caller treats both as a zero-length body and lets the
/// real parser produce the 400 for the latter.
pub fn head_content_length(head: &[u8]) -> Option<usize> {
    let mut found = None;
    for line in head.split(|&b| b == b'\n') {
        let line = std::str::from_utf8(line).unwrap_or("");
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                found = value.trim().parse::<usize>().ok();
            }
        }
    }
    found
}

fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|s| !s.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (pair.to_string(), String::new()),
        })
        .collect()
}

/// One parsed response, client side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedResponse {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value (empty if absent).
    pub content_type: String,
    /// Response body (`Content-Length` bytes).
    pub body: Vec<u8>,
}

/// Reads one response from a server (status line, headers,
/// `Content-Length` body). Used by the hardened cluster client and the
/// fault-injection proxy; a mid-body disconnect surfaces as
/// `UnexpectedEof`, never a short read.
pub fn read_response<R: BufRead>(r: &mut R) -> io::Result<ParsedResponse> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before the status line",
        ));
    }
    let line = line.trim_end();
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed status line {line:?}"),
            )
        })?;
    let mut content_length = 0usize;
    let mut content_type = String::new();
    loop {
        let mut h = String::new();
        if r.read_line(&mut h)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed inside response headers",
            ));
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((name, value)) = h.split_once(':') {
            match name.to_ascii_lowercase().as_str() {
                "content-length" => {
                    content_length = value.trim().parse().map_err(|_| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("bad Content-Length {value:?}"),
                        )
                    })?;
                }
                "content-type" => content_type = value.trim().to_string(),
                _ => {}
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("response body of {content_length} bytes exceeds the {MAX_BODY} limit"),
        ));
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body)?;
    Ok(ParsedResponse {
        status,
        content_type,
        body,
    })
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// One response to send: status, content type, optional extra headers
/// (e.g. `Retry-After` on a 429) and the body bytes. The API speaks JSON
/// almost everywhere; `/metrics` is Prometheus text and the session
/// snapshot download is a raw `.cgtes` byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra `(name, value)` headers appended after the standard ones.
    pub headers: Vec<(&'static str, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A 200 JSON response.
    pub fn json(body: String) -> Self {
        Response {
            status: 200,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A 200 plain-text response (Prometheus exposition format).
    pub fn text(body: String) -> Self {
        Response {
            status: 200,
            content_type: "text/plain; version=0.0.4",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A 200 binary response (`.cgtes` snapshot downloads).
    pub fn bytes(body: Vec<u8>) -> Self {
        Response {
            status: 200,
            content_type: "application/octet-stream",
            headers: Vec::new(),
            body,
        }
    }
}

/// Writes a response.
///
/// The whole response is composed in memory and sent with **one**
/// `write_all` — emitting header fragments as separate small socket
/// writes triggers the Nagle + delayed-ACK interaction (~40–200 ms
/// stalls per request) that would dominate every latency measurement.
pub fn write_response<W: Write>(w: &mut W, resp: &Response, keep_alive: bool) -> io::Result<()> {
    use std::fmt::Write as _;
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in &resp.headers {
        let _ = write!(head, "{name}: {value}\r\n");
    }
    head.push_str("\r\n");
    let mut out = Vec::with_capacity(head.len() + resp.body.len());
    out.extend_from_slice(head.as_bytes());
    out.extend_from_slice(&resp.body);
    w.write_all(&out)?;
    w.flush()
}

/// Writes a JSON response (sugar over [`write_response`]).
pub fn write_json_response<W: Write>(
    w: &mut W,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    let resp = Response {
        status,
        content_type: "application/json",
        headers: Vec::new(),
        body: body.as_bytes().to_vec(),
    };
    write_response(w, &resp, keep_alive)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_request_with_body_and_query() {
        let raw = b"POST /sessions/s0/ingest?ci=0.95&x HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nabcd";
        let req = read_request(&mut BufReader::new(&raw[..]))
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/sessions/s0/ingest");
        assert_eq!(req.query_value("ci"), Some("0.95"));
        assert_eq!(req.query_value("x"), Some(""));
        assert_eq!(req.body, b"abcd");
        assert!(req.keep_alive);
    }

    #[test]
    fn connection_close_disables_keep_alive() {
        let raw = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
        let req = read_request(&mut BufReader::new(&raw[..]))
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn clean_eof_is_none() {
        let raw: &[u8] = b"";
        assert!(read_request(&mut BufReader::new(raw)).unwrap().is_none());
    }

    #[test]
    fn garbage_is_an_error() {
        let raw: &[u8] = b"nonsense\r\n\r\n";
        assert!(read_request(&mut BufReader::new(raw)).is_err());
    }

    #[test]
    fn oversized_body_is_rejected() {
        let raw = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(read_request(&mut BufReader::new(raw.as_bytes())).is_err());
    }

    #[test]
    fn oversized_body_is_a_typed_too_large() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 2000\r\n\r\n";
        match read_request_limited(&mut BufReader::new(&raw[..]), 1024) {
            Err(RequestError::TooLarge { length, max }) => {
                assert_eq!(length, 2000);
                assert_eq!(max, 1024);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn head_end_accepts_both_line_endings() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(18));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\n\nrest"), Some(16));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\nHost: h\n\r\nx"), Some(25));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\nHost: h\r\n"), None);
    }

    #[test]
    fn content_length_scan_matches_parser_semantics() {
        let head = b"POST /x HTTP/1.1\r\nContent-Length: 4\r\n\r\n";
        assert_eq!(head_content_length(head), Some(4));
        // Last occurrence wins, names are case-insensitive.
        let head = b"POST /x HTTP/1.1\r\ncontent-LENGTH: 4\r\nContent-Length: 9\r\n\r\n";
        assert_eq!(head_content_length(head), Some(9));
        assert_eq!(head_content_length(b"GET / HTTP/1.1\r\n\r\n"), None);
        assert_eq!(
            head_content_length(b"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            None
        );
    }

    #[test]
    fn response_has_framing() {
        let mut out = Vec::new();
        write_json_response(&mut out, 422, "{\"error\":\"x\"}", true).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("HTTP/1.1 422 Unprocessable Entity\r\n"));
        assert!(s.contains("Content-Length: 13\r\n"));
        assert!(s.ends_with("{\"error\":\"x\"}"));
    }
}
