//! Deterministic fault injection for the cluster transport.
//!
//! [`FaultProxy`] is a TCP proxy that sits between a [`RetryClient`] and a
//! real `cgte-serve` shard and misbehaves **on schedule**: the n-th request
//! through the proxy (a global counter across connections) gets the action
//! the [`FaultPlan`] assigns to index n. Plans are either an explicit
//! script (tests pinning "request 3 stalls, request 4 dies mid-body") or
//! seeded pseudo-random (soak tests reproduce a failure sequence from one
//! `u64`). Nothing here is wall-clock- or thread-schedule-dependent except
//! the stall durations themselves.
//!
//! [`RetryClient`]: crate::cluster::RetryClient

use crate::http;
use std::io::{BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// What the proxy does to one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Forward the request and relay the full response.
    Pass,
    /// Close the connection before reading a byte (the client sees a
    /// reset/EOF, like a refused or dead endpoint).
    Refuse,
    /// Forward the request, then relay only half the response body and
    /// close — the classic mid-body disconnect.
    MidBodyDisconnect,
    /// Read the request, then hold the connection silent for this many
    /// milliseconds without responding (slow-loris; the client's read
    /// timeout is expected to fire first), then close.
    Stall(u64),
    /// Answer `500 Internal Server Error` without contacting the shard.
    ServerError,
}

/// A deterministic map from global request index to [`FaultAction`].
#[derive(Debug, Clone)]
pub enum FaultPlan {
    /// Explicit per-index actions; requests past the end pass through.
    Script(Vec<FaultAction>),
    /// Seeded pseudo-random faults: roughly `fault_percent`% of requests
    /// draw one of the four fault kinds, the rest pass. The mapping is a
    /// pure hash of `(seed, index)` — the same seed always yields the
    /// same schedule regardless of timing or connection interleaving.
    Seeded {
        /// Schedule seed.
        seed: u64,
        /// Percentage of requests to fault (0–100).
        fault_percent: u8,
    },
    /// A runtime on/off switch: requests pass while the gate is `true`
    /// and answer `500` (without touching the upstream) while it is
    /// `false`. Tests flip the gate mid-run to take a shard down and
    /// bring it *back* — something a scripted index plan cannot express
    /// because the outage must span an unknown number of requests.
    Gated(Arc<AtomicBool>),
}

/// SplitMix64 finalizer — a stateless, well-mixed `u64 -> u64` (shared
/// with the cluster's seed derivation).
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl FaultPlan {
    /// The action for the `index`-th request through the proxy.
    pub fn action(&self, index: usize) -> FaultAction {
        match self {
            FaultPlan::Script(script) => script.get(index).copied().unwrap_or(FaultAction::Pass),
            FaultPlan::Seeded {
                seed,
                fault_percent,
            } => {
                let h = mix64(seed ^ mix64(index as u64));
                if (h % 100) as u8 >= *fault_percent {
                    return FaultAction::Pass;
                }
                match (h >> 7) % 4 {
                    0 => FaultAction::Refuse,
                    1 => FaultAction::MidBodyDisconnect,
                    2 => FaultAction::Stall(500),
                    _ => FaultAction::ServerError,
                }
            }
            FaultPlan::Gated(up) => {
                if up.load(Ordering::SeqCst) {
                    FaultAction::Pass
                } else {
                    FaultAction::ServerError
                }
            }
        }
    }
}

/// A fault-injecting proxy in front of one upstream shard.
pub struct FaultProxy {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    requests: Arc<AtomicUsize>,
    log: Arc<Mutex<Vec<(usize, String)>>>,
    accept: std::thread::JoinHandle<()>,
}

impl FaultProxy {
    /// Binds an ephemeral local port and starts proxying to `upstream`
    /// under `plan`.
    pub fn spawn(upstream: SocketAddr, plan: FaultPlan) -> std::io::Result<FaultProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let requests = Arc::new(AtomicUsize::new(0));
        let log = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let requests = Arc::clone(&requests);
            let log = Arc::clone(&log);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let plan = plan.clone();
                    let requests = Arc::clone(&requests);
                    let log = Arc::clone(&log);
                    // Connection handlers are detached: they hold no
                    // resources past their sockets, and a stalled one dies
                    // with its peer.
                    std::thread::spawn(move || {
                        proxy_connection(stream, upstream, &plan, &requests, &log);
                    });
                }
            })
        };
        Ok(FaultProxy {
            addr,
            shutdown,
            requests,
            log,
            accept,
        })
    }

    /// The proxy's listening address (point the client here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests seen so far (the next request gets index
    /// `requests_seen()` in the plan).
    pub fn requests_seen(&self) -> usize {
        self.requests.load(Ordering::SeqCst)
    }

    /// Every request seen so far as `"METHOD /path"`, ordered by claimed
    /// request index (refused connections log as `"(refused)"` — the
    /// proxy acts before reading a byte, so there is no path to record).
    pub fn request_log(&self) -> Vec<String> {
        let mut entries = self.log.lock().expect("proxy log poisoned").clone();
        entries.sort_by_key(|(i, _)| *i);
        entries.into_iter().map(|(_, line)| line).collect()
    }

    /// Stops accepting and joins the accept loop.
    pub fn shutdown(self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        let _ = self.accept.join();
    }
}

fn proxy_connection(
    client: TcpStream,
    upstream: SocketAddr,
    plan: &FaultPlan,
    requests: &AtomicUsize,
    log: &Mutex<Vec<(usize, String)>>,
) {
    let _ = client.set_nodelay(true);
    let Ok(mut client_writer) = client.try_clone() else {
        return;
    };
    let mut client_reader = BufReader::new(client);
    loop {
        // Claim this request's index *before* reading it, so Refuse can
        // act without consuming bytes.
        let index = requests.fetch_add(1, Ordering::SeqCst);
        let action = plan.action(index);
        if action == FaultAction::Refuse {
            log.lock()
                .expect("proxy log poisoned")
                .push((index, "(refused)".to_string()));
            let _ = client_reader.get_ref().shutdown(Shutdown::Both);
            return;
        }
        let req = match http::read_request(&mut client_reader) {
            Ok(Some(r)) => r,
            // Clean EOF: the index claimed above was never a request.
            // Scripted tests use one request per connection, where the
            // indices stay aligned; Seeded plans don't care.
            _ => return,
        };
        log.lock()
            .expect("proxy log poisoned")
            .push((index, format!("{} {}", req.method, req.path)));
        match action {
            FaultAction::Refuse => unreachable!("handled before the read"),
            FaultAction::Stall(ms) => {
                std::thread::sleep(Duration::from_millis(ms));
                let _ = client_reader.get_ref().shutdown(Shutdown::Both);
                return;
            }
            FaultAction::ServerError => {
                let body = b"{\"error\":\"injected fault\"}";
                let head = format!(
                    "HTTP/1.1 500 Internal Server Error\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
                    body.len()
                );
                let _ = client_writer.write_all(head.as_bytes());
                let _ = client_writer.write_all(body);
                let _ = client_writer.flush();
                return;
            }
            FaultAction::Pass | FaultAction::MidBodyDisconnect => {
                let Ok(resp) = forward(upstream, &req) else {
                    let _ = client_reader.get_ref().shutdown(Shutdown::Both);
                    return;
                };
                let truncate = action == FaultAction::MidBodyDisconnect;
                let sent = relay(&mut client_writer, &resp, truncate);
                if truncate || sent.is_err() {
                    let _ = client_reader.get_ref().shutdown(Shutdown::Both);
                    return;
                }
                if !req.keep_alive {
                    return;
                }
            }
        }
    }
}

/// Replays a parsed request against the upstream on a fresh connection
/// and reads the full response.
fn forward(upstream: SocketAddr, req: &http::Request) -> std::io::Result<http::ParsedResponse> {
    let stream = TcpStream::connect(upstream)?;
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone()?;
    let mut target = req.path.clone();
    for (i, (k, v)) in req.query.iter().enumerate() {
        target.push(if i == 0 { '?' } else { '&' });
        target.push_str(k);
        if !v.is_empty() {
            target.push('=');
            target.push_str(v);
        }
    }
    let head = format!(
        "{} {} HTTP/1.1\r\nHost: shard\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        req.method,
        target,
        req.body.len()
    );
    writer.write_all(head.as_bytes())?;
    writer.write_all(&req.body)?;
    writer.flush()?;
    http::read_response(&mut BufReader::new(stream))
}

/// Writes the upstream's response back to the client; with `truncate`,
/// sends the head but only half the body (a believable partial write).
fn relay<W: Write>(w: &mut W, resp: &http::ParsedResponse, truncate: bool) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} X\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
        resp.status,
        if resp.content_type.is_empty() {
            "application/octet-stream"
        } else {
            &resp.content_type
        },
        resp.body.len()
    );
    w.write_all(head.as_bytes())?;
    let cut = if truncate {
        resp.body.len() / 2
    } else {
        resp.body.len()
    };
    w.write_all(&resp.body[..cut])?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plan_is_deterministic_and_calibrated() {
        let plan = FaultPlan::Seeded {
            seed: 7,
            fault_percent: 30,
        };
        let again = FaultPlan::Seeded {
            seed: 7,
            fault_percent: 30,
        };
        let faults = (0..1000)
            .filter(|&i| {
                assert_eq!(plan.action(i), again.action(i));
                plan.action(i) != FaultAction::Pass
            })
            .count();
        // ~300 expected; wide tolerance keeps this timing-free and stable.
        assert!((200..400).contains(&faults), "{faults} faults in 1000");
        let other = FaultPlan::Seeded {
            seed: 8,
            fault_percent: 30,
        };
        assert!((0..1000).any(|i| plan.action(i) != other.action(i)));
    }

    #[test]
    fn script_plan_passes_past_the_end() {
        let plan = FaultPlan::Script(vec![FaultAction::Refuse, FaultAction::Stall(10)]);
        assert_eq!(plan.action(0), FaultAction::Refuse);
        assert_eq!(plan.action(1), FaultAction::Stall(10));
        assert_eq!(plan.action(2), FaultAction::Pass);
    }
}
