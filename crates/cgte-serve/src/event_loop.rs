//! The event-driven connection engine (`cfg(cgte_epoll)` platforms).
//!
//! One event-loop thread owns the listener, the self-pipe, and every idle
//! or partially-read connection, all in non-blocking mode on a vendored
//! [`crate::poll::Poller`]. Each connection steps through a small state
//! machine — reading-headers → reading-body → dispatched → writing — where
//! the first two states live here (bytes accumulate in `Conn::buf` until
//! [`crate::http::find_head_end`] + `Content-Length` say a full request
//! has arrived) and the last two live on a worker: the parsed request is
//! checked out to the crossbeam pool as a [`Job`], the worker routes it
//! and writes the response, and a keep-alive connection parks back here
//! over the return channel (paired with a self-pipe wake-up).
//!
//! Idle connections therefore cost **no** thread and **no** periodic
//! wake-up — the polling `set_read_timeout` loop of the portable fallback
//! is replaced by level-triggered readiness. Shutdown is a self-pipe wake
//! instead of the historical connect-to-yourself poke.

use crate::json::error_body;
use crate::poll::{Events, Poller, WakeReceiver};
use crate::{http, OpenConnGuard, ServerState};
use crossbeam::channel::{Receiver, Sender};
use std::collections::HashMap;
use std::io::{ErrorKind, Read};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Token of the self-pipe read end.
pub(crate) const TOKEN_WAKE: u64 = 0;
/// Token of the listening socket.
pub(crate) const TOKEN_LISTENER: u64 = 1;
/// First token handed to an accepted connection.
const FIRST_CONN_TOKEN: u64 = 2;

/// Request heads larger than this answer 400 — no legitimate client of
/// the JSON API sends a megabyte of request headers.
const MAX_HEAD_BYTES: usize = 1 << 20;
const ACCEPT_BACKOFF_MIN: Duration = Duration::from_millis(10);
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_secs(1);

/// A connection owned by the event loop (or checked out to a worker).
pub(crate) struct Conn {
    /// The socket, kept non-blocking while parked on the poller.
    pub(crate) stream: TcpStream,
    token: u64,
    /// Bytes received ahead of parsing; leftovers after a dispatch are
    /// pipelined follow-up requests.
    buf: Vec<u8>,
    /// Cached head-end offset of the in-progress request.
    head_end: Option<usize>,
    /// Absolute deadline for completing the in-progress request — armed
    /// when its first byte arrives, cleared on dispatch, answered with
    /// 408 on expiry. Idle (byte-less) connections never expire here.
    deadline: Option<Instant>,
    /// Decrements `cgte_serve_open_connections` when the connection
    /// drops, wherever that happens (loop, worker, or teardown).
    _guard: OpenConnGuard,
}

/// One parsed request checked out to the worker pool, with the
/// connection it arrived on.
pub(crate) struct Job {
    pub(crate) conn: Conn,
    pub(crate) req: http::Request,
}

/// What `Conn::try_extract` found in the buffered bytes.
enum Extract {
    /// Not a full request yet; stay parked.
    Incomplete,
    /// A complete request, drained from the buffer.
    Request(http::Request),
    /// A protocol-level rejection: answer and hang up.
    Reply(u16, String),
}

impl Conn {
    /// Tries to cut one complete request off the front of the buffer.
    /// Framing is detected with the same line-ending tolerance as the
    /// real parser, and the frame is then parsed by the *same*
    /// `read_request_limited` the fallback path uses — responses are
    /// byte-identical across both connection engines by construction.
    fn try_extract(&mut self, max_body: usize) -> Extract {
        if self.head_end.is_none() {
            self.head_end = http::find_head_end(&self.buf);
        }
        let Some(head_end) = self.head_end else {
            if self.buf.len() > MAX_HEAD_BYTES {
                return Extract::Reply(400, "request head too large".to_string());
            }
            return Extract::Incomplete;
        };
        let max_body = max_body.min(http::MAX_BODY);
        let content_length = http::head_content_length(&self.buf[..head_end]).unwrap_or(0);
        if content_length > max_body {
            return Extract::Reply(
                413,
                format!("request body of {content_length} bytes exceeds the {max_body} limit"),
            );
        }
        let total = head_end + content_length;
        if self.buf.len() < total {
            return Extract::Incomplete;
        }
        let parsed = http::read_request_limited(&mut &self.buf[..total], max_body);
        match parsed {
            Ok(Some(req)) => {
                self.buf.drain(..total);
                self.head_end = None;
                self.deadline = None;
                Extract::Request(req)
            }
            Ok(None) => Extract::Reply(400, "empty request frame".to_string()),
            Err(e) => Extract::Reply(400, e.to_string()),
        }
    }
}

/// Answers a terse error on a connection being hung up. The write gets a
/// bounded blocking budget; a peer that will not even read a one-line
/// error is simply dropped.
fn answer_and_drop(mut conn: Conn, status: u16, msg: &str) {
    let _ = conn.stream.set_nonblocking(false);
    let _ = conn.stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = http::write_json_response(&mut conn.stream, status, &error_body(msg), false);
}

struct Engine {
    state: Arc<ServerState>,
    poller: Poller,
    listener: TcpListener,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    dispatch_tx: Sender<Job>,
    accept_backoff: Duration,
    /// While `Some`, the listener is out of the interest set until the
    /// instant passes (accept-error backoff without hot-spinning a
    /// level-triggered ready listener).
    accept_resume: Option<Instant>,
}

impl Engine {
    /// Parks a connection on the poller — unless its buffer already holds
    /// a complete pipelined request (dispatch immediately) or a protocol
    /// violation (answer and close).
    fn park(&mut self, mut conn: Conn) {
        if self.state.shutdown.load(Ordering::SeqCst) {
            return; // drops the connection
        }
        match conn.try_extract(self.state.max_body) {
            Extract::Request(req) => {
                let _ = self.dispatch_tx.send(Job { conn, req });
            }
            Extract::Reply(status, msg) => answer_and_drop(conn, status, &msg),
            Extract::Incomplete => {
                if !conn.buf.is_empty() && conn.deadline.is_none() {
                    conn.deadline = Some(Instant::now() + self.state.request_timeout);
                }
                if self.poller.add(conn.stream.as_raw_fd(), conn.token).is_ok() {
                    self.conns.insert(conn.token, conn);
                }
                // A failed registration drops the connection.
            }
        }
    }

    fn close(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.delete(conn.stream.as_raw_fd());
        }
    }

    fn reply_and_close(&mut self, token: u64, status: u16, msg: &str) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.delete(conn.stream.as_raw_fd());
            answer_and_drop(conn, status, msg);
        }
    }

    fn dispatch(&mut self, token: u64, req: http::Request) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.delete(conn.stream.as_raw_fd());
            // If the workers are gone (teardown) the connection drops.
            let _ = self.dispatch_tx.send(Job { conn, req });
        }
    }

    /// Drains a readable connection and advances its state machine.
    fn handle_readable(&mut self, token: u64) {
        enum Action {
            Close,
            Parked,
            Dispatch(http::Request),
            Reply(u16, String),
        }
        let max_body = self.state.max_body;
        let request_timeout = self.state.request_timeout;
        let action = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let mut chunk = [0u8; 16 * 1024];
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => break Action::Close, // EOF
                    Ok(n) => {
                        if conn.buf.is_empty() {
                            // First byte of a request: arm the deadline.
                            conn.deadline = Some(Instant::now() + request_timeout);
                        }
                        conn.buf.extend_from_slice(&chunk[..n]);
                        match conn.try_extract(max_body) {
                            Extract::Incomplete => continue,
                            Extract::Request(req) => break Action::Dispatch(req),
                            Extract::Reply(status, msg) => break Action::Reply(status, msg),
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break Action::Parked,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => break Action::Close,
                }
            }
        };
        match action {
            Action::Close => self.close(token),
            Action::Parked => {}
            Action::Dispatch(req) => self.dispatch(token, req),
            Action::Reply(status, msg) => self.reply_and_close(token, status, &msg),
        }
    }

    /// Accepts every pending connection (the listener is level-triggered
    /// and non-blocking). On a transient accept failure — classically
    /// EMFILE under fd exhaustion — the listener leaves the interest set
    /// for a doubling backoff window instead of spinning hot.
    fn do_accept(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.accept_backoff = ACCEPT_BACKOFF_MIN;
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _guard = OpenConnGuard::new(&self.state);
                    let token = self.next_token;
                    self.next_token += 1;
                    self.park(Conn {
                        stream,
                        token,
                        buf: Vec::new(),
                        head_end: None,
                        deadline: None,
                        _guard,
                    });
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.state.accept_errors.fetch_add(1, Ordering::Relaxed);
                    let _ = self.poller.delete(self.listener.as_raw_fd());
                    self.accept_resume = Some(Instant::now() + self.accept_backoff);
                    self.accept_backoff = (self.accept_backoff * 2).min(ACCEPT_BACKOFF_MAX);
                    return;
                }
            }
        }
    }

    /// Re-arms the listener once its backoff window has passed.
    fn maybe_resume_listener(&mut self, now: Instant) {
        if let Some(resume) = self.accept_resume {
            if now >= resume {
                if self
                    .poller
                    .add(self.listener.as_raw_fd(), TOKEN_LISTENER)
                    .is_ok()
                {
                    self.accept_resume = None;
                } else {
                    self.accept_resume = Some(now + self.accept_backoff);
                }
            }
        }
    }

    /// Answers 408 on every connection whose request deadline has passed
    /// (the event-loop half of the slowloris fix).
    fn expire(&mut self, now: Instant) {
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.deadline.is_some_and(|d| d <= now))
            .map(|(&t, _)| t)
            .collect();
        for token in expired {
            self.state.request_timeouts.fetch_add(1, Ordering::Relaxed);
            self.reply_and_close(token, 408, "timed out reading the request");
        }
    }

    /// The nearest instant anything timed is due: a request deadline or
    /// the listener's backoff resume. `None` sleeps until the next event.
    fn next_timeout(&self, now: Instant) -> Option<Duration> {
        let mut next: Option<Instant> = self.accept_resume;
        for conn in self.conns.values() {
            if let Some(d) = conn.deadline {
                next = Some(next.map_or(d, |n| n.min(d)));
            }
        }
        next.map(|t| t.saturating_duration_since(now))
    }
}

/// The event-loop thread body. The poller arrives with the self-pipe
/// (token 0) and the non-blocking listener (token 1) already registered;
/// dropping `dispatch_tx` on exit disconnects the channel and drains the
/// worker pool.
pub(crate) fn run(
    state: Arc<ServerState>,
    listener: TcpListener,
    poller: Poller,
    wake_rx: WakeReceiver,
    dispatch_tx: Sender<Job>,
    ret_rx: Receiver<Conn>,
) {
    let mut engine = Engine {
        state,
        poller,
        listener,
        conns: HashMap::new(),
        next_token: FIRST_CONN_TOKEN,
        dispatch_tx,
        accept_backoff: ACCEPT_BACKOFF_MIN,
        accept_resume: None,
    };
    let mut events = Events::with_capacity(1024);
    let mut ready: Vec<(u64, bool)> = Vec::new();
    loop {
        let now = Instant::now();
        engine.maybe_resume_listener(now);
        let timeout = engine.next_timeout(now);
        if let Err(e) = engine.poller.wait(&mut events, timeout) {
            if e.kind() == ErrorKind::Interrupted {
                continue;
            }
            eprintln!("cgte-serve: event loop poll failed: {e}");
            break;
        }
        let mut accept_ready = false;
        ready.clear();
        for ev in events.iter() {
            match ev.token {
                TOKEN_WAKE => wake_rx.drain(),
                TOKEN_LISTENER => accept_ready = true,
                token => ready.push((token, ev.closed && !ev.readable)),
            }
        }
        if engine.state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        // Workers hand finished keep-alive connections back over the
        // return channel (each send paired with a self-pipe wake).
        while let Ok(conn) = ret_rx.try_recv() {
            engine.park(conn);
        }
        for &(token, dead) in &ready {
            if dead {
                engine.close(token);
            } else {
                engine.handle_readable(token);
            }
        }
        if accept_ready {
            engine.do_accept();
        }
        engine.expire(Instant::now());
    }
    // Teardown: parked connections drop here (decrementing the gauge via
    // their guards); dropping `dispatch_tx` drains and stops the workers.
}
