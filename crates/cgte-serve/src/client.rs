//! A minimal blocking HTTP/1.1 client over one keep-alive connection —
//! just enough to drive the serve API from benches, integration tests and
//! scripted smoke jobs without external tooling.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// One keep-alive connection to a server.
///
/// The read half is one persistent `BufReader` for the connection's
/// lifetime: rebuilding it per request would drop any buffered
/// read-ahead bytes (desynchronizing the stream) and pay a `dup` +
/// buffer allocation on every request — this client is also the latency
/// probe for the gated serve benchmarks, where that overhead would be
/// measured as server time.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to `addr`. Nagle's algorithm is disabled: the client
    /// sends whole small requests and waits for the response, the exact
    /// pattern delayed ACKs penalize.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { writer, reader })
    }

    /// Applies a read timeout to the connection (both halves share the
    /// one underlying socket, so this covers `request`'s response
    /// reads). `None` restores indefinitely-blocking reads. Probes that
    /// poll a server which may be unable to answer — e.g. a gauge poll
    /// against a fallback-engine server whose workers are all pinned —
    /// need this to make their deadline reachable.
    pub fn set_read_timeout(&self, dur: Option<std::time::Duration>) -> std::io::Result<()> {
        self.writer.set_read_timeout(dur)
    }

    /// Sends one request (a single `write_all`) and reads the full
    /// response. Returns `(status, body)`.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> std::io::Result<(u16, String)> {
        let msg = format!(
            "{method} {path} HTTP/1.1\r\nHost: cgte\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.writer.write_all(msg.as_bytes())?;
        self.writer.flush()?;
        let r = &mut self.reader;
        let mut status_line = String::new();
        r.read_line(&mut status_line)?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("malformed status line {status_line:?}"),
                )
            })?;
        let mut content_length = 0usize;
        loop {
            let mut h = String::new();
            if r.read_line(&mut h)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed inside response headers",
                ));
            }
            let h = h.trim_end();
            if h.is_empty() {
                break;
            }
            if let Some(v) = h.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().map_err(|_| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, "bad Content-Length")
                })?;
            }
        }
        let mut body = vec![0u8; content_length];
        r.read_exact(&mut body)?;
        String::from_utf8(body)
            .map(|b| (status, b))
            .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 body"))
    }
}
